//! Property-based tests of the distribution policies' protocol
//! invariants under arbitrary workloads.

use l2s::{Distributor, L2s, L2sConfig, PolicyKind};
use l2s_util::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

/// Drives a policy through a random arrival/completion schedule and
/// checks the protocol invariants at every step.
fn drive(
    kind: PolicyKind,
    nodes: usize,
    ops: &[(u32, bool)],
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut policy = kind.build(nodes);
    let mut rng = DetRng::new(seed);
    let mut in_flight: Vec<(usize, u32)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut outbox = Vec::new();
    let mut msg_count_claimed = 0u64;
    for &(file, complete) in ops {
        now += SimDuration::from_nanos(rng.below(1_000_000) + 1);
        if complete && !in_flight.is_empty() {
            let idx = rng.index(in_flight.len());
            let (node, f) = in_flight.swap_remove(idx);
            msg_count_claimed += u64::from(policy.complete(now, node, f.into()));
        } else {
            let initial = policy.arrival_node();
            prop_assert!(initial < nodes);
            let a = policy.assign(now, initial, file.into());
            prop_assert!(a.service < nodes);
            prop_assert_eq!(a.forwarded, a.service != initial);
            msg_count_claimed += u64::from(a.control_msgs);
            in_flight.push((a.service, file));
        }
        let total: u64 = (0..nodes).map(|i| policy.open_connections(i) as u64).sum();
        prop_assert_eq!(
            total as usize,
            in_flight.len(),
            "connection accounting drifted"
        );
    }
    policy.drain_messages(&mut outbox);
    // Every drained message has valid endpoints, and the counts the
    // policy claimed match what it queued.
    for &(from, to) in &outbox {
        prop_assert!(from < nodes && to < nodes && from != to);
    }
    prop_assert_eq!(outbox.len() as u64, msg_count_claimed);
    Ok(())
}

proptest! {
    #[test]
    fn every_policy_respects_the_protocol(
        ops in prop::collection::vec((0u32..60, any::<bool>()), 1..400),
        nodes in 1usize..8,
        kind_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        drive(PolicyKind::all()[kind_idx], nodes, &ops, seed)?;
    }

    /// L2S server sets only contain valid nodes and never empty out once
    /// created.
    #[test]
    fn l2s_server_sets_stay_valid(
        ops in prop::collection::vec((0u32..20, any::<bool>()), 1..300),
        nodes in 2usize..8,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut in_flight: Vec<(usize, u32)> = Vec::new();
        let now = SimTime::ZERO;
        let mut seen_files = std::collections::HashSet::new();
        for (file, complete) in ops {
            if complete && !in_flight.is_empty() {
                let (node, f) = in_flight.swap_remove(0);
                policy.complete(now, node, f.into());
            } else {
                let initial = policy.arrival_node();
                let a = policy.assign(now, initial, file.into());
                in_flight.push((a.service, file));
                seen_files.insert(file);
            }
            for &f in &seen_files {
                let set = policy.server_set(f);
                prop_assert!(!set.is_empty(), "set emptied for file {f}");
                prop_assert!(set.len() <= nodes);
                for &m in set {
                    prop_assert!(m < nodes);
                }
                // No duplicates.
                let mut dedup = set.to_vec();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), set.len());
            }
        }
    }

    /// A node's own view of itself always equals ground truth in L2S.
    #[test]
    fn l2s_own_view_is_exact(
        ops in prop::collection::vec((0u32..30, any::<bool>()), 1..200),
        nodes in 2usize..6,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut in_flight: Vec<(usize, u32)> = Vec::new();
        let now = SimTime::ZERO;
        for (file, complete) in ops {
            if complete && !in_flight.is_empty() {
                let (node, f) = in_flight.swap_remove(0);
                policy.complete(now, node, f.into());
            } else {
                let initial = policy.arrival_node();
                let a = policy.assign(now, initial, file.into());
                in_flight.push((a.service, file));
            }
            for k in 0..nodes {
                prop_assert_eq!(policy.viewed_load(k, k), policy.open_connections(k));
            }
        }
    }

    /// Remote views never exceed the broadcast threshold's staleness
    /// bound... they can lag, but a view can never be *negative* or wildly
    /// above any load the node ever had. Here: views are bounded by the
    /// peak ground-truth load seen so far plus the hand-off the viewer
    /// itself performed.
    #[test]
    fn l2s_views_stay_bounded(
        ops in prop::collection::vec(0u32..30, 1..300),
        nodes in 2usize..6,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut peak = 0u32;
        let now = SimTime::ZERO;
        for file in ops {
            let initial = policy.arrival_node();
            policy.assign(now, initial, file.into());
            for k in 0..nodes {
                peak = peak.max(policy.open_connections(k));
            }
            for o in 0..nodes {
                for k in 0..nodes {
                    prop_assert!(policy.viewed_load(o, k) <= peak + 1);
                }
            }
        }
    }
}
