//! Property-based tests of the distribution policies' protocol
//! invariants under arbitrary workloads.

use l2s::{Distributor, L2s, L2sConfig, LoadIndex, PolicyKind};
use l2s_util::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

/// Reference model for [`LoadIndex`]: the naive scans the policies used
/// before indexed dispatch, over an explicit `(node, load)` map.
struct NaiveLoads {
    load: Vec<Option<u32>>,
}

impl NaiveLoads {
    fn new(capacity: usize) -> Self {
        NaiveLoads {
            load: vec![None; capacity],
        }
    }

    /// Present node ids in ascending order — the "sorted live list"
    /// every policy maintains for its candidate slice.
    fn members(&self) -> Vec<usize> {
        (0..self.load.len())
            .filter(|&i| self.load[i].is_some())
            .collect()
    }

    /// Least load, lowest node id on ties: the old filtered scan in
    /// `Traditional::arrival_node`.
    fn argmin(&self) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (i, l) in self.load.iter().enumerate() {
            if let Some(l) = *l {
                if best.map(|(bl, _)| l < bl).unwrap_or(true) {
                    best = Some((l, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// First strict minimum in cyclic order from the cursor: the old
    /// `argmin_rotating` over the live list, verbatim.
    fn argmin_rotating(&self, cursor: &mut usize) -> Option<usize> {
        let members = self.members();
        if members.is_empty() {
            return None;
        }
        let n = members.len();
        let start = *cursor % n;
        *cursor = cursor.wrapping_add(1);
        let mut best = members[start];
        let mut best_load = self.load[best].unwrap();
        let mut idx = start;
        for _ in 1..n {
            idx += 1;
            if idx == n {
                idx = 0;
            }
            let c = members[idx];
            let l = self.load[c].unwrap();
            if l < best_load {
                best = c;
                best_load = l;
            }
        }
        Some(best)
    }
}

/// Drives a policy through a random arrival/completion schedule and
/// checks the protocol invariants at every step.
fn drive(
    kind: PolicyKind,
    nodes: usize,
    ops: &[(u32, bool)],
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut policy = kind.build(nodes);
    let mut rng = DetRng::new(seed);
    let mut in_flight: Vec<(usize, u32)> = Vec::new();
    let mut now = SimTime::ZERO;
    let mut outbox = Vec::new();
    let mut msg_count_claimed = 0u64;
    for &(file, complete) in ops {
        now += SimDuration::from_nanos(rng.below(1_000_000) + 1);
        if complete && !in_flight.is_empty() {
            let idx = rng.index(in_flight.len());
            let (node, f) = in_flight.swap_remove(idx);
            msg_count_claimed += u64::from(policy.complete(now, node, f.into()));
        } else {
            let initial = policy.arrival_node().unwrap();
            prop_assert!(initial < nodes);
            let a = policy.assign(now, initial, file.into());
            prop_assert!(a.service < nodes);
            prop_assert_eq!(a.forwarded, a.service != initial);
            msg_count_claimed += u64::from(a.control_msgs);
            in_flight.push((a.service, file));
        }
        let total: u64 = (0..nodes).map(|i| policy.open_connections(i) as u64).sum();
        prop_assert_eq!(
            total as usize,
            in_flight.len(),
            "connection accounting drifted"
        );
    }
    policy.drain_messages(&mut outbox);
    // Every drained message has valid endpoints, and the counts the
    // policy claimed match what it queued.
    for &(from, to) in &outbox {
        prop_assert!(from < nodes && to < nodes && from != to);
    }
    prop_assert_eq!(outbox.len() as u64, msg_count_claimed);
    Ok(())
}

proptest! {
    #[test]
    fn every_policy_respects_the_protocol(
        ops in prop::collection::vec((0u32..60, any::<bool>()), 1..400),
        nodes in 1usize..8,
        kind_idx in 0usize..7,
        seed in any::<u64>(),
    ) {
        drive(PolicyKind::all()[kind_idx], nodes, &ops, seed)?;
    }

    /// L2S server sets only contain valid nodes and never empty out once
    /// created.
    #[test]
    fn l2s_server_sets_stay_valid(
        ops in prop::collection::vec((0u32..20, any::<bool>()), 1..300),
        nodes in 2usize..8,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut in_flight: Vec<(usize, u32)> = Vec::new();
        let now = SimTime::ZERO;
        let mut seen_files = std::collections::HashSet::new();
        for (file, complete) in ops {
            if complete && !in_flight.is_empty() {
                let (node, f) = in_flight.swap_remove(0);
                policy.complete(now, node, f.into());
            } else {
                let initial = policy.arrival_node().unwrap();
                let a = policy.assign(now, initial, file.into());
                in_flight.push((a.service, file));
                seen_files.insert(file);
            }
            for &f in &seen_files {
                let set = policy.server_set(f);
                prop_assert!(!set.is_empty(), "set emptied for file {f}");
                prop_assert!(set.len() <= nodes);
                for &m in set {
                    prop_assert!(m < nodes);
                }
                // No duplicates.
                let mut dedup = set.to_vec();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), set.len());
            }
        }
    }

    /// A node's own view of itself always equals ground truth in L2S.
    #[test]
    fn l2s_own_view_is_exact(
        ops in prop::collection::vec((0u32..30, any::<bool>()), 1..200),
        nodes in 2usize..6,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut in_flight: Vec<(usize, u32)> = Vec::new();
        let now = SimTime::ZERO;
        for (file, complete) in ops {
            if complete && !in_flight.is_empty() {
                let (node, f) = in_flight.swap_remove(0);
                policy.complete(now, node, f.into());
            } else {
                let initial = policy.arrival_node().unwrap();
                let a = policy.assign(now, initial, file.into());
                in_flight.push((a.service, file));
            }
            for k in 0..nodes {
                prop_assert_eq!(policy.viewed_load(k, k), policy.open_connections(k));
            }
        }
    }

    /// The indexed load structure is selection-identical to the naive
    /// scans under arbitrary insert/update/remove interleavings —
    /// including tie-breaking on node id — for both the lowest-id
    /// argmin and the rotating-cursor variant. This is the contract
    /// that keeps every golden CSV byte-identical under indexed
    /// dispatch.
    #[test]
    fn load_index_matches_naive_scans(
        capacity in 1usize..40,
        ops in prop::collection::vec((any::<u16>(), 0u32..5, any::<bool>()), 1..300),
        start_cursor in any::<usize>(),
    ) {
        let mut ix = LoadIndex::new(capacity);
        let mut model = NaiveLoads::new(capacity);
        let mut ix_cursor = start_cursor;
        let mut model_cursor = start_cursor;
        for (pick, load, use_rotating) in ops {
            let node = pick as usize % capacity;
            // Toggle membership on a fresh load value, or update in
            // place: every op ends with both structures agreeing on
            // membership, so all three mutators get exercised.
            if model.load[node].is_some() {
                if load == 0 {
                    ix.remove(node);
                    model.load[node] = None;
                } else {
                    ix.update(node, load);
                    model.load[node] = Some(load);
                }
            } else {
                ix.insert(node, load);
                model.load[node] = Some(load);
            }
            prop_assert_eq!(ix.len(), model.members().len());
            prop_assert_eq!(ix.argmin(), model.argmin());
            if use_rotating {
                let fast = ix.argmin_rotating(&mut ix_cursor);
                let naive = model.argmin_rotating(&mut model_cursor);
                prop_assert_eq!(fast, naive);
                prop_assert_eq!(ix_cursor, model_cursor, "cursor advancement diverged");
            }
        }
    }

    /// Remote views never exceed the broadcast threshold's staleness
    /// bound... they can lag, but a view can never be *negative* or wildly
    /// above any load the node ever had. Here: views are bounded by the
    /// peak ground-truth load seen so far plus the hand-off the viewer
    /// itself performed.
    #[test]
    fn l2s_views_stay_bounded(
        ops in prop::collection::vec(0u32..30, 1..300),
        nodes in 2usize..6,
    ) {
        let mut policy = L2s::new(nodes, L2sConfig::default());
        let mut peak = 0u32;
        let now = SimTime::ZERO;
        for file in ops {
            let initial = policy.arrival_node().unwrap();
            policy.assign(now, initial, file.into());
            for k in 0..nodes {
                peak = peak.max(policy.open_connections(k));
            }
            for o in 0..nodes {
                for k in 0..nodes {
                    prop_assert!(policy.viewed_load(o, k) <= peak + 1);
                }
            }
        }
    }
}
