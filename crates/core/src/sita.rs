//! SITA — size-interval task assignment (Harchol-Balter et al.).
//!
//! Each node owns a contiguous band of the file-size distribution:
//! requests for small files go to the low bands, large files to the
//! high bands, so short jobs never queue behind multi-megabyte replies
//! — the task-size variance reduction that makes SITA competitive on
//! heavy-tailed web workloads. Band boundaries are chosen up front from
//! the workload's file population (the engine hints per-file sizes once
//! per run) so that every band carries an equal share of the total
//! bytes; on heterogeneous clusters the shares are weighted by per-node
//! CPU speed, giving fast nodes proportionally wider bands.
//!
//! Like the pure-locality baseline, arrivals land by round-robin DNS and
//! are handed off to the owning node after parsing; the split itself is
//! static, so the policy sends no control messages. When a band's owner
//! is down its traffic drains to a deterministic live stand-in and moves
//! back on recovery. Files whose sizes were never hinted (or that fall
//! outside the hinted population) fall back to hash placement over the
//! live nodes.

use crate::{Assignment, Distributor, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{cast, invariant, SimTime};

/// The size-interval splitter. See the module docs.
#[derive(Clone, Debug)]
pub struct Sita {
    loads: Vec<u32>,
    alive: Vec<bool>,
    /// Live node ids in ascending order — the stand-in ring for dead
    /// owners and the hash ring for unhinted files.
    ring: Vec<NodeId>,
    /// Relative service capacity per node; uniform for homogeneous
    /// clusters, per-node CPU speed for heterogeneous ones.
    weights: Vec<f64>,
    /// Owning band (node id) per interned file id; empty until sizes
    /// are hinted.
    band_of_file: Vec<u32>,
    next_arrival: usize,
}

impl Sita {
    /// A SITA splitter over `n` equally powerful nodes.
    pub fn new(n: usize) -> Self {
        Self::weighted(n, vec![1.0; n])
    }

    /// A SITA splitter whose band widths are proportional to `weights`
    /// (one positive, finite weight per node — per-node CPU speed on a
    /// heterogeneous cluster).
    pub fn weighted(n: usize, weights: Vec<f64>) -> Self {
        invariant!(n >= 1, "need at least one node");
        invariant!(
            weights.len() == n,
            "need one weight per node ({got} for {n})",
            got = weights.len()
        );
        invariant!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "SITA weights must be positive and finite"
        );
        Sita {
            loads: vec![0; n],
            alive: vec![true; n],
            ring: (0..n).collect(),
            weights,
            band_of_file: Vec::new(),
            next_arrival: 0,
        }
    }

    /// Recomputes the size bands for a file population. `sizes[i]` is
    /// the size in KB of the file with interned id `i`. Files are walked
    /// in ascending size order (id-ordered on ties) and cut into one
    /// contiguous band per node so each band's share of the total bytes
    /// is proportional to the node's weight.
    fn rebuild_bands(&mut self, sizes: &[f64]) {
        let n = self.loads.len();
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by(|&a, &b| sizes[a].total_cmp(&sizes[b]).then(a.cmp(&b)));
        let total: f64 = sizes.iter().sum();
        let weight_total: f64 = self.weights.iter().sum();
        self.band_of_file = vec![0; sizes.len()];
        let mut carried = 0.0;
        let mut band = 0usize;
        let mut boundary = total * self.weights[0] / weight_total;
        for &file in &order {
            self.band_of_file[file] = cast::index_u32(band);
            carried += sizes[file];
            if carried >= boundary && band + 1 < n {
                band += 1;
                boundary += total * self.weights[band] / weight_total;
            }
        }
    }

    /// The node currently serving `file`'s size band (its band owner
    /// while that node is alive, a deterministic live stand-in while it
    /// is down, hash placement when no size information exists).
    pub fn owner(&self, file: impl Into<FileId>) -> NodeId {
        let file = file.into();
        match self.band_of_file.get(file.index()) {
            Some(&band) => {
                let band = cast::wide_usize(band);
                if self.alive[band] {
                    band
                } else {
                    self.ring[band % self.ring.len()]
                }
            }
            None => {
                // Fibonacci hashing, matching the pure-locality spread.
                let h = u64::from(file.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                self.ring[cast::index_usize(h % cast::len_u64(self.ring.len()))]
            }
        }
    }
}

impl Distributor for Sita {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Sita
    }

    fn hint_file_sizes(&mut self, sizes: &[f64]) {
        self.rebuild_bands(sizes);
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // Round-robin DNS; the owner is only known after parsing. Dead
        // nodes drop out of DNS rotation; an empty rotation (every node
        // down) rejects the connection without advancing the cursor.
        let n = self.loads.len();
        let mut node = self.next_arrival;
        for _ in 0..n {
            if self.alive[node] {
                break;
            }
            node = (node + 1) % n;
        }
        if !self.alive[node] {
            return None;
        }
        self.next_arrival = (node + 1) % n;
        Some(node)
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, file: FileId) -> Assignment {
        let service = self.owner(file);
        self.loads[service] += 1;
        Assignment {
            service,
            forwarded: service != initial,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
        // The ring may empty out entirely (all-down cluster); arrivals
        // are rejected before `owner` can index it, so no guard here.
        self.ring.retain(|&id| id != node);
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
        if !self.ring.contains(&node) {
            self.ring.push(node);
            self.ring.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sizes with ids in shuffled size order, so band assignment has to
    /// actually sort: ids 0..8 sized 8, 1, 6, 3, 2, 7, 4, 5 KB.
    const SIZES: [f64; 8] = [8.0, 1.0, 6.0, 3.0, 2.0, 7.0, 4.0, 5.0];

    fn hinted(n: usize) -> Sita {
        let mut s = Sita::new(n);
        s.hint_file_sizes(&SIZES);
        s
    }

    #[test]
    fn bands_are_contiguous_in_size_and_cover_every_node() {
        let s = hinted(4);
        // Walk files in ascending size order; band must be monotone.
        let mut order: Vec<usize> = (0..SIZES.len()).collect();
        order.sort_by(|&a, &b| SIZES[a].total_cmp(&SIZES[b]));
        let bands: Vec<NodeId> = order.iter().map(|&f| s.owner(cast::index_u32(f))).collect();
        let mut sorted = bands.clone();
        sorted.sort_unstable();
        assert_eq!(bands, sorted, "bands must be monotone in file size");
        let mut seen = [false; 4];
        for &b in &bands {
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node owns no band");
    }

    #[test]
    fn equal_weights_split_bytes_evenly() {
        let s = hinted(2);
        let per_band: Vec<f64> = (0..2)
            .map(|node| {
                (0..SIZES.len())
                    .filter(|&f| s.owner(cast::index_u32(f)) == node)
                    .map(|f| SIZES[f])
                    .sum()
            })
            .collect();
        // 36 KB total; the greedy cut lands within one file of 18/18.
        assert!(
            (per_band[0] - per_band[1]).abs() <= 8.0,
            "bands {per_band:?} too skewed"
        );
    }

    #[test]
    fn weights_widen_the_fast_nodes_band() {
        let mut s = Sita::weighted(2, vec![3.0, 1.0]);
        s.hint_file_sizes(&SIZES);
        let band0_kb: f64 = (0..SIZES.len())
            .filter(|&f| s.owner(cast::index_u32(f)) == 0)
            .map(|f| SIZES[f])
            .sum();
        assert!(
            band0_kb > 18.0,
            "node 0 at weight 3 must own more than half the bytes, got {band0_kb}"
        );
    }

    #[test]
    fn owner_is_sticky_per_file() {
        let mut s = hinted(4);
        let first = s.assign(SimTime::ZERO, 0, 3.into()).service;
        for _ in 0..10 {
            let initial = s.arrival_node().unwrap();
            let a = s.assign(SimTime::ZERO, initial, 3.into());
            assert_eq!(a.service, first, "same file, same owner");
        }
    }

    #[test]
    fn unhinted_files_fall_back_to_hash_placement() {
        let s = Sita::new(4);
        let mut seen = [false; 4];
        for f in 0..64u32 {
            seen[s.owner(f)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash fallback left a node unused");
    }

    #[test]
    fn crash_drains_the_band_to_a_live_stand_in_and_back() {
        let mut s = hinted(4);
        let statics: Vec<NodeId> = (0..8u32).map(|f| s.owner(f)).collect();
        let victim = statics[0];
        s.node_down(SimTime::ZERO, victim);
        for f in 0..8u32 {
            let owner = s.owner(f);
            assert_ne!(owner, victim, "dead node still owns file {f}");
            assert!(owner < 4);
        }
        s.node_up(SimTime::ZERO, victim);
        let after: Vec<NodeId> = (0..8u32).map(|f| s.owner(f)).collect();
        assert_eq!(after, statics, "recovery restores the static bands");
    }

    #[test]
    fn forwarding_flag_tracks_ownership() {
        let mut s = hinted(2);
        let owner = s.owner(0u32);
        let a = s.assign(SimTime::ZERO, owner, 0.into());
        assert!(!a.forwarded);
        let other = 1 - owner;
        let b = s.assign(SimTime::ZERO, other, 0.into());
        assert!(b.forwarded);
    }
}
