//! JIQ — the join-idle-queue dispatcher (Lu et al., Performance 2011).
//!
//! The switch keeps a queue of nodes that have reported themselves idle.
//! An arrival joins an idle node when one is available and otherwise
//! falls back to blind round-robin — the dispatcher deliberately ignores
//! load on busy nodes, which is what makes JIQ's information cost O(1)
//! per request (one idleness notification, no per-arrival probing).
//!
//! In this simulator the switch already observes connection counts for
//! free (the fewest-connections baseline relies on the same channel), so
//! idleness notifications are folded into that accounting instead of
//! being charged as explicit cluster messages — consistent with
//! [`Traditional`](crate::Traditional), which pays nothing for its
//! strictly richer per-arrival load view.
//!
//! The idle set is the zero-load stratum of a [`LoadIndex`] over the
//! live nodes; picking from it with rotating tie-breaking spreads
//! consecutive arrivals over all idle nodes instead of herding onto the
//! lowest id, and stays O(log n) at 1024 nodes.

use crate::{Assignment, Distributor, LoadIndex, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{invariant, SimTime};

/// The join-idle-queue dispatcher. See the module docs.
#[derive(Clone, Debug)]
pub struct Jiq {
    loads: Vec<u32>,
    alive: Vec<bool>,
    /// Live nodes keyed by connection count; its zero-load stratum is
    /// the idle queue.
    index: LoadIndex,
    /// Rotating cursor spreading arrivals over tied idle nodes.
    idle_cursor: usize,
    /// Round-robin fallback cursor for arrivals that find no idle node.
    next: usize,
}

impl Jiq {
    /// A JIQ dispatcher over `n` nodes.
    pub fn new(n: usize) -> Self {
        invariant!(n >= 1, "need at least one node");
        let mut index = LoadIndex::new(n);
        for node in 0..n {
            index.insert(node, 0);
        }
        Jiq {
            loads: vec![0; n],
            alive: vec![true; n],
            index,
            idle_cursor: 0,
            next: 0,
        }
    }
}

impl Distributor for Jiq {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Jiq
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        let node = match self.index.argmin() {
            Some(least) if self.loads[least] == 0 => {
                // At least one node is idle: rotate over the idle set
                // (the minimum-load stratum) so bursts fan out instead
                // of piling onto the lowest idle id.
                self.index
                    .argmin_rotating(&mut self.idle_cursor)
                    .unwrap_or(least)
            }
            _ => {
                // No idle node: JIQ is load-blind, so plain round-robin
                // over the live nodes. An empty rotation (every node
                // down) rejects the connection, cursor untouched.
                let n = self.loads.len();
                let mut node = self.next;
                for _ in 0..n {
                    if self.alive[node] {
                        break;
                    }
                    node = (node + 1) % n;
                }
                if !self.alive[node] {
                    return None;
                }
                self.next = (node + 1) % n;
                node
            }
        };
        self.loads[node] += 1;
        self.index.set_if_present(node, self.loads[node]);
        Some(node)
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        // The connection stays where it is; the switch sees one more
        // request on it.
        self.loads[holder] += 1;
        self.index.set_if_present(holder, self.loads[holder]);
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        self.index.set_if_present(node, self.loads[node]);
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
        self.index.remove(node);
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
        // Strays from before the crash are still settling, so the node
        // rejoins at its live connection count, not at zero.
        self.index.insert(node, self.loads[node]);
    }

    fn abort_undecided(&mut self, _now: SimTime, initial: NodeId) {
        invariant!(
            self.loads[initial] > 0,
            "load conservation violated: abort on node {initial} without an open connection"
        );
        self.loads[initial] -= 1;
        self.index.set_if_present(initial, self.loads[initial]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_nodes_are_taken_before_busy_ones() {
        let mut p = Jiq::new(3);
        // First three arrivals drain the idle queue, visiting every node.
        let mut seen = [false; 3];
        for _ in 0..3 {
            seen[p.arrival_node().unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "an idle node was skipped");
    }

    #[test]
    fn busy_cluster_falls_back_to_round_robin() {
        let mut p = Jiq::new(3);
        for _ in 0..3 {
            p.arrival_node().unwrap(); // all nodes now busy
        }
        let seq: Vec<_> = (0..6).map(|_| p.arrival_node().unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2], "fallback is blind round-robin");
    }

    #[test]
    fn a_completion_reopens_the_idle_queue() {
        let mut p = Jiq::new(2);
        let a = p.arrival_node().unwrap();
        p.assign(SimTime::ZERO, a, 0.into());
        let b = p.arrival_node().unwrap();
        p.assign(SimTime::ZERO, b, 1.into());
        p.complete(SimTime::ZERO, a, 0.into());
        assert_eq!(p.arrival_node().unwrap(), a, "the newly idle node wins");
    }

    #[test]
    fn dead_nodes_leave_both_paths_and_rejoin() {
        let mut p = Jiq::new(3);
        p.node_down(SimTime::ZERO, 1);
        for _ in 0..9 {
            assert_ne!(p.arrival_node().unwrap(), 1, "dead node got a connection");
        }
        p.node_up(SimTime::ZERO, 1);
        // Node 1 is idle (load 0) while the others carry backlog.
        assert_eq!(p.arrival_node().unwrap(), 1, "recovered idle node wins");
    }

    #[test]
    fn abort_undecided_releases_the_connection() {
        let mut p = Jiq::new(2);
        let n = p.arrival_node().unwrap();
        assert_eq!(p.open_connections(n), 1);
        p.abort_undecided(SimTime::ZERO, n);
        assert_eq!(p.open_connections(n), 0);
    }

    #[test]
    fn never_forwards_and_sends_no_messages() {
        let mut p = Jiq::new(4);
        for f in 0..20u32 {
            let n = p.arrival_node().unwrap();
            let a = p.assign(SimTime::ZERO, n, f.into());
            assert!(!a.forwarded);
            assert_eq!(a.control_msgs, 0);
            assert_eq!(p.complete(SimTime::ZERO, n, f.into()), 0);
        }
    }
}
