//! LARD/R — Locality-Aware Request Distribution with Replication
//! (Pai et al., ASPLOS 1998), as re-implemented by the paper's Section 5.
//!
//! A dedicated front-end node accepts and parses every client request
//! and hands it off to a back-end chosen from the file's *server set*:
//!
//! ```text
//! if serverSet(file) is empty:
//!     n <- least-loaded back-end; serverSet(file) = {n}
//! else:
//!     n <- least-loaded member of serverSet(file)
//!     m <- least-loaded back-end overall
//!     if (load(n) > T_high and load(m) < T_low) or load(n) >= 2*T_high:
//!         add m to serverSet(file); n <- m
//!     if |serverSet(file)| > 1 and file not served-and-modified
//!        within K seconds: remove the most-loaded member
//! hand off to n
//! ```
//!
//! The front-end's load view is its own bookkeeping: it increments a
//! back-end's count at hand-off and decrements when the back-end reports
//! completions, which it does in batches of
//! [`LardConfig::report_batch`] ("a back-end node in the LARD server
//! only updates its load information at the front-end when 4 local
//! connections have terminated since the last update").

use crate::{argmin_rotating, Assignment, Distributor, LoadIndex, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{invariant, SimDuration, SimTime};

/// LARD tuning parameters; defaults are the values of Pai et al. that
/// the paper adopts ("the same execution parameters as determined by
/// the designers of LARD").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LardConfig {
    /// `T_low` — a node below this many connections has idle capacity
    /// (default 25).
    pub t_low: u32,
    /// `T_high` — a node above this many connections is overloaded
    /// (default 65).
    pub t_high: u32,
    /// Server sets older than this with more than one member shed their
    /// most-loaded member (default 20 s).
    pub shrink_after: SimDuration,
    /// Completions a back-end batches before reporting to the front-end
    /// (default 4).
    pub report_batch: u32,
}

impl Default for LardConfig {
    fn default() -> Self {
        LardConfig {
            t_low: 25,
            t_high: 65,
            shrink_after: SimDuration::from_secs_f64(20.0),
            report_batch: 4,
        }
    }
}

/// Per-file server set, stored densely by interned [`FileId`]. Empty
/// `members` means the file has never been requested (the algorithm
/// never shrinks a set below one member once created).
#[derive(Clone, Debug)]
struct ServerSet {
    members: Vec<NodeId>,
    last_modified: SimTime,
}

impl Default for ServerSet {
    fn default() -> Self {
        ServerSet {
            members: Vec::new(),
            last_modified: SimTime::ZERO,
        }
    }
}

/// Which flavor of LARD the server runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LardMode {
    /// LARD/R: hot files replicate onto additional back-ends (the
    /// variant the paper compares L2S against).
    Replicated,
    /// Basic LARD (Pai et al.'s simpler algorithm): a file has exactly
    /// one server at a time; overload *moves* it instead of replicating.
    Basic,
}

/// Back-end range for an `n`-node LARD server (degenerate at `n = 1`).
fn back_end_range(n: usize) -> std::ops::Range<NodeId> {
    if n == 1 {
        0..1
    } else {
        1..n
    }
}

/// The LARD/R server. Node 0 is the dedicated front-end: it distributes
/// but never serves (and its cache space is wasted — one of the
/// limitations motivating L2S). With a single node the server
/// degenerates to serving locally.
#[derive(Clone, Debug)]
pub struct Lard {
    config: LardConfig,
    nodes: usize,
    mode: LardMode,
    /// Dispatcher organization (Aron et al., USENIX 2000, discussed in
    /// the paper's Section 6): client connections are accepted by every
    /// non-dispatcher node, which queries the dispatcher (node 0) for
    /// the target and hands the connection off itself. Costs a two-way
    /// message per request but removes connection establishment from
    /// the bottleneck node.
    dispatched: bool,
    next_arrival: NodeId,
    /// Ground-truth open connections per node.
    true_loads: Vec<u32>,
    /// The front-end's view of back-end loads.
    viewed_loads: Vec<u32>,
    /// Completions not yet reported to the front-end, per back-end.
    unreported: Vec<u32>,
    /// `sets[file.index()]` — dense by interned file id, grown on demand
    /// (or up front via `hint_files`).
    sets: Vec<ServerSet>,
    /// The *live* back-end node ids, precomputed so least-loaded scans
    /// borrow instead of collecting.
    back_ends: Vec<NodeId>,
    /// Least-loaded index mirroring `viewed_loads` over exactly the
    /// `back_ends` membership, so the whole-cluster scans in `assign`
    /// cost O(log n) per request instead of O(n). Member-set scans stay
    /// naive — sets are bounded by the replication degree.
    view_index: LoadIndex,
    /// Per-node liveness; crashed back-ends leave every server set, and
    /// a crashed front-end loses its distribution state.
    alive: Vec<bool>,
    /// Rotating tie-break cursor for least-loaded selections.
    tie_cursor: usize,
    /// Control messages emitted since the last drain.
    outbox: Vec<(NodeId, NodeId)>,
}

impl Lard {
    /// A LARD/R server over `n` nodes (front-end plus `n - 1`
    /// back-ends).
    pub fn new(n: usize, config: LardConfig) -> Self {
        Self::build(n, config, LardMode::Replicated, false)
    }

    /// Basic LARD (no replication): overload moves a file's single
    /// server instead of replicating it.
    pub fn basic(n: usize, config: LardConfig) -> Self {
        Self::build(n, config, LardMode::Basic, false)
    }

    /// The dispatcher organization of Section 6: connections land on the
    /// serving nodes round-robin; the distribution decision costs a
    /// two-way message to the dedicated dispatcher (node 0).
    pub fn dispatcher(n: usize, config: LardConfig) -> Self {
        Self::build(n, config, LardMode::Replicated, true)
    }

    fn build(n: usize, config: LardConfig, mode: LardMode, dispatched: bool) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        l2s_util::invariant!(config.t_low < config.t_high, "T_low must be below T_high");
        l2s_util::invariant!(config.report_batch >= 1, "report batch must be at least 1");
        let mut view_index = LoadIndex::new(n);
        for node in back_end_range(n) {
            view_index.insert(node, 0);
        }
        Lard {
            config,
            nodes: n,
            mode,
            dispatched,
            next_arrival: if n == 1 { 0 } else { 1 },
            true_loads: vec![0; n],
            viewed_loads: vec![0; n],
            unreported: vec![0; n],
            sets: Vec::new(),
            back_ends: back_end_range(n).collect(),
            view_index,
            alive: vec![true; n],
            tie_cursor: 0,
            outbox: Vec::new(),
        }
    }

    /// The dedicated front-end node.
    pub fn front_end(&self) -> NodeId {
        0
    }

    /// Members of `file`'s server set (empty if never requested). For
    /// tests and analysis.
    pub fn server_set(&self, file: impl Into<FileId>) -> &[NodeId] {
        self.sets
            .get(file.into().index())
            .map(|s| s.members.as_slice())
            .unwrap_or(&[])
    }

    /// Grows the dense set table to cover `file`.
    fn ensure_file(&mut self, file: FileId) {
        if self.sets.len() <= file.index() {
            self.sets.resize_with(file.index() + 1, ServerSet::default);
        }
    }
}

impl Distributor for Lard {
    fn kind(&self) -> PolicyKind {
        match (self.mode, self.dispatched) {
            (LardMode::Replicated, false) => PolicyKind::Lard,
            (LardMode::Basic, _) => PolicyKind::LardBasic,
            (LardMode::Replicated, true) => PolicyKind::LardDispatcher,
        }
    }

    fn hint_files(&mut self, n: usize) {
        if self.sets.len() < n {
            self.sets.resize_with(n, ServerSet::default);
        }
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // LARD deliberately always answers `Some`: clients target a
        // hardwired next hop (the front-end, or the DNS rotation's next
        // serving address) whether or not it is up, and the engine's
        // liveness check fails the connection there. This models the
        // dedicated distributor's failure mode rather than an
        // all-knowing switch that rejects up front.
        if self.dispatched && self.nodes > 1 {
            // Round-robin DNS over the serving nodes, skipping dead
            // addresses (the client's retry lands on the next name).
            let span = self.nodes - 1;
            for step in 0..span {
                let candidate = 1 + (self.next_arrival - 1 + step) % span;
                if self.alive[candidate] {
                    self.next_arrival = 1 + (candidate % span);
                    return Some(candidate);
                }
            }
            // Every serving node is down: the connection attempt targets
            // the rotation's next address anyway and the engine fails it.
            let node = self.next_arrival;
            self.next_arrival = 1 + (node % span);
            Some(node)
        } else {
            // Every client connection goes to the front-end (if the
            // front-end is down, the connection attempt simply fails —
            // the dedicated distributor is a single point of failure).
            Some(self.front_end())
        }
    }

    fn assign(&mut self, now: SimTime, initial: NodeId, file: FileId) -> Assignment {
        // New client connections land on the front-end (or, in the
        // dispatcher organization, on any serving node). With persistent
        // connections, later requests of a connection originate at the
        // back-end currently holding it, so `initial` may be any node;
        // the distribution decision is unchanged (the paper's Section 4
        // points to Aron et al. '99 for the P-HTTP handling).
        self.ensure_file(file);
        if self.back_ends.is_empty() {
            // Every back-end is down: there is no server to pick. The
            // request is handed to the lowest (dead) back-end id and the
            // engine's liveness check fails it at hand-off; no server set
            // is created for the file.
            let target = back_end_range(self.nodes).start;
            self.true_loads[target] += 1;
            self.viewed_loads[target] += 1;
            return Assignment {
                service: target,
                forwarded: target != initial,
                control_msgs: 0,
            };
        }
        let cfg = self.config;
        let mode = self.mode;
        // Disjoint borrows of the decision tables so the hot path never
        // clones the load view or the candidate list. `viewed_loads` is
        // only mutated after the decision, so borrowing it is equivalent
        // to the snapshot the front-end acts on.
        let Lard {
            viewed_loads,
            sets,
            view_index,
            tie_cursor,
            ..
        } = self;
        let loads = &*viewed_loads;
        let set = &mut sets[file.index()];
        let target = if set.members.is_empty() {
            // Whole-cluster least-loaded pick via the index
            // (selection-identical to the old scan over `back_ends`,
            // which is non-empty here). The view index mirrors
            // `back_ends`, so the pick always exists; an empty index
            // here would be state corruption, not an all-down cluster
            // (that case was handed off above), and must fail loudly
            // rather than silently become node 0.
            let n = view_index.argmin_rotating(tie_cursor).unwrap_or_else(|| {
                l2s_util::invariant::invariant_failed(format_args!(
                    "back-end view index empty while back_ends is non-empty"
                ))
            });
            set.members.push(n);
            set.last_modified = now;
            n
        } else {
            let n = argmin_rotating(&set.members, |m| loads[m], tie_cursor);
            let m = view_index.argmin_rotating(tie_cursor).unwrap_or_else(|| {
                l2s_util::invariant::invariant_failed(format_args!(
                    "back-end view index empty while back_ends is non-empty"
                ))
            });
            let mut chosen = n;
            let overloaded =
                loads[n] > cfg.t_high && loads[m] < cfg.t_low || loads[n] >= 2 * cfg.t_high;
            if overloaded {
                match mode {
                    LardMode::Replicated => {
                        if !set.members.contains(&m) {
                            set.members.push(m);
                            set.last_modified = now;
                        }
                    }
                    LardMode::Basic => {
                        // Basic LARD moves the file: the single
                        // server is replaced outright.
                        set.members.clear();
                        set.members.push(m);
                        set.last_modified = now;
                    }
                }
                chosen = m;
            }
            // Replication decay: old multi-member sets shed their
            // most-loaded member.
            if set.members.len() > 1 && now.saturating_since(set.last_modified) > cfg.shrink_after {
                if let Some(&most) = set.members.iter().max_by_key(|&&mm| (loads[mm], mm)) {
                    set.members.retain(|&mm| mm != most);
                    set.last_modified = now;
                    if chosen == most {
                        if let Some(&least) = set.members.iter().min_by_key(|&&mm| (loads[mm], mm))
                        {
                            chosen = least;
                        }
                    }
                }
            }
            chosen
        };
        self.true_loads[target] += 1;
        // The front-end/dispatcher made the assignment, so its view
        // updates immediately.
        self.viewed_loads[target] += 1;
        self.view_index
            .set_if_present(target, self.viewed_loads[target]);
        let control_msgs = if self.dispatched && self.nodes > 1 {
            // Query + reply between the accepting node and the
            // dispatcher.
            self.outbox.push((initial, self.front_end()));
            self.outbox.push((self.front_end(), initial));
            2
        } else {
            0
        };
        Assignment {
            service: target,
            forwarded: target != initial,
            control_msgs,
        }
    }

    /// P-HTTP adaptation (Aron et al., USENIX '99): a back-end holding a
    /// persistent connection serves the next request itself when it is
    /// already in the file's server set; otherwise the connection is
    /// handed off per the normal front-end decision.
    fn assign_continuation(&mut self, now: SimTime, holder: NodeId, file: FileId) -> Assignment {
        let in_set = self
            .sets
            .get(file.index())
            .map(|s| s.members.contains(&holder))
            .unwrap_or(false);
        if in_set {
            self.true_loads[holder] += 1;
            self.viewed_loads[holder] += 1;
            self.view_index
                .set_if_present(holder, self.viewed_loads[holder]);
            Assignment {
                service: holder,
                forwarded: false,
                control_msgs: 0,
            }
        } else {
            self.assign(now, holder, file)
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.true_loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.true_loads[node] -= 1;
        if !self.alive[node] {
            // An engine-settled connection on a crashed node: the
            // front-end observes the connection reset directly, so the
            // view updates without a report message. (A dead node is
            // absent from the index, so there is nothing to mirror.)
            self.viewed_loads[node] = self.viewed_loads[node].saturating_sub(1);
            return 0;
        }
        self.unreported[node] += 1;
        if self.unreported[node] >= self.config.report_batch {
            let batch = self.unreported[node];
            self.unreported[node] = 0;
            self.viewed_loads[node] = self.viewed_loads[node].saturating_sub(batch);
            self.view_index
                .set_if_present(node, self.viewed_loads[node]);
            if node == self.front_end() || !self.alive[self.front_end()] {
                // Degenerate single-node server (the "report" is local),
                // or no front-end to report to.
                0
            } else {
                self.outbox.push((node, self.front_end()));
                1 // one report message to the front-end
            }
        } else {
            0
        }
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.true_loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        self.back_ends.clone()
    }

    fn drain_messages(&mut self, out: &mut Vec<(NodeId, NodeId)>) {
        out.append(&mut self.outbox);
    }

    fn node_down(&mut self, now: SimTime, node: NodeId) {
        invariant!(self.alive[node], "node_down on a node that is already down");
        self.alive[node] = false;
        if node == self.front_end() && self.nodes > 1 {
            // The front-end's distribution state — server sets, load
            // views, report counters — dies with it and is rebuilt from
            // scratch at recovery.
            for set in &mut self.sets {
                if !set.members.is_empty() {
                    set.members.clear();
                    set.last_modified = now;
                }
            }
        } else {
            // A dead back-end leaves the candidate list and every server
            // set; files it owned alone are reassigned by their next
            // request (set pruned empty = never requested).
            self.back_ends.retain(|&b| b != node);
            self.view_index.remove(node);
            for set in &mut self.sets {
                let before = set.members.len();
                set.members.retain(|&m| m != node);
                if set.members.len() != before {
                    set.last_modified = now;
                }
            }
        }
        // The dead node's load is *not* zeroed here: the engine settles
        // each of its in-flight requests through `complete` /
        // `abort_assigned`, keeping conservation exact.
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        invariant!(!self.alive[node], "node_up on a node that is already up");
        self.alive[node] = true;
        if node == self.front_end() && self.nodes > 1 {
            // Recovery handshake: the restarted front-end polls every
            // node for its true load and starts report counters afresh.
            // This rare out-of-band exchange is not charged as messages.
            self.viewed_loads.copy_from_slice(&self.true_loads);
            self.unreported.fill(0);
            for &b in &self.back_ends {
                self.view_index.update(b, self.viewed_loads[b]);
            }
        } else {
            self.back_ends.push(node);
            self.back_ends.sort_unstable();
            self.viewed_loads[node] = self.true_loads[node];
            self.unreported[node] = 0;
            self.view_index.insert(node, self.viewed_loads[node]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lard(n: usize) -> Lard {
        Lard::new(n, LardConfig::default())
    }

    #[test]
    fn front_end_never_serves() {
        let mut l = lard(4);
        for f in 0..100u32 {
            let initial = l.arrival_node().unwrap();
            assert_eq!(initial, 0);
            let a = l.assign(SimTime::ZERO, initial, f.into());
            assert_ne!(a.service, 0, "front-end must not serve");
            assert!(a.forwarded, "every LARD request is handed off");
        }
        assert_eq!(l.open_connections(0), 0);
    }

    #[test]
    fn first_request_picks_least_loaded_back_end() {
        let mut l = lard(3);
        // Preload back-end 1 with traffic for another file.
        for _ in 0..5 {
            l.assign(SimTime::ZERO, 0, 99.into());
        }
        // First request picked node 1 (both idle, lowest id). Now file 7
        // must go to node 2 if 1 is busier.
        let busier = l.server_set(99)[0];
        let a = l.assign(SimTime::ZERO, 0, 7.into());
        assert_ne!(a.service, busier);
        assert_eq!(l.server_set(7), &[a.service]);
    }

    #[test]
    fn requests_stick_to_the_server_set() {
        let mut l = lard(4);
        let first = l.assign(SimTime::ZERO, 0, 5.into()).service;
        for _ in 0..20 {
            let a = l.assign(SimTime::ZERO, 0, 5.into());
            assert_eq!(a.service, first, "below T_high the set never grows");
        }
        assert_eq!(l.server_set(5).len(), 1);
    }

    #[test]
    fn overload_replicates_the_file() {
        let mut l = lard(3);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        // Push the owner past T_high while the other back-end stays idle.
        for _ in 0..70 {
            l.assign(SimTime::ZERO, 0, 5.into());
        }
        assert!(l.open_connections(owner) > LardConfig::default().t_high);
        let a = l.assign(SimTime::ZERO, 0, 5.into());
        assert_ne!(a.service, owner, "hot file spills to an idle node");
        assert_eq!(l.server_set(5).len(), 2, "set grew");
    }

    #[test]
    fn stale_sets_shrink_after_interval() {
        let mut l = lard(3);
        // Build a two-member set.
        for _ in 0..72 {
            l.assign(SimTime::ZERO, 0, 5.into());
        }
        assert_eq!(l.server_set(5).len(), 2);
        // Drain everything so loads are 0 and report.
        for node in [1usize, 2] {
            while l.open_connections(node) > 0 {
                l.complete(SimTime::ZERO, node, 5.into());
            }
        }
        // Much later, the next request shrinks the set back to one.
        let later = SimTime::from_secs_f64(100.0);
        l.assign(later, 0, 5.into());
        assert_eq!(l.server_set(5).len(), 1, "stale replica removed");
    }

    #[test]
    fn completions_report_in_batches() {
        let mut l = lard(2);
        for _ in 0..8 {
            l.assign(SimTime::ZERO, 0, 1.into());
        }
        let mut msgs = 0;
        for _ in 0..8 {
            msgs += l.complete(SimTime::ZERO, 1, 1.into());
        }
        assert_eq!(msgs, 2, "8 completions / batch of 4 = 2 reports");
    }

    #[test]
    fn viewed_load_lags_true_load() {
        let mut l = lard(2);
        for _ in 0..4 {
            l.assign(SimTime::ZERO, 0, 1.into());
        }
        // 3 completions: unreported, front-end still sees 4.
        for _ in 0..3 {
            assert_eq!(l.complete(SimTime::ZERO, 1, 1.into()), 0);
        }
        assert_eq!(l.open_connections(1), 1);
        assert_eq!(l.viewed_loads[1], 4, "view is stale until the batch");
        assert_eq!(l.complete(SimTime::ZERO, 1, 1.into()), 1);
        assert_eq!(l.viewed_loads[1], 0, "batch report synchronizes view");
    }

    #[test]
    fn single_node_degenerates_to_local_service() {
        let mut l = lard(1);
        let initial = l.arrival_node().unwrap();
        let a = l.assign(SimTime::ZERO, initial, 3.into());
        assert_eq!(a.service, 0);
        assert!(!a.forwarded);
        assert_eq!(l.serving_nodes(), vec![0]);
    }

    #[test]
    fn serving_nodes_excludes_front_end() {
        let l = lard(5);
        assert_eq!(l.serving_nodes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn continuation_sticks_to_set_member() {
        let mut l = lard(3);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        // The owner holds a persistent connection: the next request for
        // 5 is served locally without a hand-off.
        let a = l.assign_continuation(SimTime::ZERO, owner, 5.into());
        assert_eq!(a.service, owner);
        assert!(!a.forwarded);
    }

    #[test]
    fn continuation_for_foreign_file_is_handed_off() {
        let mut l = lard(3);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        let other = if owner == 1 { 2 } else { 1 };
        // `other` holds the connection but is not in 5's server set: the
        // normal algorithm decides (and keeps the single owner).
        let a = l.assign_continuation(SimTime::ZERO, other, 5.into());
        assert_eq!(a.service, owner);
        assert!(a.forwarded);
        assert_eq!(l.server_set(5), &[owner]);
    }

    #[test]
    fn basic_lard_moves_instead_of_replicating() {
        let cfg = LardConfig::default();
        let mut l = Lard::basic(3, cfg);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        // Push the owner past 2*T_high so the move rule fires even
        // without an idle target.
        for _ in 0..(2 * cfg.t_high + 2) {
            l.assign(SimTime::ZERO, 0, 5.into());
        }
        let set = l.server_set(5);
        assert_eq!(set.len(), 1, "basic LARD never replicates");
        assert_ne!(set[0], owner, "the file moved to another back-end");
    }

    #[test]
    fn dispatcher_variant_accepts_on_back_ends() {
        let mut l = Lard::dispatcher(4, LardConfig::default());
        let arrivals: Vec<_> = (0..6).map(|_| l.arrival_node().unwrap()).collect();
        assert_eq!(
            arrivals,
            vec![1, 2, 3, 1, 2, 3],
            "round-robin over serving nodes"
        );
        let a = l.assign(SimTime::ZERO, 1, 9.into());
        assert_ne!(a.service, 0, "dispatcher itself never serves");
        assert_eq!(a.control_msgs, 2, "query + reply to the dispatcher");
        let mut out = Vec::new();
        l.drain_messages(&mut out);
        assert_eq!(out, vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn back_end_crash_reassigns_orphaned_files() {
        let mut l = lard(3);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        l.node_down(SimTime::ZERO, owner);
        assert_eq!(l.serving_nodes().len(), 1);
        assert!(l.server_set(5).is_empty(), "orphaned set pruned");
        let a = l.assign(SimTime::ZERO, 0, 5.into());
        assert_ne!(a.service, owner, "file reassigned to a live back-end");
        assert_eq!(l.server_set(5), &[a.service]);
        l.node_up(SimTime::ZERO, owner);
        assert_eq!(l.serving_nodes(), vec![1, 2]);
    }

    #[test]
    fn all_back_ends_down_fails_deterministically() {
        let mut l = lard(3);
        l.node_down(SimTime::ZERO, 1);
        l.node_down(SimTime::ZERO, 2);
        let a = l.assign(SimTime::ZERO, 0, 5.into());
        assert_eq!(a.service, 1, "handed to the lowest back-end id (dead)");
        assert!(l.server_set(5).is_empty(), "no set created while headless");
        // The engine settles the doomed hand-off; load conservation holds.
        assert_eq!(l.complete(SimTime::ZERO, 1, 5.into()), 0);
        assert_eq!(l.open_connections(1), 0);
    }

    #[test]
    fn dead_back_end_completions_reset_without_reports() {
        let mut l = lard(2);
        for _ in 0..8 {
            l.assign(SimTime::ZERO, 0, 1.into());
        }
        l.node_down(SimTime::ZERO, 1);
        let mut msgs = 0;
        for _ in 0..8 {
            msgs += l.complete(SimTime::ZERO, 1, 1.into());
        }
        assert_eq!(msgs, 0, "connection resets, not report messages");
        assert_eq!(l.viewed_loads[1], 0, "the view settles with the resets");
        assert_eq!(l.open_connections(1), 0);
    }

    #[test]
    fn front_end_crash_wipes_state_and_recovery_resyncs() {
        let mut l = lard(3);
        let owner = l.assign(SimTime::ZERO, 0, 5.into()).service;
        for _ in 0..7 {
            l.assign(SimTime::ZERO, 0, 5.into());
        }
        l.node_down(SimTime::ZERO, 0);
        assert!(l.server_set(5).is_empty(), "sets die with the front-end");
        // Completions while headless produce no report messages.
        let mut msgs = 0;
        for _ in 0..4 {
            msgs += l.complete(SimTime::ZERO, owner, 5.into());
        }
        assert_eq!(msgs, 0, "no reports to a dead front-end");
        l.node_up(SimTime::ZERO, 0);
        assert_eq!(
            l.viewed_loads[owner],
            l.open_connections(owner),
            "recovery handshake resyncs the view"
        );
        let a = l.assign(SimTime::ZERO, 0, 5.into());
        assert_eq!(l.server_set(5), &[a.service], "distribution restarts");
    }

    #[test]
    fn dispatcher_rotation_skips_dead_acceptors() {
        let mut l = Lard::dispatcher(4, LardConfig::default());
        l.node_down(SimTime::ZERO, 2);
        let arrivals: Vec<_> = (0..4).map(|_| l.arrival_node().unwrap()).collect();
        assert_eq!(arrivals, vec![1, 3, 1, 3], "dead acceptor skipped");
        l.node_up(SimTime::ZERO, 2);
        let arrivals: Vec<_> = (0..3).map(|_| l.arrival_node().unwrap()).collect();
        assert_eq!(arrivals, vec![1, 2, 3], "rotation heals on recovery");
    }

    #[test]
    fn dispatcher_can_pick_the_accepting_node() {
        let mut l = Lard::dispatcher(2, LardConfig::default());
        // Only one back-end: it accepts and serves everything itself.
        let initial = l.arrival_node().unwrap();
        assert_eq!(initial, 1);
        let a = l.assign(SimTime::ZERO, initial, 3.into());
        assert_eq!(a.service, 1);
        assert!(!a.forwarded, "no hand-off when the decision is local");
    }
}
