//! L2S — the Locality and Load balancing Server (Section 4 of the paper).
//!
//! Every node can accept, distribute, *and* serve requests: client
//! connections are spread by round-robin DNS; the receiving ("initial")
//! node parses the request and decides locally, using its own — possibly
//! stale — view of cluster load:
//!
//! * the initial node serves the request itself if it is not overloaded
//!   (at most `T` open connections) and either belongs to the file's
//!   server set or the file has never been requested;
//! * otherwise the request is handed off to the least-loaded member of
//!   the file's server set;
//! * a node outside the server set is chosen (and added to the set —
//!   replication) only when **both** the initial node and the
//!   least-loaded member are overloaded;
//! * server sets shrink again when the assigned node is underloaded
//!   (below `t`), the set has more than one member, and the set has not
//!   been modified for a while — bounding replication.
//!
//! Load dissemination is threshold-triggered: a node (re)broadcasts its
//! connection count when it drifts `broadcast_delta` connections from
//! the last broadcast value (4 in Section 5.1). Server-set changes are
//! broadcast immediately; they are rare in steady state. Each broadcast
//! costs `N - 1` point-to-point messages, which the simulator charges
//! to CPUs and NIs.

use crate::{argmin_rotating, Assignment, Distributor, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{invariant, SimDuration, SimTime};

/// L2S tuning parameters; defaults are the paper's Section 5.1 values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct L2sConfig {
    /// `T` — a node with more than this many open connections is
    /// overloaded (default 20).
    pub t_high: u32,
    /// `t` — a node below this many connections is underloaded, enabling
    /// server-set shrinking (default 10).
    pub t_low: u32,
    /// A node rebroadcasts its load when it drifts this many connections
    /// from the last broadcast value (default 4).
    pub broadcast_delta: u32,
    /// Minimum age of a server set before it may shrink (default 5 s).
    pub shrink_after: SimDuration,
}

impl Default for L2sConfig {
    fn default() -> Self {
        L2sConfig {
            t_high: 20,
            t_low: 10,
            broadcast_delta: 4,
            shrink_after: SimDuration::from_secs_f64(5.0),
        }
    }
}

/// Per-file server set, stored densely by interned [`FileId`]. Empty
/// `members` means the file has never been requested (sets never shrink
/// below one member once created).
#[derive(Clone, Debug)]
struct ServerSet {
    members: Vec<NodeId>,
    last_modified: SimTime,
}

impl Default for ServerSet {
    fn default() -> Self {
        ServerSet {
            members: Vec::new(),
            last_modified: SimTime::ZERO,
        }
    }
}

/// The L2S server.
///
/// Server sets are kept in one structure (their modifications are
/// broadcast immediately and are rare, so the sub-20 µs inconsistency
/// window is below the model's resolution), but **load views are kept
/// per node**: `views[observer][subject]` is what `observer` believes
/// `subject`'s load to be, updated only by broadcasts — except that a
/// node always knows its own load exactly, and the initial node counts
/// the hand-offs it just made.
#[derive(Clone, Debug)]
pub struct L2s {
    config: L2sConfig,
    nodes: usize,
    true_loads: Vec<u32>,
    views: Vec<Vec<u32>>,
    last_broadcast: Vec<u32>,
    /// `sets[file.index()]` — dense by interned file id, grown on demand
    /// (or up front via `hint_files`).
    sets: Vec<ServerSet>,
    next_arrival: usize,
    /// Rotating tie-break cursor for least-loaded selections.
    tie_cursor: usize,
    /// The *live* node ids in ascending order, precomputed so
    /// whole-cluster argmin scans borrow instead of collecting. All of
    /// `0..nodes` while the cluster is healthy.
    all_nodes: Vec<NodeId>,
    /// Per-node liveness; crashed nodes leave every candidate set and
    /// receive no broadcasts.
    alive: Vec<bool>,
    /// Control messages emitted since the last drain.
    outbox: Vec<(NodeId, NodeId)>,
}

impl L2s {
    /// An L2S server over `n` nodes.
    pub fn new(n: usize, config: L2sConfig) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        l2s_util::invariant!(config.t_low < config.t_high, "t must be below T");
        l2s_util::invariant!(
            config.broadcast_delta >= 1,
            "broadcast delta must be at least 1"
        );
        L2s {
            config,
            nodes: n,
            true_loads: vec![0; n],
            views: vec![vec![0; n]; n],
            last_broadcast: vec![0; n],
            sets: Vec::new(),
            next_arrival: 0,
            tie_cursor: 0,
            all_nodes: (0..n).collect(),
            alive: vec![true; n],
            outbox: Vec::new(),
        }
    }

    /// Members of `file`'s server set (empty if never requested).
    pub fn server_set(&self, file: impl Into<FileId>) -> &[NodeId] {
        self.sets
            .get(file.into().index())
            .map(|s| s.members.as_slice())
            .unwrap_or(&[])
    }

    /// Grows the dense set table to cover `file`.
    fn ensure_file(&mut self, file: FileId) {
        if self.sets.len() <= file.index() {
            self.sets.resize_with(file.index() + 1, ServerSet::default);
        }
    }

    /// What `observer` currently believes `subject`'s load to be.
    pub fn viewed_load(&self, observer: NodeId, subject: NodeId) -> u32 {
        if observer == subject {
            self.true_loads[subject]
        } else {
            self.views[observer][subject]
        }
    }

    /// Applies a load change at `node` and returns the number of
    /// point-to-point messages if the broadcast threshold tripped. A
    /// crashed node cannot send (its stray completions settle silently),
    /// and crashed observers receive nothing — their views are resynced
    /// when they rejoin.
    fn note_load_change(&mut self, node: NodeId) -> u32 {
        if !self.alive[node] {
            return 0;
        }
        let current = self.true_loads[node];
        let drift = current.abs_diff(self.last_broadcast[node]);
        if drift >= self.config.broadcast_delta {
            let mut sent = 0u32;
            for observer in 0..self.nodes {
                if !self.alive[observer] {
                    continue;
                }
                self.views[observer][node] = current;
                if observer != node {
                    self.outbox.push((node, observer));
                    sent += 1;
                }
            }
            self.last_broadcast[node] = current;
            sent
        } else {
            0
        }
    }
}

impl Distributor for L2s {
    fn kind(&self) -> PolicyKind {
        PolicyKind::L2s
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // Round-robin DNS; a dead address is skipped (the client's
        // connection attempt fails and its retry lands on the next name
        // in the rotation). With every address dead the connection is
        // rejected outright, cursor untouched.
        for step in 0..self.nodes {
            let candidate = (self.next_arrival + step) % self.nodes;
            if self.alive[candidate] {
                self.next_arrival = (candidate + 1) % self.nodes;
                return Some(candidate);
            }
        }
        None
    }

    fn hint_files(&mut self, n: usize) {
        if self.sets.len() < n {
            self.sets.resize_with(n, ServerSet::default);
        }
    }

    fn assign(&mut self, now: SimTime, initial: NodeId, file: FileId) -> Assignment {
        self.ensure_file(file);
        let cfg = self.config;
        let nodes = self.nodes;
        let mut msgs = 0u32;
        // Disjoint borrows of the policy's tables so the hot path never
        // clones the view row, the candidate list, or the server set.
        let L2s {
            true_loads,
            views,
            sets,
            tie_cursor,
            all_nodes,
            alive,
            outbox,
            ..
        } = self;
        let own_load = true_loads[initial];

        // A server-set change is announced to every *live* peer (all
        // `N - 1` of them while the cluster is healthy).
        let broadcast_set_change = |outbox: &mut Vec<(NodeId, NodeId)>| -> u32 {
            let mut sent = 0u32;
            for o in 0..nodes {
                if o != initial && alive[o] {
                    outbox.push((initial, o));
                    sent += 1;
                }
            }
            sent
        };

        // The decision is taken on `initial`'s view of the world (its own
        // load it knows exactly). Nothing below mutates loads or views
        // until the decision is final, so reading through this closure is
        // equivalent to snapshotting the row.
        let view = |k: NodeId| {
            if k == initial {
                true_loads[initial]
            } else {
                views[initial][k]
            }
        };

        // L2S deliberately keeps the naive scans where LARD and the
        // traditional switch now use `LoadIndex`: every decision here
        // reads the *initial node's own stale view*, and maintaining one
        // index per observer would cost O(n) index updates per broadcast
        // — strictly worse than the rare whole-cluster scans below,
        // which only run on a file's first overloaded request or under
        // dual overload. Member-set scans are bounded by the replication
        // degree. See DESIGN.md "Scaling architecture".
        let service = if !sets[file.index()].members.is_empty() {
            let members = &sets[file.index()].members;
            if members.contains(&initial) && own_load <= cfg.t_high {
                initial
            } else {
                let n = argmin_rotating(members, &view, tie_cursor);
                if view(n) <= cfg.t_high {
                    n
                } else if own_load > cfg.t_high {
                    // Both the initial node and the least-loaded member
                    // are overloaded: replicate onto the least-loaded
                    // node overall.
                    let m = argmin_rotating(all_nodes, &view, tie_cursor);
                    let set = &mut sets[file.index()];
                    if !set.members.contains(&m) {
                        set.members.push(m);
                        set.last_modified = now;
                        msgs += broadcast_set_change(outbox);
                    }
                    m
                } else {
                    // The member is overloaded but the initial node is
                    // not: the replication condition does not hold, so
                    // the request still goes to the caching member.
                    n
                }
            }
        } else {
            // First request for this file.
            let chosen = if own_load <= cfg.t_high {
                initial
            } else {
                argmin_rotating(all_nodes, &view, tie_cursor)
            };
            let set = &mut sets[file.index()];
            set.members.push(chosen);
            set.last_modified = now;
            msgs += broadcast_set_change(outbox);
            chosen
        };

        // Server-set shrinking: the assigned node is underloaded, the set
        // is replicated, and the set has been stable for a while.
        let set = &mut sets[file.index()];
        if set.members.len() > 1
            && view(service) < cfg.t_low
            && now.saturating_since(set.last_modified) > cfg.shrink_after
        {
            // Keep the node that is about to serve the request: prune
            // the most-loaded member among the others (the set has more
            // than one member here, so a victim always exists).
            let victim = set
                .members
                .iter()
                .filter(|&&m| m != service)
                .max_by_key(|&&m| (view(m), m))
                .copied()
                .or_else(|| set.members.iter().max_by_key(|&&m| (view(m), m)).copied());
            if let Some(victim) = victim {
                set.members.retain(|&m| m != victim);
                set.last_modified = now;
                msgs += broadcast_set_change(outbox);
            }
        }

        true_loads[service] += 1;
        views[service][service] = true_loads[service];
        if service != initial {
            // The initial node saw its own hand-off.
            views[initial][service] = views[initial][service].saturating_add(1);
        }
        msgs += self.note_load_change(service);

        Assignment {
            service,
            forwarded: service != initial,
            control_msgs: msgs,
        }
    }

    /// P-HTTP adaptation: a continuation request is served by the node
    /// holding the connection when that node already belongs to the
    /// file's server set and is not overloaded — connection affinity
    /// without a hand-off, but only where locality already lives.
    /// (Serving unconditionally at the holder would replicate every
    /// file onto every connection's node and collapse the aggregate
    /// cache back to the locality-oblivious regime.) Everything else
    /// runs the normal algorithm, migrating the connection to the
    /// content.
    fn assign_continuation(&mut self, now: SimTime, holder: NodeId, file: FileId) -> Assignment {
        let cfg = self.config;
        let in_set = self
            .sets
            .get(file.index())
            .map(|s| s.members.contains(&holder))
            .unwrap_or(false);
        if in_set && self.true_loads[holder] <= cfg.t_high {
            self.true_loads[holder] += 1;
            self.views[holder][holder] = self.true_loads[holder];
            let msgs = self.note_load_change(holder);
            Assignment {
                service: holder,
                forwarded: false,
                control_msgs: msgs,
            }
        } else {
            self.assign(now, holder, file)
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.true_loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.true_loads[node] -= 1;
        self.views[node][node] = self.true_loads[node];
        self.note_load_change(node)
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.true_loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        self.all_nodes.clone()
    }

    fn drain_messages(&mut self, out: &mut Vec<(NodeId, NodeId)>) {
        out.append(&mut self.outbox);
    }

    fn node_down(&mut self, now: SimTime, node: NodeId) {
        invariant!(self.alive[node], "node_down on a node that is already down");
        self.alive[node] = false;
        self.all_nodes.retain(|&n| n != node);
        // `all_nodes` may empty out entirely (all-down cluster);
        // arrivals are rejected before any decision can index it.
        // The crash is announced (the engine models its message costs);
        // every server set sheds the dead member. A set pruned empty
        // behaves like a never-requested file and is recreated on a live
        // node by the next request.
        for set in &mut self.sets {
            let before = set.members.len();
            set.members.retain(|&m| m != node);
            if set.members.len() != before {
                set.last_modified = now;
            }
        }
        // The dead node's load is *not* zeroed here: the engine settles
        // each of its in-flight requests through `complete` /
        // `abort_assigned`, keeping conservation exact.
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        invariant!(!self.alive[node], "node_up on a node that is already up");
        self.alive[node] = true;
        self.all_nodes.push(node);
        self.all_nodes.sort_unstable();
        // Rejoin handshake: the returning node snapshots everyone's load
        // and everyone snapshots its (engine-settled) load, replacing the
        // views that went stale while it was away. This rare out-of-band
        // exchange is not charged as control messages.
        for o in 0..self.nodes {
            self.views[o][node] = self.true_loads[node];
            self.views[node][o] = self.true_loads[o];
        }
        self.last_broadcast[node] = self.true_loads[node];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2s(n: usize) -> L2s {
        L2s::new(n, L2sConfig::default())
    }

    #[test]
    fn first_request_stays_local() {
        let mut s = l2s(4);
        let initial = s.arrival_node().unwrap();
        let a = s.assign(SimTime::ZERO, initial, 7.into());
        assert_eq!(a.service, initial);
        assert!(!a.forwarded);
        assert_eq!(s.server_set(7), &[initial]);
        // Set creation is broadcast to the other 3 nodes.
        assert_eq!(a.control_msgs, 3);
    }

    #[test]
    fn member_serves_its_own_requests_without_forwarding() {
        let mut s = l2s(4);
        let owner = s.arrival_node().unwrap();
        s.assign(SimTime::ZERO, owner, 7.into());
        // Same node receives the file again: serves locally.
        let a = s.assign(SimTime::ZERO, owner, 7.into());
        assert_eq!(a.service, owner);
        assert!(!a.forwarded);
    }

    #[test]
    fn non_member_forwards_to_the_set() {
        let mut s = l2s(4);
        let owner = s.arrival_node().unwrap();
        s.assign(SimTime::ZERO, owner, 7.into());
        let other = s.arrival_node().unwrap();
        assert_ne!(other, owner);
        let a = s.assign(SimTime::ZERO, other, 7.into());
        assert_eq!(a.service, owner, "request follows cache locality");
        assert!(a.forwarded);
    }

    /// Gives `node` ownership of `count` fresh files (while underloaded,
    /// first requests stay local), starting at file id `base`.
    fn seed_files(s: &mut L2s, node: NodeId, base: u32, count: u32) {
        for f in base..base + count {
            let a = s.assign(SimTime::ZERO, node, f.into());
            assert_eq!(a.service, node, "seed request should stay local");
        }
    }

    /// Pumps `node`'s load past the overload threshold by forwarding
    /// requests for its files from `via` (whose own load stays low
    /// enough not to trigger replication).
    fn pump_via_forwards(s: &mut L2s, owner: NodeId, via: NodeId, base: u32, count: u32) {
        for i in 0..count {
            let a = s.assign(SimTime::ZERO, via, (base + (i % 5)).into());
            assert_eq!(a.service, owner);
        }
    }

    #[test]
    fn overload_on_both_sides_replicates() {
        let cfg = L2sConfig::default();
        let mut s = l2s(2);
        // Node 0 owns file 7 plus a working set, pumped past T by
        // forwards from node 1.
        s.assign(SimTime::ZERO, 0, 7.into());
        seed_files(&mut s, 0, 100, 5);
        pump_via_forwards(&mut s, 0, 1, 100, 22);
        assert!(s.open_connections(0) > cfg.t_high);
        // Node 1 fills with first requests of its own until overloaded.
        seed_files(&mut s, 1, 200, cfg.t_high + 1);
        assert!(s.open_connections(1) > cfg.t_high);
        assert_eq!(s.server_set(7).len(), 1);
        // Now a request for 7 lands on overloaded node 1 while the sole
        // member (node 0) is also overloaded: replication.
        let a = s.assign(SimTime::ZERO, 1, 7.into());
        assert_eq!(s.server_set(7).len(), 2, "replicated under dual overload");
        assert!(s.server_set(7).contains(&a.service));
    }

    #[test]
    fn no_replication_when_initial_is_underloaded() {
        let cfg = L2sConfig::default();
        let mut s = l2s(2);
        s.assign(SimTime::ZERO, 0, 7.into());
        seed_files(&mut s, 0, 100, 5);
        pump_via_forwards(&mut s, 0, 1, 100, 22);
        assert!(s.open_connections(0) > cfg.t_high);
        // Broadcasts (every 4 connections) keep node 1's view overloaded.
        assert!(s.viewed_load(1, 0) > cfg.t_high);
        // Node 1 is idle; it receives a request for 7. The set member is
        // overloaded but node 1 is not, so the request is still forwarded
        // (no replication).
        let a = s.assign(SimTime::ZERO, 1, 7.into());
        assert_eq!(a.service, 0);
        assert_eq!(s.server_set(7).len(), 1);
    }

    #[test]
    fn sets_shrink_when_underloaded_and_stale() {
        let mut s = l2s(2);
        // Build a replicated set by dual overload.
        s.assign(SimTime::ZERO, 0, 7.into());
        for _ in 0..30 {
            s.assign(SimTime::ZERO, 0, 7.into());
        }
        for _ in 0..30 {
            s.assign(SimTime::ZERO, 1, 9.into());
        }
        s.assign(SimTime::ZERO, 1, 7.into());
        assert_eq!(s.server_set(7).len(), 2);
        // Drain all load.
        for node in 0..2 {
            while s.open_connections(node) > 0 {
                s.complete(SimTime::ZERO, node, 7.into());
            }
        }
        // Well past the shrink interval, an underloaded assignment prunes
        // the set.
        let later = SimTime::from_secs_f64(60.0);
        s.assign(later, 0, 7.into());
        assert_eq!(s.server_set(7).len(), 1, "stale replica pruned");
    }

    #[test]
    fn load_broadcasts_fire_every_delta_changes() {
        let cfg = L2sConfig::default();
        let mut s = l2s(4);
        s.assign(SimTime::ZERO, 0, 1.into()); // set creation: 3 msgs
        let mut msgs = 0;
        for _ in 0..cfg.broadcast_delta {
            msgs += s.assign(SimTime::ZERO, 0, 1.into()).control_msgs;
        }
        // Load went 1 -> 5; threshold 4 tripped exactly once.
        assert_eq!(msgs, 3, "one broadcast of N-1 messages");
    }

    #[test]
    fn remote_views_are_stale_until_broadcast() {
        let mut s = l2s(4);
        s.assign(SimTime::ZERO, 0, 1.into());
        s.assign(SimTime::ZERO, 0, 1.into());
        // Node 3 has not heard anything yet (only 2 connections < delta).
        assert_eq!(s.viewed_load(3, 0), 0);
        assert_eq!(s.viewed_load(0, 0), 2, "own load always exact");
        // Two more trip the threshold.
        s.assign(SimTime::ZERO, 0, 1.into());
        s.assign(SimTime::ZERO, 0, 1.into());
        assert_eq!(s.viewed_load(3, 0), 4, "broadcast synchronized views");
    }

    #[test]
    fn completion_broadcasts_count_messages() {
        let cfg = L2sConfig::default();
        let mut s = l2s(4);
        for _ in 0..cfg.broadcast_delta {
            s.assign(SimTime::ZERO, 0, 1.into());
        }
        // Load is at 4 (broadcast happened). Four completions bring it to
        // 0, drifting 4 from the broadcast value: one more broadcast.
        let mut msgs = 0;
        for _ in 0..cfg.broadcast_delta {
            msgs += s.complete(SimTime::ZERO, 0, 1.into());
        }
        assert_eq!(msgs, 3);
    }

    #[test]
    fn all_nodes_serve() {
        let s = l2s(5);
        assert_eq!(s.serving_nodes(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_node_never_forwards() {
        let mut s = l2s(1);
        for f in 0..10u32 {
            let a = s.assign(SimTime::ZERO, 0, f.into());
            assert_eq!(a.service, 0);
            assert!(!a.forwarded);
            assert_eq!(a.control_msgs, 0, "no peers to notify");
        }
    }

    #[test]
    fn continuation_served_locally_by_set_member() {
        let mut s = l2s(4);
        // File 7 is owned by node 0, which also holds the connection.
        s.assign(SimTime::ZERO, 0, 7.into());
        let a = s.assign_continuation(SimTime::ZERO, 0, 7.into());
        assert_eq!(a.service, 0);
        assert!(!a.forwarded, "member holder serves without hand-off");
        assert_eq!(s.open_connections(0), 2);
    }

    #[test]
    fn continuation_at_non_member_runs_the_normal_algorithm() {
        let mut s = l2s(4);
        s.assign(SimTime::ZERO, 0, 7.into()); // node 0 owns file 7
                                              // Node 2 holds the connection but is not in 7's set: the request
                                              // is forwarded to the owner and the set stays clean.
        let a = s.assign_continuation(SimTime::ZERO, 2, 7.into());
        assert_eq!(a.service, 0);
        assert!(a.forwarded);
        assert_eq!(s.server_set(7), &[0], "no affinity-driven replication");
    }

    #[test]
    fn continuation_for_unseen_file_behaves_like_first_request() {
        let mut s = l2s(3);
        let a = s.assign_continuation(SimTime::ZERO, 1, 99.into());
        assert_eq!(a.service, 1, "first touch stays local");
        assert_eq!(s.server_set(99), &[1]);
        assert_eq!(a.control_msgs, 2, "set creation broadcast to peers");
    }

    #[test]
    fn crash_prunes_sets_and_dns_rotation() {
        let mut s = l2s(3);
        s.assign(SimTime::ZERO, 1, 7.into());
        assert_eq!(s.server_set(7), &[1]);
        s.node_down(SimTime::ZERO, 1);
        assert_eq!(s.serving_nodes(), vec![0, 2]);
        // DNS skips the dead address.
        assert_eq!(s.arrival_node().unwrap(), 0);
        assert_eq!(s.arrival_node().unwrap(), 2);
        assert_eq!(s.arrival_node().unwrap(), 0);
        // The file's set was pruned empty, so the next request recreates
        // it on a live node.
        let a = s.assign(SimTime::ZERO, 0, 7.into());
        assert_eq!(a.service, 0);
        assert_eq!(s.server_set(7), &[0]);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive_broadcasts() {
        let cfg = L2sConfig::default();
        let mut s = l2s(3);
        s.node_down(SimTime::ZERO, 2);
        let a = s.assign(SimTime::ZERO, 0, 1.into());
        assert_eq!(a.control_msgs, 1, "set creation reaches only the live peer");
        let mut msgs = 0;
        for _ in 0..cfg.broadcast_delta {
            msgs += s.assign(SimTime::ZERO, 0, 1.into()).control_msgs;
        }
        assert_eq!(msgs, 1, "one load broadcast, to the one live peer");
        assert_eq!(s.viewed_load(1, 0), 4);
        assert_eq!(s.viewed_load(2, 0), 0, "dead observer heard nothing");
        let mut out = Vec::new();
        s.drain_messages(&mut out);
        assert!(
            out.iter().all(|&(_, to)| to != 2),
            "no message targets node 2"
        );
    }

    #[test]
    fn recovery_rejoins_with_synchronized_views() {
        let mut s = l2s(2);
        s.node_down(SimTime::ZERO, 1);
        for _ in 0..6 {
            s.assign(SimTime::ZERO, 0, 1.into());
        }
        assert_eq!(s.viewed_load(1, 0), 0, "no broadcasts while away");
        s.node_up(SimTime::ZERO, 1);
        assert_eq!(s.serving_nodes(), vec![0, 1]);
        assert_eq!(s.viewed_load(1, 0), 6, "rejoin snapshot syncs the view");
        assert_eq!(s.viewed_load(0, 1), 0, "peers snapshot the rejoiner");
    }

    #[test]
    fn completions_on_a_dead_node_settle_silently() {
        let mut s = l2s(2);
        for _ in 0..5 {
            s.assign(SimTime::ZERO, 0, 1.into());
        }
        s.node_down(SimTime::ZERO, 0);
        // The engine settles each in-flight request on the dead node; the
        // load drains without any broadcast traffic.
        let mut msgs = 0;
        for _ in 0..5 {
            msgs += s.complete(SimTime::ZERO, 0, 1.into());
        }
        assert_eq!(msgs, 0);
        assert_eq!(s.open_connections(0), 0);
    }

    #[test]
    fn replication_avoids_dead_nodes() {
        let cfg = L2sConfig::default();
        let mut s = l2s(3);
        s.node_down(SimTime::ZERO, 2);
        // Node 0 owns file 7 and is overloaded; node 1 is overloaded too,
        // so a request for 7 at node 1 replicates — but never onto the
        // dead node 2, even though it looks idle.
        s.assign(SimTime::ZERO, 0, 7.into());
        for _ in 0..cfg.t_high + 1 {
            s.assign(SimTime::ZERO, 0, 7.into());
        }
        for f in 0..cfg.t_high + 1 {
            s.assign(SimTime::ZERO, 1, (100 + f).into());
        }
        let a = s.assign(SimTime::ZERO, 1, 7.into());
        assert_ne!(a.service, 2);
        assert!(!s.server_set(7).contains(&2));
    }

    #[test]
    fn distinct_files_spread_across_nodes_via_dns() {
        let mut s = l2s(4);
        let mut used = [false; 4];
        for f in 0..8u32 {
            let initial = s.arrival_node().unwrap();
            let a = s.assign(SimTime::ZERO, initial, f.into());
            used[a.service] = true;
        }
        assert!(
            used.iter().all(|&u| u),
            "round-robin DNS spreads first requests"
        );
    }
}
