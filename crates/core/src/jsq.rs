//! JSQ(d) — the power-of-d-choices dispatcher.
//!
//! The switch samples `d` live nodes uniformly at random per arrival and
//! delivers the connection to the least loaded of the sample (lowest id
//! on ties, matching every other policy's tie-breaking). Mitzenmacher's
//! classic result — and Hellemans & Van Houdt's workload-dependent
//! analysis of the least-loaded-of-d variant — show `d = 2` already
//! removes almost all of random assignment's queueing imbalance at a
//! fraction of full JSQ's information cost.
//!
//! Sampling uses the [`LoadIndex`] order statistics: a uniform rank in
//! `[0, live)` maps to the rank-th live node in O(log n), so a 1024-node
//! cluster pays the same per-arrival cost as an 8-node one and dead
//! nodes are never drawn (no rejection loop). The RNG is the workspace's
//! own deterministic [`DetRng`], seeded from the run seed, so runs are
//! byte-identical at any worker count.

use crate::{Assignment, Distributor, LoadIndex, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{invariant, DetRng, SimTime};

/// Salt mixed into the run seed so the dispatcher's sample stream is
/// decorrelated from the engine's own arrival/persistence stream (which
/// is seeded with the raw run seed).
const SEED_SALT: u64 = 0x4a53_5144; // "JSQD"

/// The power-of-d-choices dispatcher. See the module docs.
#[derive(Clone, Debug)]
pub struct Jsq {
    /// Sample size per arrival.
    d: usize,
    loads: Vec<u32>,
    alive: Vec<bool>,
    /// Least-loaded index over the live nodes; doubles as the uniform
    /// sampler via its order statistics.
    index: LoadIndex,
    rng: DetRng,
    /// Scratch ranks for the d-way sample, reused across arrivals.
    picks: Vec<usize>,
}

impl Jsq {
    /// The classic two-choices sample size.
    pub const DEFAULT_D: usize = 2;

    /// Seed used by [`PolicyKind::build`]; simulation runs pass their
    /// own run seed instead.
    pub const DEFAULT_SEED: u64 = 0x10ad_ba1e;

    /// A JSQ(d) dispatcher over `n` nodes sampling `d` choices per
    /// arrival from the deterministic stream seeded by `seed`.
    pub fn new(n: usize, d: usize, seed: u64) -> Self {
        invariant!(n >= 1, "need at least one node");
        invariant!(d >= 1, "JSQ(d) needs at least one choice");
        let mut index = LoadIndex::new(n);
        for node in 0..n {
            index.insert(node, 0);
        }
        Jsq {
            d,
            loads: vec![0; n],
            alive: vec![true; n],
            index,
            rng: DetRng::new(seed ^ SEED_SALT),
            picks: Vec::with_capacity(d),
        }
    }
}

impl Distributor for Jsq {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Jsq
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        let live = self.index.len();
        if live == 0 {
            // Every node is down: the switch has nothing to sample from
            // and rejects the connection (no RNG draw, so the sampling
            // sequence resumes unchanged after a recovery).
            return None;
        }
        let node = if live <= self.d {
            // The sample would cover every live node: exact JSQ, which
            // the index answers directly (lowest id on ties).
            self.index.argmin()?
        } else {
            self.picks.clear();
            while self.picks.len() < self.d {
                let rank = self.rng.index(live);
                // Sampling without replacement: d distinct nodes, as in
                // the classic formulation. d is small, so the linear
                // dedup scan is cheaper than any set structure.
                if !self.picks.contains(&rank) {
                    self.picks.push(rank);
                }
            }
            let mut best = self.index.nth_present(self.picks[0]);
            let mut best_load = self.loads[best];
            for &rank in &self.picks[1..] {
                let candidate = self.index.nth_present(rank);
                let load = self.loads[candidate];
                if load < best_load || (load == best_load && candidate < best) {
                    best = candidate;
                    best_load = load;
                }
            }
            best
        };
        self.loads[node] += 1;
        self.index.set_if_present(node, self.loads[node]);
        Some(node)
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        // The connection stays where it is; the switch sees one more
        // request on it.
        self.loads[holder] += 1;
        self.index.set_if_present(holder, self.loads[holder]);
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        self.index.set_if_present(node, self.loads[node]);
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
        self.index.remove(node);
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
        // Strays from before the crash are still settling, so the node
        // rejoins at its live connection count, not at zero.
        self.index.insert(node, self.loads[node]);
    }

    fn abort_undecided(&mut self, _now: SimTime, initial: NodeId) {
        invariant!(
            self.loads[initial] > 0,
            "load conservation violated: abort on node {initial} without an open connection"
        );
        self.loads[initial] -= 1;
        self.index.set_if_present(initial, self.loads[initial]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsq(n: usize) -> Jsq {
        Jsq::new(n, Jsq::DEFAULT_D, Jsq::DEFAULT_SEED)
    }

    #[test]
    fn sampled_choice_never_beats_exact_jsq_by_much() {
        // With d = 2 on 8 nodes the sampled pick is always one of the
        // two drawn nodes, and always the less loaded of the pair.
        let mut p = jsq(8);
        for _ in 0..200 {
            let before = p.loads.clone();
            let node = p.arrival_node().unwrap();
            // The winner's pre-arrival load cannot exceed every other
            // node's load by more than the sampling allows; at minimum
            // it must not be the unique maximum.
            let max = *before.iter().max().unwrap();
            let min = *before.iter().min().unwrap();
            if max != min {
                assert!(
                    before[node] < max || before.iter().filter(|&&l| l == max).count() > 1,
                    "picked the uniquely most-loaded node"
                );
            }
            p.assign(SimTime::ZERO, node, 0.into());
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Jsq::new(6, 2, 42);
        let mut b = Jsq::new(6, 2, 42);
        for _ in 0..64 {
            assert_eq!(a.arrival_node().unwrap(), b.arrival_node().unwrap());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jsq::new(16, 2, 1);
        let mut b = Jsq::new(16, 2, 2);
        let sa: Vec<_> = (0..32).map(|_| a.arrival_node().unwrap()).collect();
        let sb: Vec<_> = (0..32).map(|_| b.arrival_node().unwrap()).collect();
        assert_ne!(sa, sb, "seed must steer the sample stream");
    }

    #[test]
    fn small_cluster_degenerates_to_exact_jsq() {
        // live <= d: the sample covers everything, so the pick is the
        // global least-loaded node with lowest-id tie-breaking.
        let mut p = jsq(2);
        assert_eq!(p.arrival_node().unwrap(), 0);
        assert_eq!(p.arrival_node().unwrap(), 1);
        assert_eq!(p.arrival_node().unwrap(), 0);
    }

    #[test]
    fn dead_nodes_are_never_sampled_and_rejoin() {
        let mut p = jsq(4);
        p.node_down(SimTime::ZERO, 1);
        for _ in 0..50 {
            assert_ne!(p.arrival_node().unwrap(), 1, "dead node got a connection");
        }
        p.node_up(SimTime::ZERO, 1);
        let mut saw_one = false;
        for _ in 0..50 {
            if p.arrival_node().unwrap() == 1 {
                saw_one = true;
            }
        }
        assert!(saw_one, "recovered node never rejoined the sample");
    }

    #[test]
    fn abort_undecided_releases_the_connection() {
        let mut p = jsq(2);
        let n = p.arrival_node().unwrap();
        assert_eq!(p.open_connections(n), 1);
        p.abort_undecided(SimTime::ZERO, n);
        assert_eq!(p.open_connections(n), 0);
    }

    #[test]
    fn never_forwards() {
        let mut p = jsq(4);
        for f in 0..20u32 {
            let n = p.arrival_node().unwrap();
            let a = p.assign(SimTime::ZERO, n, f.into());
            assert!(!a.forwarded);
            assert_eq!(a.control_msgs, 0);
        }
    }
}
