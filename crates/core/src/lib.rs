//! Request-distribution policies for cluster-based network servers — the
//! primary contribution of *Evaluating Cluster-Based Network Servers*
//! (Carrera & Bianchini, HPDC 2000).
//!
//! Three server organizations from the paper, plus two reference
//! baselines:
//!
//! * [`Traditional`] — locality-oblivious fewest-connections load
//!   balancing; every node serves its own requests from an independent
//!   cache.
//! * [`Lard`] — Locality-Aware Request Distribution (Pai et al., ASPLOS
//!   1998): a dedicated front-end assigns every request to a back-end
//!   according to per-file server sets with replication (LARD/R),
//!   thresholds `T_low`/`T_high`.
//! * [`L2s`] — the paper's Locality and Load balancing Server: *every*
//!   node accepts, distributes, and serves requests. Per-file server
//!   sets grow under overload (threshold `T`) and shrink under underload
//!   (threshold `t`); load is disseminated by threshold-triggered
//!   broadcasts, so each node decides on its own, possibly stale, view.
//! * [`RoundRobin`] and [`PureLocality`] — the isolated load-balancing /
//!   locality extremes the paper positions LARD and L2S against.
//!
//! Policies are pure decision logic: they see request arrivals and
//! completions, maintain their own (possibly stale) load views, and
//! report how many control messages they emit, but know nothing about
//! event scheduling. The simulator charges the corresponding CPU/NI/
//! switch costs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod baseline;
mod driver;
mod jiq;
mod jsq;
mod l2s_policy;
mod lard;
mod load_index;
mod sita;

pub use driver::{Placement, PolicyDriver};
pub use load_index::LoadIndex;

pub use baseline::{PureLocality, RoundRobin, Traditional};
pub use jiq::Jiq;
pub use jsq::Jsq;
pub use l2s_policy::{L2s, L2sConfig};
pub use lard::{Lard, LardConfig};
pub use sita::Sita;

use l2s_cluster::FileId;
use l2s_util::SimTime;

/// Index of a cluster node.
pub type NodeId = usize;

/// Which distribution policy a server runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Fewest-connections, locality-oblivious (the paper's "traditional").
    Traditional,
    /// Round-robin assignment (pure load spreading, no state).
    RoundRobin,
    /// Static hash partitioning (pure locality, no load balancing).
    PureLocality,
    /// LARD/R with a dedicated front-end.
    Lard,
    /// Basic LARD (no replication): overload moves a file's single
    /// server rather than replicating it.
    LardBasic,
    /// LARD/R behind a dedicated *dispatcher* (Aron et al., USENIX
    /// 2000; the paper's Section 6): connections are accepted by all
    /// serving nodes, which query the dispatcher and hand off
    /// themselves.
    LardDispatcher,
    /// The paper's fully distributed L2S.
    L2s,
    /// JSQ(d) / power-of-d-choices: the switch samples `d` live nodes
    /// per arrival and delivers to the least loaded of the sample.
    Jsq,
    /// Join-idle-queue: arrivals go to a node that reported itself
    /// idle, or round-robin when none has.
    Jiq,
    /// Size-interval task assignment: each node owns a contiguous band
    /// of the file-size distribution.
    Sita,
}

impl PolicyKind {
    /// All policy kinds: the paper's comparison order, then the modern
    /// dispatcher zoo.
    pub fn all() -> [PolicyKind; 10] {
        [
            PolicyKind::Traditional,
            PolicyKind::RoundRobin,
            PolicyKind::PureLocality,
            PolicyKind::Lard,
            PolicyKind::LardBasic,
            PolicyKind::LardDispatcher,
            PolicyKind::L2s,
            PolicyKind::Jsq,
            PolicyKind::Jiq,
            PolicyKind::Sita,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Traditional => "traditional",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::PureLocality => "pure-locality",
            PolicyKind::Lard => "lard",
            PolicyKind::LardBasic => "lard-basic",
            PolicyKind::LardDispatcher => "lard-dispatcher",
            PolicyKind::L2s => "l2s",
            PolicyKind::Jsq => "jsq",
            PolicyKind::Jiq => "jiq",
            PolicyKind::Sita => "sita",
        }
    }

    /// Builds the policy with its paper-default parameters for an
    /// `n`-node cluster.
    pub fn build(&self, n: usize) -> Box<dyn Distributor> {
        match self {
            PolicyKind::Traditional => Box::new(Traditional::new(n)),
            PolicyKind::RoundRobin => Box::new(RoundRobin::new(n)),
            PolicyKind::PureLocality => Box::new(PureLocality::new(n)),
            PolicyKind::Lard => Box::new(Lard::new(n, LardConfig::default())),
            PolicyKind::LardBasic => Box::new(Lard::basic(n, LardConfig::default())),
            PolicyKind::LardDispatcher => Box::new(Lard::dispatcher(n, LardConfig::default())),
            PolicyKind::L2s => Box::new(L2s::new(n, L2sConfig::default())),
            PolicyKind::Jsq => Box::new(Jsq::new(n, Jsq::DEFAULT_D, Jsq::DEFAULT_SEED)),
            PolicyKind::Jiq => Box::new(Jiq::new(n)),
            PolicyKind::Sita => Box::new(Sita::new(n)),
        }
    }
}

/// The outcome of distributing one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// The node that will service the request.
    pub service: NodeId,
    /// Whether the request is handed off from the node that accepted the
    /// client connection to a different service node.
    pub forwarded: bool,
    /// Small point-to-point control messages emitted as a side effect
    /// (load or server-set dissemination; excludes the hand-off itself).
    pub control_msgs: u32,
}

/// A request-distribution policy.
///
/// Protocol per request:
/// 1. [`Distributor::arrival_node`] — where the client connection lands
///    (round-robin DNS for L2S, the front-end for LARD, the
///    load-balancing switch's pick for the traditional server);
/// 2. [`Distributor::assign`] — the distribution decision made at that
///    node; the policy increments its load accounting for the service
///    node;
/// 3. [`Distributor::complete`] — the service node finished the request;
///    returns control messages emitted (e.g. batched load reports).
pub trait Distributor {
    /// The policy's kind.
    fn kind(&self) -> PolicyKind;

    /// Where the next client connection lands, or `None` when no node
    /// can accept it (every candidate is down). A `None` is an explicit
    /// rejection: the caller counts the request as failed instead of
    /// routing it to a fabricated default. (An earlier version papered
    /// over the all-down case with `unwrap_or(0)`, silently resurrecting
    /// node 0.) [`Lard`] is the deliberate exception — its front-end /
    /// rotation target is returned even when dead, modeling the hardwired
    /// next hop whose liveness check the engine then fails.
    fn arrival_node(&mut self) -> Option<NodeId>;

    /// Hints the number of distinct files in the workload (dense
    /// interned ids `0..n`), letting policies size their per-file tables
    /// up front instead of growing them on demand. Optional; a no-op by
    /// default.
    fn hint_files(&mut self, n: usize) {
        let _ = n;
    }

    /// Hints per-file sizes in KB, indexed by interned file id —
    /// modeling the administrator-supplied size census size-aware
    /// splitters are configured from. Called once per run, before any
    /// request. Only size-aware policies ([`Sita`]) override the
    /// default no-op.
    fn hint_file_sizes(&mut self, sizes: &[f64]) {
        let _ = sizes;
    }

    /// A continuation request arrived at `holder` over an existing
    /// persistent connection. Policies that count connections at the
    /// switch (fewest-connections) account it here; most need nothing.
    fn arrival_continuation(&mut self, holder: NodeId) {
        let _ = holder;
    }

    /// Distribution decision for a request for `file` accepted at
    /// `initial`.
    fn assign(&mut self, now: SimTime, initial: NodeId, file: FileId) -> Assignment;

    /// Distribution decision for a *continuation* request on a
    /// persistent connection held by `holder` (the paper's Section 4
    /// points at the P-HTTP adaptations of its algorithms). The default
    /// treats it like a fresh request at `holder`; L2S and LARD override
    /// it with connection-affine rules.
    fn assign_continuation(&mut self, now: SimTime, holder: NodeId, file: FileId) -> Assignment {
        self.assign(now, holder, file)
    }

    /// The request for `file` being serviced at `node` completed.
    /// Returns control messages emitted.
    fn complete(&mut self, now: SimTime, node: NodeId, file: FileId) -> u32;

    /// Ground-truth open connections at `node` (for metrics and tests;
    /// policies may internally act on stale views instead).
    fn open_connections(&self, node: NodeId) -> u32;

    /// Nodes that can service requests (excludes LARD's dedicated
    /// front-end).
    fn serving_nodes(&self) -> Vec<NodeId>;

    /// Drains the control messages emitted since the last drain into
    /// `out` as `(from, to)` node pairs, so the simulator can charge the
    /// CPU/NI costs at both endpoints. Counts always match the
    /// `control_msgs` totals reported by [`Distributor::assign`] and
    /// [`Distributor::complete`]. Policies that never send messages use
    /// the default no-op.
    fn drain_messages(&mut self, out: &mut Vec<(NodeId, NodeId)>) {
        let _ = out;
    }

    /// `node` crashed at `now`. The policy must stop routing new work to
    /// it: exclude it from candidate sets, prune it from per-file server
    /// sets, and reassign any orphaned targets. It must **not** zero the
    /// node's load accounting — every in-flight request is individually
    /// settled by the engine through [`Distributor::complete`] or the
    /// abort hooks, keeping connection conservation exact. The default
    /// no-op is only correct for policies without membership state.
    fn node_down(&mut self, now: SimTime, node: NodeId) {
        let _ = (now, node);
    }

    /// `node` recovered at `now` and rejoins the candidate sets (with a
    /// cold cache and no open connections beyond the strays still being
    /// settled). The default no-op mirrors [`Distributor::node_down`].
    fn node_up(&mut self, now: SimTime, node: NodeId) {
        let _ = (now, node);
    }

    /// A request accepted at `initial` was lost *before* its distribution
    /// decision ran (the accepting node crashed). Policies that count the
    /// connection at [`Distributor::arrival_node`] /
    /// [`Distributor::arrival_continuation`] must release it here; the
    /// default no-op is for policies that only count at
    /// [`Distributor::assign`].
    fn abort_undecided(&mut self, now: SimTime, initial: NodeId) {
        let _ = (now, initial);
    }

    /// A request already assigned to `service` was abandoned mid-flight
    /// (the service node, or a node on the request's path, crashed).
    /// Releases exactly the accounting [`Distributor::assign`] took;
    /// returns control messages emitted. The default treats it as a
    /// completion, which is correct wherever completion is a pure
    /// decrement — policies with dead-node message suppression override.
    fn abort_assigned(&mut self, now: SimTime, service: NodeId, file: FileId) -> u32 {
        self.complete(now, service, file)
    }
}

/// Shared helper: index of the minimum value, lowest index winning ties.
/// Returns 0 for an empty iterator (policies always have at least one
/// node, enforced by their constructors).
///
/// Production call sites moved to [`LoadIndex`]; this stays as the
/// reference model the index's equivalence tests compare against.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn argmin<T: PartialOrd + Copy>(values: impl Iterator<Item = (usize, T)>) -> usize {
    let mut best: Option<(usize, T)> = None;
    for (i, v) in values {
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) if v < bv => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i).unwrap_or(0)
}

/// Least-loaded choice with *rotating* tie-breaking.
///
/// Load views are quantized (they only move on threshold-triggered
/// broadcasts), so plain lowest-id tie-breaking makes every
/// decision-maker herd onto the same node between broadcasts — a queue
/// spike no real server exhibits. Scanning from a caller-advanced cursor
/// spreads tied choices evenly while staying deterministic.
pub(crate) fn argmin_rotating<T: PartialOrd + Copy>(
    candidates: &[usize],
    load_of: impl Fn(usize) -> T,
    cursor: &mut usize,
) -> usize {
    l2s_util::invariant!(!candidates.is_empty(), "argmin of empty candidate set");
    let n = candidates.len();
    let start = *cursor % n;
    *cursor = cursor.wrapping_add(1);
    let mut best = candidates[start];
    let mut best_load = load_of(best);
    // Wrap by branch instead of `(start + k) % n`: integer division per
    // candidate is measurable in the simulator's Decide handler.
    let mut idx = start;
    for _ in 1..n {
        idx += 1;
        if idx == n {
            idx = 0;
        }
        let c = candidates[idx];
        let l = load_of(c);
        if l < best_load {
            best = c;
            best_load = l;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_names_and_builders() {
        for kind in PolicyKind::all() {
            let policy = kind.build(4);
            assert_eq!(policy.kind(), kind);
            assert!(!kind.name().is_empty());
            assert!(!policy.serving_nodes().is_empty());
        }
    }

    #[test]
    fn argmin_prefers_lowest_index_on_ties() {
        let v = [3.0, 1.0, 1.0, 2.0];
        assert_eq!(argmin(v.iter().copied().enumerate()), 1);
    }

    #[test]
    fn every_policy_conserves_connections() {
        for kind in PolicyKind::all() {
            let n = 4;
            let mut policy = kind.build(n);
            let now = SimTime::ZERO;
            let mut in_flight: Vec<(NodeId, FileId)> = Vec::new();
            for file in 0..50u32 {
                let initial = policy.arrival_node().expect("healthy cluster accepts");
                let a = policy.assign(now, initial, (file % 7).into());
                in_flight.push((a.service, (file % 7).into()));
            }
            let total: u32 = (0..n).map(|i| policy.open_connections(i)).sum();
            assert_eq!(total, 50, "{}: open != assigned", kind.name());
            for (node, file) in in_flight {
                policy.complete(now, node, file);
            }
            let total: u32 = (0..n).map(|i| policy.open_connections(i)).sum();
            assert_eq!(total, 0, "{}: connections leaked", kind.name());
        }
    }

    #[test]
    fn service_nodes_are_in_range() {
        for kind in PolicyKind::all() {
            let n = 3;
            let mut policy = kind.build(n);
            for file in 0..30u32 {
                let initial = policy.arrival_node().expect("healthy cluster accepts");
                assert!(initial < n);
                let a = policy.assign(SimTime::ZERO, initial, file.into());
                assert!(a.service < n, "{}: service out of range", kind.name());
                assert_eq!(
                    a.forwarded,
                    a.service != initial,
                    "{}: forwarded flag inconsistent",
                    kind.name()
                );
            }
        }
    }
}
