//! A runtime-agnostic façade over the policy zoo.
//!
//! [`Distributor`] speaks the simulator's dialect: `SimTime` stamps,
//! interned `FileId`s, a two-step arrival/assign protocol whose load
//! accounting differs per policy. [`PolicyDriver`] wraps any policy
//! behind a driver-neutral surface — feed it arrivals, completions, and
//! node up/down transitions with plain `u64` nanosecond timestamps and
//! `u32` file ids, get [`Placement`]s back — so the same decision logic
//! runs inside the DES, under a live CLF replay, or behind any future
//! serving front-end, with the caller supplying whatever wall or
//! virtual clock it likes.
//!
//! The driver owns the per-request protocol: one [`PolicyDriver::place`]
//! call makes both the arrival and the distribution decision, and a
//! rejected arrival (every node down) comes back as
//! [`Placement::Rejected`] instead of a fabricated node id.

use crate::{Distributor, NodeId, PolicyKind};
use l2s_util::SimTime;

/// The outcome of placing one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// The request was accepted and routed.
    Serve {
        /// Node that will service the request.
        node: NodeId,
        /// Whether it was handed off from the accepting node.
        forwarded: bool,
        /// Control messages the decision emitted.
        control_msgs: u32,
    },
    /// No node could accept the connection (every candidate is down);
    /// the caller counts the request as failed.
    Rejected,
}

impl Placement {
    /// The service node, if the request was accepted.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Placement::Serve { node, .. } => Some(*node),
            Placement::Rejected => None,
        }
    }
}

/// A [`Distributor`] behind a runtime-agnostic API. See the module docs.
pub struct PolicyDriver {
    policy: Box<dyn Distributor>,
    nodes: usize,
    msg_buf: Vec<(NodeId, NodeId)>,
}

impl PolicyDriver {
    /// A driver over `kind` built with its paper-default parameters for
    /// an `n`-node cluster.
    pub fn new(kind: PolicyKind, n: usize) -> Self {
        Self::from_policy(kind.build(n), n)
    }

    /// A driver over an already-built policy (custom parameters, custom
    /// seed). `n` is the cluster size the policy was built for.
    pub fn from_policy(policy: Box<dyn Distributor>, n: usize) -> Self {
        PolicyDriver {
            policy,
            nodes: n,
            msg_buf: Vec::new(),
        }
    }

    /// The wrapped policy's kind.
    pub fn kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Cluster size the driver was built for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Hints the number of distinct files (dense interned ids `0..n`).
    pub fn hint_files(&mut self, n: usize) {
        self.policy.hint_files(n);
    }

    /// Hints per-file sizes in KB, indexed by interned file id (feeds
    /// size-aware splitters like SITA).
    pub fn hint_file_sizes(&mut self, sizes_kb: &[f64]) {
        self.policy.hint_file_sizes(sizes_kb);
    }

    /// Places one request for `file` arriving at `now_ns`: runs the
    /// arrival step (where does the connection land) and the
    /// distribution decision (who serves it) back to back. Returns
    /// [`Placement::Rejected`] when no node can accept.
    pub fn place(&mut self, now_ns: u64, file: u32) -> Placement {
        let Some(initial) = self.policy.arrival_node() else {
            return Placement::Rejected;
        };
        let a = self
            .policy
            .assign(SimTime::from_nanos(now_ns), initial, file.into());
        Placement::Serve {
            node: a.service,
            forwarded: a.forwarded,
            control_msgs: a.control_msgs,
        }
    }

    /// The request for `file` being serviced at `node` completed at
    /// `now_ns`. Returns control messages emitted (batched load
    /// reports and the like).
    pub fn complete(&mut self, now_ns: u64, node: NodeId, file: u32) -> u32 {
        self.policy
            .complete(SimTime::from_nanos(now_ns), node, file.into())
    }

    /// `node` went down at `now_ns`; the policy stops routing to it.
    pub fn node_down(&mut self, now_ns: u64, node: NodeId) {
        self.policy.node_down(SimTime::from_nanos(now_ns), node);
    }

    /// `node` came back at `now_ns` and rejoins the candidate sets.
    pub fn node_up(&mut self, now_ns: u64, node: NodeId) {
        self.policy.node_up(SimTime::from_nanos(now_ns), node);
    }

    /// Ground-truth open connections at `node`.
    pub fn open_connections(&self, node: NodeId) -> u32 {
        self.policy.open_connections(node)
    }

    /// Nodes that can service requests (excludes LARD's front-end).
    pub fn serving_nodes(&self) -> Vec<NodeId> {
        self.policy.serving_nodes()
    }

    /// Drains the `(from, to)` control-message pairs emitted since the
    /// last drain. The count always matches the `control_msgs` totals
    /// returned by [`PolicyDriver::place`] / [`PolicyDriver::complete`].
    pub fn drain_messages(&mut self) -> &[(NodeId, NodeId)] {
        self.msg_buf.clear();
        self.policy.drain_messages(&mut self.msg_buf);
        &self.msg_buf
    }
}

impl std::fmt::Debug for PolicyDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyDriver")
            .field("kind", &self.policy.kind())
            .field("nodes", &self.nodes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drives_every_policy_without_engine_types() {
        for kind in PolicyKind::all() {
            let mut d = PolicyDriver::new(kind, 4);
            assert_eq!(d.kind(), kind);
            d.hint_files(8);
            d.hint_file_sizes(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            let mut open = Vec::new();
            for i in 0..32u32 {
                match d.place(u64::from(i) * 1_000_000, i % 8) {
                    Placement::Serve { node, .. } => open.push((node, i % 8)),
                    Placement::Rejected => panic!("{}: healthy cluster rejected", kind.name()),
                }
            }
            let total: u32 = (0..4).map(|n| d.open_connections(n)).sum();
            assert_eq!(total, 32, "{}: open != placed", kind.name());
            for (node, file) in open {
                d.complete(40_000_000, node, file);
            }
            let total: u32 = (0..4).map(|n| d.open_connections(n)).sum();
            assert_eq!(total, 0, "{}: connections leaked", kind.name());
            d.drain_messages();
        }
    }

    #[test]
    fn all_down_rejects_instead_of_routing_to_node_zero() {
        // LARD keeps its hardwired next hop (the engine fails it at the
        // liveness gate), so it is exempt from the rejection contract.
        for kind in PolicyKind::all() {
            if matches!(
                kind,
                PolicyKind::Lard | PolicyKind::LardBasic | PolicyKind::LardDispatcher
            ) {
                continue;
            }
            let mut d = PolicyDriver::new(kind, 3);
            for node in 0..3 {
                d.node_down(1_000, node);
            }
            for i in 0..8u32 {
                assert_eq!(
                    d.place(2_000, i),
                    Placement::Rejected,
                    "{}: all-down cluster must reject",
                    kind.name()
                );
            }
            // Recovery restores service.
            d.node_up(3_000, 1);
            assert_eq!(d.place(4_000, 0).node(), Some(1), "{}", kind.name());
        }
    }

    #[test]
    fn placement_node_accessor() {
        assert_eq!(Placement::Rejected.node(), None);
        let p = Placement::Serve {
            node: 2,
            forwarded: false,
            control_msgs: 0,
        };
        assert_eq!(p.node(), Some(2));
    }
}
