//! The traditional server and the two single-minded baselines.

use crate::{Assignment, Distributor, LoadIndex, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{cast, invariant, SimTime};

/// The paper's **traditional** cluster server: a load-balancing switch
/// assigns each new request to the node with the fewest open connections
/// ("fewest-connections scheme, all cluster nodes are equally powerful"),
/// and each node serves its requests independently. Distribution is
/// oblivious to cache contents, so every node's memory converges to an
/// independent copy of the hottest files.
///
/// Under faults the switch plays the role of a health-checking load
/// balancer: crashed nodes are excluded from the fewest-connections
/// choice and rejoin it on recovery.
#[derive(Clone, Debug)]
pub struct Traditional {
    loads: Vec<u32>,
    alive: Vec<bool>,
    /// Least-loaded index over the live nodes, mirroring `loads` — keeps
    /// the per-arrival fewest-connections pick O(log n) instead of a
    /// full scan.
    index: LoadIndex,
}

impl Traditional {
    /// A traditional server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        let mut index = LoadIndex::new(n);
        for node in 0..n {
            index.insert(node, 0);
        }
        Traditional {
            loads: vec![0; n],
            alive: vec![true; n],
            index,
        }
    }
}

impl Distributor for Traditional {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Traditional
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // The switch delivers the connection straight to the node that
        // will serve it, and tracks the connection from acceptance time
        // (otherwise a burst of simultaneous arrivals would all pile
        // onto the momentarily-least-loaded node). Dead nodes are absent
        // from the index, and the index breaks load ties toward the
        // lowest id, so the pick is identical to the old filtered scan.
        // An empty index (every node down) rejects the connection.
        let node = self.index.argmin()?;
        self.loads[node] += 1;
        self.index.set_if_present(node, self.loads[node]);
        Some(node)
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        // The connection stays where it is; the switch sees one more
        // request on it.
        self.loads[holder] += 1;
        self.index.set_if_present(holder, self.loads[holder]);
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        self.index.set_if_present(node, self.loads[node]);
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
        self.index.remove(node);
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
        // Strays from before the crash are still settling, so the node
        // rejoins at its live connection count, not at zero.
        self.index.insert(node, self.loads[node]);
    }

    fn abort_undecided(&mut self, _now: SimTime, initial: NodeId) {
        invariant!(
            self.loads[initial] > 0,
            "load conservation violated: abort on node {initial} without an open connection"
        );
        self.loads[initial] -= 1;
        self.index.set_if_present(initial, self.loads[initial]);
    }
}

/// Pure load spreading: requests cycle through the nodes regardless of
/// load or locality (round-robin DNS with no server-side smarts). Dead
/// nodes are skipped in the rotation.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    loads: Vec<u32>,
    alive: Vec<bool>,
    next: usize,
}

impl RoundRobin {
    /// A round-robin server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        RoundRobin {
            loads: vec![0; n],
            alive: vec![true; n],
            next: 0,
        }
    }
}

impl Distributor for RoundRobin {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RoundRobin
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // One lap over the rotation starting at the cursor; if no live
        // node turns up the connection is rejected (cursor untouched, so
        // the rotation resumes where it left off after a recovery).
        let n = self.loads.len();
        let mut node = self.next;
        for _ in 0..n {
            if self.alive[node] {
                break;
            }
            node = (node + 1) % n;
        }
        if !self.alive[node] {
            return None;
        }
        self.next = (node + 1) % n;
        self.loads[node] += 1;
        Some(node)
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        self.loads[holder] += 1;
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
    }

    fn abort_undecided(&mut self, _now: SimTime, initial: NodeId) {
        invariant!(
            self.loads[initial] > 0,
            "load conservation violated: abort on node {initial} without an open connection"
        );
        self.loads[initial] -= 1;
    }
}

/// Pure locality: each file is statically owned by `hash(file) mod N`.
/// Maximizes aggregate cache effectiveness but ignores load entirely —
/// the strict no-replication organization whose load imbalance the
/// paper's Section 1 warns about.
///
/// Under faults the hash ring re-partitions over the live nodes
/// (consistent-hashing-style: `hash mod |alive|` over the sorted live
/// list), so a dead node's files get a temporary owner and move back
/// when it recovers. With every node alive the mapping is identical to
/// the original `hash mod N`.
#[derive(Clone, Debug)]
pub struct PureLocality {
    loads: Vec<u32>,
    /// Live node ids in ascending order — the hash ring.
    ring: Vec<NodeId>,
    alive: Vec<bool>,
    next_arrival: usize,
}

impl PureLocality {
    /// A hash-partitioned server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        PureLocality {
            loads: vec![0; n],
            ring: (0..n).collect(),
            alive: vec![true; n],
            next_arrival: 0,
        }
    }

    /// The current owner of `file` (the static owner while every node is
    /// alive).
    pub fn owner(&self, file: impl Into<FileId>) -> NodeId {
        // Fibonacci hashing spreads sequential ids well.
        let h = u64::from(file.into().raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.ring[cast::index_usize(h % cast::len_u64(self.ring.len()))]
    }
}

impl Distributor for PureLocality {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PureLocality
    }

    fn arrival_node(&mut self) -> Option<NodeId> {
        // Round-robin DNS; the owner is only known after parsing. Dead
        // nodes drop out of DNS rotation; an empty rotation (every node
        // down) rejects the connection without advancing the cursor.
        let n = self.loads.len();
        let mut node = self.next_arrival;
        for _ in 0..n {
            if self.alive[node] {
                break;
            }
            node = (node + 1) % n;
        }
        if !self.alive[node] {
            return None;
        }
        self.next_arrival = (node + 1) % n;
        Some(node)
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, file: FileId) -> Assignment {
        let service = self.owner(file);
        self.loads[service] += 1;
        Assignment {
            service,
            forwarded: service != initial,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }

    fn node_down(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = false;
        // The ring may empty out entirely (all-down cluster); arrivals
        // are rejected before `owner` can index it, so no guard here.
        self.ring.retain(|&id| id != node);
    }

    fn node_up(&mut self, _now: SimTime, node: NodeId) {
        self.alive[node] = true;
        if !self.ring.contains(&node) {
            self.ring.push(node);
            self.ring.sort_unstable();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_picks_fewest_connections() {
        let mut t = Traditional::new(3);
        // Load node 0 and 1.
        for _ in 0..2 {
            let n = t.arrival_node().unwrap();
            t.assign(SimTime::ZERO, n, 0.into());
        }
        assert_eq!(t.open_connections(0), 1);
        assert_eq!(t.open_connections(1), 1);
        // Third arrival must land on node 2.
        assert_eq!(t.arrival_node().unwrap(), 2);
    }

    #[test]
    fn traditional_rebalances_after_completion() {
        let mut t = Traditional::new(2);
        let a = t.arrival_node().unwrap();
        t.assign(SimTime::ZERO, a, 0.into());
        let b = t.arrival_node().unwrap();
        t.assign(SimTime::ZERO, b, 1.into());
        assert_ne!(a, b);
        t.complete(SimTime::ZERO, a, 0.into());
        assert_eq!(
            t.arrival_node().unwrap(),
            a,
            "freed node is least loaded again"
        );
    }

    #[test]
    fn traditional_never_forwards() {
        let mut t = Traditional::new(4);
        for f in 0..20u32 {
            let n = t.arrival_node().unwrap();
            let a = t.assign(SimTime::ZERO, n, f.into());
            assert!(!a.forwarded);
            assert_eq!(a.control_msgs, 0);
        }
    }

    #[test]
    fn traditional_excludes_dead_nodes_and_readmits() {
        let mut t = Traditional::new(3);
        t.node_down(SimTime::ZERO, 0);
        for _ in 0..6 {
            assert_ne!(t.arrival_node().unwrap(), 0, "dead node got a connection");
        }
        t.node_up(SimTime::ZERO, 0);
        // Node 0 has 0 connections vs 3 each elsewhere — it wins now.
        assert_eq!(t.arrival_node().unwrap(), 0);
    }

    #[test]
    fn traditional_abort_undecided_releases_the_connection() {
        let mut t = Traditional::new(2);
        let n = t.arrival_node().unwrap();
        assert_eq!(t.open_connections(n), 1);
        t.abort_undecided(SimTime::ZERO, n);
        assert_eq!(t.open_connections(n), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new(3);
        let seq: Vec<_> = (0..6).map(|_| rr.arrival_node().unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_dead_nodes() {
        let mut rr = RoundRobin::new(3);
        rr.node_down(SimTime::ZERO, 1);
        let seq: Vec<_> = (0..4).map(|_| rr.arrival_node().unwrap()).collect();
        assert_eq!(seq, vec![0, 2, 0, 2]);
        rr.node_up(SimTime::ZERO, 1);
        let seq: Vec<_> = (0..3).map(|_| rr.arrival_node().unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2], "recovered node rejoins rotation");
    }

    #[test]
    fn pure_locality_is_sticky_per_file() {
        let mut p = PureLocality::new(4);
        let first = p.assign(SimTime::ZERO, 0, 42.into()).service;
        for _ in 0..10 {
            let initial = p.arrival_node().unwrap();
            let a = p.assign(SimTime::ZERO, initial, 42.into());
            assert_eq!(a.service, first, "same file, same owner");
        }
    }

    #[test]
    fn pure_locality_spreads_files() {
        let p = PureLocality::new(4);
        let mut seen = [false; 4];
        for f in 0..64u32 {
            seen[p.owner(f)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node owns no files");
    }

    #[test]
    fn pure_locality_forwarding_flag_tracks_owner() {
        let mut p = PureLocality::new(2);
        let owner = p.owner(7);
        let a = p.assign(SimTime::ZERO, owner, 7.into());
        assert!(!a.forwarded);
        let other = 1 - owner;
        let b = p.assign(SimTime::ZERO, other, 7.into());
        assert!(b.forwarded);
    }

    #[test]
    fn pure_locality_remaps_owners_around_a_crash_and_back() {
        let mut p = PureLocality::new(4);
        let statics: Vec<NodeId> = (0..32u32).map(|f| p.owner(f)).collect();
        let victim = statics[0];
        p.node_down(SimTime::ZERO, victim);
        for f in 0..32u32 {
            let owner = p.owner(f);
            assert_ne!(owner, victim, "dead node still owns file {f}");
            assert!(owner < 4);
        }
        p.node_up(SimTime::ZERO, victim);
        let after: Vec<NodeId> = (0..32u32).map(|f| p.owner(f)).collect();
        assert_eq!(after, statics, "recovery restores the static mapping");
    }

    #[test]
    fn single_node_baselines_degenerate_cleanly() {
        for kind in [
            PolicyKind::Traditional,
            PolicyKind::RoundRobin,
            PolicyKind::PureLocality,
        ] {
            let mut p = kind.build(1);
            for f in 0..5u32 {
                let n = p.arrival_node().unwrap();
                assert_eq!(n, 0);
                let a = p.assign(SimTime::ZERO, n, f.into());
                assert_eq!(a.service, 0);
                assert!(!a.forwarded);
            }
        }
    }
}
