//! The traditional server and the two single-minded baselines.

use crate::{argmin, Assignment, Distributor, NodeId, PolicyKind};
use l2s_cluster::FileId;
use l2s_util::{invariant, SimTime};

/// The paper's **traditional** cluster server: a load-balancing switch
/// assigns each new request to the node with the fewest open connections
/// ("fewest-connections scheme, all cluster nodes are equally powerful"),
/// and each node serves its requests independently. Distribution is
/// oblivious to cache contents, so every node's memory converges to an
/// independent copy of the hottest files.
#[derive(Clone, Debug)]
pub struct Traditional {
    loads: Vec<u32>,
}

impl Traditional {
    /// A traditional server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        Traditional { loads: vec![0; n] }
    }
}

impl Distributor for Traditional {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Traditional
    }

    fn arrival_node(&mut self) -> NodeId {
        // The switch delivers the connection straight to the node that
        // will serve it, and tracks the connection from acceptance time
        // (otherwise a burst of simultaneous arrivals would all pile
        // onto the momentarily-least-loaded node).
        let node = argmin(self.loads.iter().copied().enumerate());
        self.loads[node] += 1;
        node
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        // The connection stays where it is; the switch sees one more
        // request on it.
        self.loads[holder] += 1;
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }
}

/// Pure load spreading: requests cycle through the nodes regardless of
/// load or locality (round-robin DNS with no server-side smarts).
#[derive(Clone, Debug)]
pub struct RoundRobin {
    loads: Vec<u32>,
    next: usize,
}

impl RoundRobin {
    /// A round-robin server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        RoundRobin {
            loads: vec![0; n],
            next: 0,
        }
    }
}

impl Distributor for RoundRobin {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RoundRobin
    }

    fn arrival_node(&mut self) -> NodeId {
        let node = self.next;
        self.next = (self.next + 1) % self.loads.len();
        self.loads[node] += 1;
        node
    }

    fn arrival_continuation(&mut self, holder: NodeId) {
        self.loads[holder] += 1;
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, _file: FileId) -> Assignment {
        // The connection was counted at arrival.
        Assignment {
            service: initial,
            forwarded: false,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }
}

/// Pure locality: each file is statically owned by `hash(file) mod N`.
/// Maximizes aggregate cache effectiveness but ignores load entirely —
/// the strict no-replication organization whose load imbalance the
/// paper's Section 1 warns about.
#[derive(Clone, Debug)]
pub struct PureLocality {
    loads: Vec<u32>,
    next_arrival: usize,
}

impl PureLocality {
    /// A hash-partitioned server over `n` nodes.
    pub fn new(n: usize) -> Self {
        l2s_util::invariant!(n >= 1, "need at least one node");
        PureLocality {
            loads: vec![0; n],
            next_arrival: 0,
        }
    }

    /// The static owner of `file`.
    pub fn owner(&self, file: impl Into<FileId>) -> NodeId {
        // Fibonacci hashing spreads sequential ids well.
        let h = (file.into().raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h % self.loads.len() as u64) as NodeId
    }
}

impl Distributor for PureLocality {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PureLocality
    }

    fn arrival_node(&mut self) -> NodeId {
        // Round-robin DNS; the owner is only known after parsing.
        let node = self.next_arrival;
        self.next_arrival = (self.next_arrival + 1) % self.loads.len();
        node
    }

    fn assign(&mut self, _now: SimTime, initial: NodeId, file: FileId) -> Assignment {
        let service = self.owner(file);
        self.loads[service] += 1;
        Assignment {
            service,
            forwarded: service != initial,
            control_msgs: 0,
        }
    }

    fn complete(&mut self, _now: SimTime, node: NodeId, _file: FileId) -> u32 {
        invariant!(
            self.loads[node] > 0,
            "load conservation violated: completion on node {node} without an open connection"
        );
        self.loads[node] -= 1;
        0
    }

    fn open_connections(&self, node: NodeId) -> u32 {
        self.loads[node]
    }

    fn serving_nodes(&self) -> Vec<NodeId> {
        (0..self.loads.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_picks_fewest_connections() {
        let mut t = Traditional::new(3);
        // Load node 0 and 1.
        for _ in 0..2 {
            let n = t.arrival_node();
            t.assign(SimTime::ZERO, n, 0.into());
        }
        assert_eq!(t.open_connections(0), 1);
        assert_eq!(t.open_connections(1), 1);
        // Third arrival must land on node 2.
        assert_eq!(t.arrival_node(), 2);
    }

    #[test]
    fn traditional_rebalances_after_completion() {
        let mut t = Traditional::new(2);
        let a = t.arrival_node();
        t.assign(SimTime::ZERO, a, 0.into());
        let b = t.arrival_node();
        t.assign(SimTime::ZERO, b, 1.into());
        assert_ne!(a, b);
        t.complete(SimTime::ZERO, a, 0.into());
        assert_eq!(t.arrival_node(), a, "freed node is least loaded again");
    }

    #[test]
    fn traditional_never_forwards() {
        let mut t = Traditional::new(4);
        for f in 0..20u32 {
            let n = t.arrival_node();
            let a = t.assign(SimTime::ZERO, n, f.into());
            assert!(!a.forwarded);
            assert_eq!(a.control_msgs, 0);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new(3);
        let seq: Vec<_> = (0..6).map(|_| rr.arrival_node()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn pure_locality_is_sticky_per_file() {
        let mut p = PureLocality::new(4);
        let first = p.assign(SimTime::ZERO, 0, 42.into()).service;
        for _ in 0..10 {
            let initial = p.arrival_node();
            let a = p.assign(SimTime::ZERO, initial, 42.into());
            assert_eq!(a.service, first, "same file, same owner");
        }
    }

    #[test]
    fn pure_locality_spreads_files() {
        let p = PureLocality::new(4);
        let mut seen = [false; 4];
        for f in 0..64u32 {
            seen[p.owner(f)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some node owns no files");
    }

    #[test]
    fn pure_locality_forwarding_flag_tracks_owner() {
        let mut p = PureLocality::new(2);
        let owner = p.owner(7);
        let a = p.assign(SimTime::ZERO, owner, 7.into());
        assert!(!a.forwarded);
        let other = 1 - owner;
        let b = p.assign(SimTime::ZERO, other, 7.into());
        assert!(b.forwarded);
    }

    #[test]
    fn single_node_baselines_degenerate_cleanly() {
        for kind in [
            PolicyKind::Traditional,
            PolicyKind::RoundRobin,
            PolicyKind::PureLocality,
        ] {
            let mut p = kind.build(1);
            for f in 0..5u32 {
                let n = p.arrival_node();
                assert_eq!(n, 0);
                let a = p.assign(SimTime::ZERO, n, f.into());
                assert_eq!(a.service, 0);
                assert!(!a.forwarded);
            }
        }
    }
}
