//! An incrementally maintained least-loaded index.
//!
//! Every policy decision of the form "pick the least-loaded node" used
//! to rescan its candidate list, costing O(nodes) per request and
//! making events/s fall with cluster size. [`LoadIndex`] keeps the
//! candidates in a segment tree keyed by the packed pair
//! `(load << 32) | node`, so the minimum — and therefore the exact node
//! the naive scan would have picked, including its lowest-id
//! tie-breaking — is maintained under point updates in O(log n).
//!
//! The rotating variant ([`LoadIndex::argmin_rotating`]) reproduces
//! `argmin_rotating`'s cyclic scan: the present nodes, in ascending id
//! order, *are* the candidate slice the naive scan walks, so "first
//! strict minimum starting from the cursor's node, wrapping" decomposes
//! into two range-minimum queries. Equivalence is pinned by unit tests
//! here and by the property tests in `tests/props.rs`.

use crate::NodeId;
use l2s_util::{cast, invariant};

/// Packed comparison key: load in the high 32 bits, node id in the low
/// 32, so `min` over keys is lexicographic `(load, node)` — least load
/// first, lowest node id on ties, exactly like the naive scans.
fn key(node: NodeId, load: u32) -> u64 {
    (u64::from(load) << 32) | cast::len_u64(node)
}

/// Node id part of a packed key.
fn key_node(key: u64) -> NodeId {
    cast::index_usize(key & 0xFFFF_FFFF)
}

/// Load part of a packed key.
fn key_load(key: u64) -> u64 {
    key >> 32
}

/// Sentinel for an absent leaf; compares greater than every real key.
const ABSENT: u64 = u64::MAX;

/// A segment tree over node ids `0..capacity` answering least-loaded
/// queries in O(log n) under point insert/update/remove.
///
/// Leaves sit in node-id order; each internal node stores the minimum
/// packed key and the count of present leaves in its subtree. Absent
/// nodes (dead, or not part of the candidate set) hold [`ABSENT`] and
/// count 0, so they never win a minimum and are skipped by the order
/// statistics used for rotation.
#[derive(Clone, Debug)]
pub struct LoadIndex {
    /// Leaf span: capacity rounded up to a power of two (≥ 1).
    size: usize,
    /// 1-based heap layout; `min_key[1]` is the root, leaf for node `i`
    /// is `min_key[size + i]`.
    min_key: Vec<u64>,
    /// Present-leaf counts per subtree, same layout as `min_key`.
    count: Vec<u32>,
}

impl LoadIndex {
    /// An empty index able to hold nodes `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        invariant!(capacity >= 1, "load index needs capacity for one node");
        let size = capacity.next_power_of_two();
        LoadIndex {
            size,
            min_key: vec![ABSENT; 2 * size],
            count: vec![0; 2 * size],
        }
    }

    /// Number of present nodes.
    pub fn len(&self) -> usize {
        cast::wide_usize(self.count[1])
    }

    /// Whether no node is present.
    pub fn is_empty(&self) -> bool {
        self.count[1] == 0
    }

    /// Whether `node` is currently present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.count[self.size + node] != 0
    }

    /// Recomputes the path from `node`'s leaf to the root.
    fn pull_up(&mut self, node: NodeId) {
        let mut i = (self.size + node) / 2;
        while i >= 1 {
            let (l, r) = (2 * i, 2 * i + 1);
            self.min_key[i] = self.min_key[l].min(self.min_key[r]);
            self.count[i] = self.count[l] + self.count[r];
            i /= 2;
        }
    }

    /// Adds `node` with the given load. The node must be absent.
    pub fn insert(&mut self, node: NodeId, load: u32) {
        let leaf = self.size + node;
        invariant!(self.count[leaf] == 0, "inserting node {node} twice");
        self.min_key[leaf] = key(node, load);
        self.count[leaf] = 1;
        self.pull_up(node);
    }

    /// Removes `node`. The node must be present.
    pub fn remove(&mut self, node: NodeId) {
        let leaf = self.size + node;
        invariant!(self.count[leaf] == 1, "removing absent node {node}");
        self.min_key[leaf] = ABSENT;
        self.count[leaf] = 0;
        self.pull_up(node);
    }

    /// Sets the load of a present `node`.
    pub fn update(&mut self, node: NodeId, load: u32) {
        let leaf = self.size + node;
        invariant!(self.count[leaf] == 1, "updating absent node {node}");
        self.min_key[leaf] = key(node, load);
        self.pull_up(node);
    }

    /// Sets the load of `node` if it is present; no-op otherwise. Load
    /// accounting and membership change on different hooks (completions
    /// keep settling on crashed nodes), so most write sites want this.
    pub fn set_if_present(&mut self, node: NodeId, load: u32) {
        if self.contains(node) {
            self.update(node, load);
        }
    }

    /// The present node with the least load, lowest node id winning
    /// ties — identical to the naive lowest-index-first scan. `None`
    /// when no node is present.
    pub fn argmin(&self) -> Option<NodeId> {
        if self.count[1] == 0 {
            None
        } else {
            Some(key_node(self.min_key[1]))
        }
    }

    /// Least-loaded choice with rotating tie-breaking, selection-
    /// identical to `argmin_rotating` over the present nodes in
    /// ascending id order (the sorted live list every caller maintains).
    ///
    /// The naive scan starts at candidate `cursor % len` and takes the
    /// *first* strict minimum in cyclic order. Split the cycle at the
    /// start node `s`: if the suffix `[s, capacity)` attains the global
    /// minimum load, the winner is its leftmost minimum-key leaf
    /// (smallest id at that load ≥ `s`); otherwise the winner is the
    /// global minimum, which then lies wholly in the prefix.
    pub fn argmin_rotating(&self, cursor: &mut usize) -> Option<NodeId> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        let start = *cursor % n;
        *cursor = cursor.wrapping_add(1);
        let s = self.kth_present(start);
        let suffix = self.range_min(s, self.size);
        let root = self.min_key[1];
        let winner = if key_load(suffix) == key_load(root) {
            suffix
        } else {
            root
        };
        Some(key_node(winner))
    }

    /// Node id of the `k`-th present node (0-based, in ascending id
    /// order) — the order statistic JSQ(d) draws its random sample over:
    /// a uniform rank in `[0, len())` maps to a uniform present node in
    /// O(log n), with no rejection loop over dead ids.
    pub fn nth_present(&self, k: usize) -> NodeId {
        self.kth_present(k)
    }

    /// The load recorded for `node`, or `None` when it is absent.
    pub fn load_of(&self, node: NodeId) -> Option<u32> {
        if self.contains(node) {
            let load = key_load(self.min_key[self.size + node]);
            Some(cast::index_u32(cast::index_usize(load)))
        } else {
            None
        }
    }

    /// Node id of the `k`-th present leaf (0-based, ascending id).
    fn kth_present(&self, mut k: usize) -> NodeId {
        invariant!(k < self.len(), "rank {k} out of range");
        let mut i = 1;
        while i < self.size {
            let left = 2 * i;
            let on_left = cast::wide_usize(self.count[left]);
            if k < on_left {
                i = left;
            } else {
                k -= on_left;
                i = left + 1;
            }
        }
        i - self.size
    }

    /// Minimum key over leaves `[from, to)`; [`ABSENT`] if empty.
    fn range_min(&self, from: usize, to: usize) -> u64 {
        let mut l = from + self.size;
        let mut r = to + self.size;
        let mut best = ABSENT;
        while l < r {
            if l & 1 == 1 {
                best = best.min(self.min_key[l]);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                best = best.min(self.min_key[r]);
            }
            l /= 2;
            r /= 2;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{argmin, argmin_rotating};

    fn full(n: usize) -> LoadIndex {
        let mut ix = LoadIndex::new(n);
        for node in 0..n {
            ix.insert(node, 0);
        }
        ix
    }

    #[test]
    fn argmin_matches_naive_lowest_id_tiebreak() {
        let loads = [3u32, 1, 1, 2, 1];
        let mut ix = full(5);
        for (node, &l) in loads.iter().enumerate() {
            ix.update(node, l);
        }
        let naive = argmin(loads.iter().copied().enumerate());
        assert_eq!(ix.argmin(), Some(naive));
        assert_eq!(ix.argmin(), Some(1));
    }

    #[test]
    fn empty_index_has_no_argmin() {
        let mut ix = full(3);
        for node in 0..3 {
            ix.remove(node);
        }
        assert_eq!(ix.argmin(), None);
        let mut cursor = 7;
        assert_eq!(ix.argmin_rotating(&mut cursor), None);
        assert_eq!(cursor, 7, "cursor must not advance on empty index");
    }

    #[test]
    fn removal_excludes_and_reinsert_readmits() {
        let mut ix = full(4);
        ix.update(2, 5);
        ix.remove(0);
        ix.remove(1);
        assert_eq!(ix.argmin(), Some(3));
        assert!(!ix.contains(0));
        ix.insert(0, 1);
        assert_eq!(ix.argmin(), Some(3), "node 3 still idle");
        ix.update(3, 2);
        assert_eq!(ix.argmin(), Some(0));
        assert_eq!(ix.len(), 3);
    }

    #[test]
    fn set_if_present_ignores_absent_nodes() {
        let mut ix = full(2);
        ix.remove(1);
        ix.set_if_present(1, 9);
        assert!(!ix.contains(1));
        ix.set_if_present(0, 4);
        assert_eq!(ix.argmin(), Some(0));
    }

    #[test]
    fn rotating_matches_naive_over_live_list_exhaustively() {
        // Every membership mask over 6 nodes, every load pattern drawn
        // from a small base, every starting cursor: the index and the
        // naive cyclic scan must pick the same node and leave the same
        // cursor behind.
        let base = [2u32, 0, 1, 0, 2, 0];
        for mask in 1u32..64 {
            let members: Vec<usize> = (0..6).filter(|i| mask & (1 << i) != 0).collect();
            let mut ix = LoadIndex::new(6);
            for &m in &members {
                ix.insert(m, base[m]);
            }
            for start in 0..2 * members.len() {
                let mut c1 = start;
                let mut c2 = start;
                let naive = argmin_rotating(&members, |i| base[i], &mut c1);
                let fast = ix.argmin_rotating(&mut c2);
                assert_eq!(fast, Some(naive), "mask={mask:#b} start={start}");
                assert_eq!(c1, c2);
            }
        }
    }

    #[test]
    fn nth_present_walks_live_nodes_in_id_order() {
        let mut ix = full(6);
        ix.remove(1);
        ix.remove(4);
        // Present: 0, 2, 3, 5.
        assert_eq!(ix.nth_present(0), 0);
        assert_eq!(ix.nth_present(1), 2);
        assert_eq!(ix.nth_present(2), 3);
        assert_eq!(ix.nth_present(3), 5);
    }

    #[test]
    fn load_of_reports_present_loads_only() {
        let mut ix = full(3);
        ix.update(1, 7);
        assert_eq!(ix.load_of(0), Some(0));
        assert_eq!(ix.load_of(1), Some(7));
        ix.remove(2);
        assert_eq!(ix.load_of(2), None);
    }

    #[test]
    fn non_power_of_two_capacity_works() {
        let mut ix = LoadIndex::new(5);
        for node in 0..5 {
            ix.insert(node, 7);
        }
        assert_eq!(ix.argmin(), Some(0), "ties break to the lowest id");
        ix.update(0, 9);
        assert_eq!(ix.argmin(), Some(1));
        ix.update(4, 2);
        assert_eq!(ix.argmin(), Some(4));
    }
}
