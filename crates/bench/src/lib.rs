//! Experiment harness shared by the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's experiment index); the actual experiment
//! bodies live in [`experiments`], so the `all_figures` binary can run
//! every experiment in one process — sharing memoized traces — while
//! the per-figure binaries stay available for selective reruns. This
//! library holds the common machinery: the deterministic parallel cell
//! executor ([`run_cells_parallel`]), the analytic "model" line of
//! Figures 7–10, scale control, and output helpers.
//!
//! # Parallel execution
//!
//! Every experiment decomposes into independent *cells* — one
//! simulation (or model evaluation) per `(trace, policy, nodes, knob)`
//! combination. [`run_cells_parallel`] fans cells across
//! `min(workers, cells)` scoped threads and collects results **by cell
//! index, never by completion order**, so every CSV and chart is
//! byte-identical to a sequential run regardless of worker count or
//! scheduling. `L2S_WORKERS` overrides the worker count (default: all
//! hardware threads); `L2S_WORKERS=1` forces the sequential inline
//! path, which the perf baseline uses for comparable measurements.
//!
//! # Scale control
//!
//! By default the harness runs a *quick* configuration (full file
//! populations, request streams capped at 150 000) so every figure
//! regenerates in seconds. Set `L2S_BENCH_FULL=1` to simulate the
//! complete Table 2 request counts (up to 3.1 M requests per run), which
//! reproduces the paper at full fidelity, or `L2S_BENCH_CAP=<n>` to
//! shrink the per-run request cap further (test suites use this).
//! `L2S_RESULTS_DIR` redirects CSV output (default `results/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

use l2s::PolicyKind;
use l2s_model::{ModelParams, QueueModel, ServerKind};
use l2s_sim::{simulate, SimConfig, SimReport};
use l2s_trace::{Trace, TraceSpec, TraceStats};
use l2s_util::ascii::{line_chart, Series};
use l2s_util::cast;
use l2s_util::csv::{results_dir, CsvTable};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

/// The cluster sizes of Figures 7–10.
pub const PAPER_NODE_COUNTS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// The three servers of Figures 7–10, in plotting order.
pub const PAPER_POLICIES: [PolicyKind; 3] =
    [PolicyKind::L2s, PolicyKind::Lard, PolicyKind::Traditional];

/// Whether full-fidelity mode was requested via `L2S_BENCH_FULL=1`.
pub fn full_fidelity() -> bool {
    std::env::var("L2S_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Request cap for simulation runs (`None` in full-fidelity mode).
///
/// `L2S_BENCH_CAP=<n>` overrides the quick-mode default of 150 000 —
/// the in-tree determinism tests use a small cap so they finish in
/// seconds. `L2S_BENCH_FULL=1` wins over the cap.
pub fn request_cap() -> Option<usize> {
    if full_fidelity() {
        return None;
    }
    let cap = std::env::var("L2S_BENCH_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(150_000);
    Some(cap)
}

/// Worker count for parallel cell execution: `$L2S_WORKERS`, defaulting
/// to all hardware threads. See [`l2s_util::pool::workers_from_env`].
pub fn workers_from_env() -> usize {
    l2s_util::pool::workers_from_env()
}

/// Runs `cells` independent jobs across [`workers_from_env`] threads and
/// returns their results ordered by cell index — the determinism
/// contract every experiment relies on: output order depends only on how
/// the experiment *enumerates* its cells, never on completion order.
pub fn run_cells_parallel<T, F>(cells: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_with_workers(workers_from_env(), cells, run)
}

/// [`run_cells_parallel`] with an explicit worker count (clamped to
/// `[1, cells]`; 1 runs inline on the calling thread).
pub fn run_cells_with_workers<T, F>(workers: usize, cells: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    l2s_util::pool::run_indexed(workers, cells, run)
}

/// Deterministic per-trace generation seed.
pub fn trace_seed(spec: &TraceSpec) -> u64 {
    // Stable hash of the trace name.
    spec.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Bit-exact memoization key for a [`TraceSpec`]: the name plus every
/// numeric field rendered via `to_bits`, so two specs share a cached
/// trace only when generation would be identical.
fn trace_key(spec: &TraceSpec) -> String {
    format!(
        "{}|{}|{:016x}|{}|{:016x}|{:016x}|{:016x}|{:016x}|{}",
        spec.name,
        spec.num_files,
        spec.avg_file_kb.to_bits(),
        spec.num_requests,
        spec.avg_request_kb.to_bits(),
        spec.alpha.to_bits(),
        spec.size_sigma.to_bits(),
        spec.temporal.to_bits(),
        spec.temporal_window,
    )
}

/// Generates a Table 2 trace at harness scale, memoized per spec.
///
/// Trace generation is the single largest fixed cost of an experiment
/// run, and the experiments reuse a handful of Table 2 specs; running
/// them in one process (the `all_figures` binary) makes each distinct
/// spec pay generation once. The cache key is bit-exact over every spec
/// field, so memoization cannot change what any experiment sees —
/// `spec.generate(trace_seed(spec))` is deterministic in the spec.
///
/// Thread-safety: the map lock is held only long enough to fetch or
/// insert a per-key slot; generation itself runs under the slot's own
/// `OnceLock`. Two workers asking for the *same* spec concurrently share
/// one generation (the second blocks), while workers generating
/// *different* specs proceed in parallel.
pub fn paper_trace(spec: &TraceSpec) -> Arc<Trace> {
    type Slot = Arc<OnceLock<Arc<Trace>>>;
    static CACHE: OnceLock<Mutex<BTreeMap<String, Slot>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = trace_key(spec);
    let slot: Slot = {
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(key).or_default())
    };
    Arc::clone(slot.get_or_init(|| Arc::new(spec.generate(trace_seed(spec)))))
}

/// One cell of a node sweep.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Cluster size.
    pub nodes: usize,
    /// Policy simulated.
    pub policy: PolicyKind,
    /// Full measurement report.
    pub report: SimReport,
}

/// Runs `trace` under every `(nodes, policy)` combination in parallel
/// and returns the cells sorted by `(nodes, policy index)`.
///
/// `configure` customizes the base [`SimConfig`] per cluster size (cache
/// size overrides, sensitivity knobs, ...).
pub fn sweep<F>(
    trace: &Trace,
    node_counts: &[usize],
    policies: &[PolicyKind],
    configure: F,
) -> Vec<SweepCell>
where
    F: Fn(usize) -> SimConfig + Sync,
{
    let jobs: Vec<(usize, PolicyKind)> = node_counts
        .iter()
        .flat_map(|&n| policies.iter().map(move |&p| (n, p)))
        .collect();
    // Index-ordered collection: cell i is always jobs[i]'s result, so the
    // output is identical for every worker count.
    let mut cells = run_cells_parallel(jobs.len(), |i| {
        let (n, policy) = jobs[i];
        let config = configure(n);
        let report = simulate(&config, policy, trace);
        SweepCell {
            nodes: n,
            policy,
            report,
        }
    });
    // The enumeration above already emits (nodes, policy index) order for
    // ascending node_counts; the sort keeps the documented contract even
    // for unsorted caller input.
    let order = |p: PolicyKind| policies.iter().position(|&q| q == p).unwrap_or(usize::MAX);
    cells.sort_by_key(|c| (c.nodes, order(c.policy)));
    cells
}

/// The default per-figure configuration: Section 5.1 parameters with the
/// harness request cap applied.
pub fn paper_config(nodes: usize) -> SimConfig {
    SimConfig {
        max_requests: request_cap(),
        ..SimConfig::paper_default(nodes)
    }
}

/// The analytic model line of Figures 7–10: the throughput upper bound
/// of a locality-conscious server with 15 % replication, instantiated
/// with the trace's measured population, Zipf exponent, and mean
/// requested-file size.
pub fn model_line(
    stats: &TraceStats,
    node_counts: &[usize],
    cache_kb: f64,
) -> Result<Vec<(usize, f64)>, String> {
    node_counts
        .iter()
        .map(|&n| {
            let params = ModelParams {
                nodes: n,
                replication: 0.15,
                alpha: stats.alpha.max(0.05),
                cache_kb,
                avg_file_kb: stats.avg_request_kb,
                ..ModelParams::default()
            };
            let model = QueueModel::new(params)?;
            let derived = model.derived_from_population(
                ServerKind::LocalityConscious,
                cast::len_f64(stats.num_files),
            );
            Ok((n, model.max_throughput_derived(&derived)))
        })
        .collect()
}

/// [`write_throughput_figure_to`] with the default results directory
/// (`$L2S_RESULTS_DIR`, else `results/`).
pub fn write_throughput_figure(
    fig: &str,
    spec: &TraceSpec,
    cells: &[SweepCell],
    model: &[(usize, f64)],
) -> std::io::Result<(PathBuf, String)> {
    write_throughput_figure_to(&results_dir(), fig, spec, cells, model)
}

/// Renders and writes one Figures 7–10 style experiment: simulated
/// throughput for the three servers plus the model bound, as CSV and an
/// ASCII chart under `dir`. Returns the path written and the chart
/// text. Taking the directory explicitly keeps tests and embedders free
/// of process-global environment mutation.
pub fn write_throughput_figure_to(
    dir: &Path,
    fig: &str,
    spec: &TraceSpec,
    cells: &[SweepCell],
    model: &[(usize, f64)],
) -> std::io::Result<(PathBuf, String)> {
    let mut table = CsvTable::new(["nodes", "model", "l2s", "lard", "traditional"]);
    let mut series: Vec<Series> = vec![
        Series::new("model", Vec::new()),
        Series::new("l2s", Vec::new()),
        Series::new("lard", Vec::new()),
        Series::new("traditional", Vec::new()),
    ];
    let nodes: Vec<usize> = model.iter().map(|&(n, _)| n).collect();
    for (i, &n) in nodes.iter().enumerate() {
        let get = |p: PolicyKind| {
            cells
                .iter()
                .find(|c| c.nodes == n && c.policy == p)
                .map(|c| c.report.throughput_rps)
                .unwrap_or(0.0)
        };
        let row = [
            model[i].1,
            get(PolicyKind::L2s),
            get(PolicyKind::Lard),
            get(PolicyKind::Traditional),
        ];
        table.row_f64([cast::len_f64(n), row[0], row[1], row[2], row[3]]);
        for (s, v) in series.iter_mut().zip(row) {
            s.points.push((cast::len_f64(n), v));
        }
    }
    let path = dir.join(format!("{fig}.csv"));
    table.write_to(&path)?;
    let chart = line_chart(
        &format!(
            "{fig}: throughput (requests/s) vs nodes — {} trace",
            spec.name
        ),
        &series,
        64,
        20,
    );
    Ok((path, chart))
}

/// Runs one complete Figures 7–10 experiment (sweep + model line +
/// outputs) and prints the chart plus the paper's headline comparisons.
pub fn run_paper_figure(fig: &str, spec: &TraceSpec) -> Result<(), String> {
    println!(
        "== {fig}: {} trace ({} files, {} requests{}) ==",
        spec.name,
        spec.num_files,
        spec.num_requests,
        if full_fidelity() {
            ", full fidelity"
        } else {
            ", quick mode (L2S_BENCH_FULL=1 for full)"
        }
    );
    let trace = paper_trace(spec);
    let stats = TraceStats::compute(&trace);
    println!(
        "   generated: avg file {:.1} KB, avg request {:.1} KB, alpha {:.2}, working set {:.0} MB",
        stats.avg_file_kb,
        stats.avg_request_kb,
        stats.alpha,
        stats.working_set_kb / 1024.0
    );
    let cells = sweep(&trace, &PAPER_NODE_COUNTS, &PAPER_POLICIES, paper_config);
    let model = model_line(&stats, &PAPER_NODE_COUNTS, paper_config(1).cache_kb)?;
    let (path, chart) = write_throughput_figure(fig, spec, &cells, &model)
        .map_err(|e| format!("write {fig} outputs: {e}"))?;
    println!("{chart}");

    let at16 = |p: PolicyKind| {
        cell(&cells, 16, p)
            .map(|c| c.report.throughput_rps)
            .ok_or_else(|| format!("{fig}: missing 16-node {} cell", p.name()))
    };
    let l2s = at16(PolicyKind::L2s)?;
    let lard = at16(PolicyKind::Lard)?;
    let trad = at16(PolicyKind::Traditional)?;
    let bound = model.last().map(|&(_, x)| x).unwrap_or(f64::NAN);
    println!("  at 16 nodes: L2S {l2s:.0} r/s, LARD {lard:.0} r/s, traditional {trad:.0} r/s");
    println!(
        "  L2S vs LARD {:+.0}%, L2S vs traditional {:+.0}%, L2S at {:.0}% of the model bound",
        (l2s / lard - 1.0) * 100.0,
        (l2s / trad - 1.0) * 100.0,
        l2s / bound * 100.0
    );
    println!("  CSV: {}", path.display());
    Ok(())
}

/// Convenience accessor: the cell for `(nodes, policy)`, if the sweep
/// produced one.
pub fn cell(cells: &[SweepCell], nodes: usize, policy: PolicyKind) -> Option<&SweepCell> {
    cells
        .iter()
        .find(|c| c.nodes == nodes && c.policy == policy)
}

/// Extracts the first `"key": <number>` occurrence from a JSON string.
///
/// Hand-rolled because the workspace deliberately has no serde; the
/// `BENCH_*.json` files this reads are machine-written by the binaries
/// in this crate, so the format is known.
pub fn extract_json_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)?;
    let rest = &json[at + needle.len()..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Binary entry-point shim: runs an experiment and turns an `Err` into
/// a nonzero exit with the message on stderr. Keeps the `src/bin/`
/// wrappers one line each.
pub fn run_experiment(run: fn() -> Result<(), String>) {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Runs every experiment in [`experiments::ALL`] in this process, in
/// the same order as the historical `run_experiments.sh`, sharing the
/// memoized traces. Stops at the first failure, naming the experiment.
pub fn run_all_figures() -> Result<(), String> {
    run_all_figures_timed().map(|_| ())
}

/// Wall-clock accounting for one full figure-suite run, recorded by
/// [`run_all_figures_timed`] and written to `BENCH_suite.json` by the
/// `all_figures` binary. Wall-clock here is measurement *about* the
/// suite, not input *to* it — every simulated quantity still comes from
/// the event queue, so timing cannot perturb any figure.
#[derive(Clone, Debug)]
pub struct SuiteTiming {
    /// Worker threads the parallel executor used.
    pub workers: usize,
    /// Total suite wall-clock in seconds.
    pub wall_s: f64,
    /// `(experiment name, wall-clock seconds)` in execution order.
    pub per_experiment: Vec<(String, f64)>,
}

/// [`run_all_figures`] with per-experiment wall-clock timing.
pub fn run_all_figures_timed() -> Result<SuiteTiming, String> {
    let workers = workers_from_env();
    let total = experiments::ALL.len();
    let suite_start = std::time::Instant::now();
    let mut per_experiment = Vec::with_capacity(total);
    for (i, (name, run)) in experiments::ALL.iter().enumerate() {
        println!("=== [{}/{total}] {name} ===", i + 1);
        let start = std::time::Instant::now();
        run().map_err(|e| format!("{name}: {e}"))?;
        per_experiment.push((name.to_string(), start.elapsed().as_secs_f64()));
        println!();
    }
    Ok(SuiteTiming {
        workers,
        wall_s: suite_start.elapsed().as_secs_f64(),
        per_experiment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let presets = TraceSpec::paper_presets();
        let seeds: Vec<u64> = presets.iter().map(trace_seed).collect();
        assert_eq!(seeds, presets.iter().map(trace_seed).collect::<Vec<_>>());
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn sweep_covers_the_matrix() {
        let trace = TraceSpec::calgary().scaled(200, 3_000).generate(1);
        let cells = sweep(
            &trace,
            &[1, 2],
            &[PolicyKind::Traditional, PolicyKind::L2s],
            |n| SimConfig::quick(n, 1_000.0),
        );
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].nodes, 1);
        assert_eq!(cells[3].nodes, 2);
        for c in &cells {
            assert_eq!(c.report.completed, 3_000);
        }
    }

    #[test]
    fn sweep_is_deterministic_despite_parallelism() {
        let trace = TraceSpec::nasa().scaled(150, 2_000).generate(2);
        let run = || {
            sweep(&trace, &[1, 2, 4], &[PolicyKind::L2s], |n| {
                SimConfig::quick(n, 800.0)
            })
            .iter()
            .map(|c| c.report.throughput_rps)
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_line_grows_with_nodes() {
        let trace = TraceSpec::calgary().scaled(2_000, 50_000).generate(3);
        let stats = TraceStats::compute(&trace);
        let line = model_line(&stats, &[1, 4, 16], 32.0 * 1024.0).unwrap();
        assert_eq!(line.len(), 3);
        assert!(line[0].1 < line[1].1 && line[1].1 < line[2].1);
    }

    #[test]
    fn figure_writer_emits_csv_and_chart() {
        // The directory is threaded explicitly — mutating
        // L2S_RESULTS_DIR here would race other tests in this binary,
        // which run concurrently and read the same process environment.
        let dir = std::env::temp_dir().join("l2s-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = TraceSpec::calgary().scaled(200, 2_000);
        let trace = spec.generate(4);
        let cells = sweep(&trace, &[1, 2], &PAPER_POLICIES, |n| {
            SimConfig::quick(n, 1_000.0)
        });
        let stats = TraceStats::compute(&trace);
        let model = model_line(&stats, &[1, 2], 1_000.0).unwrap();
        let (path, chart) =
            write_throughput_figure_to(&dir, "figtest", &spec, &cells, &model).unwrap();
        assert!(path.exists());
        assert!(chart.contains("figtest"));
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("nodes,model,l2s,lard,traditional"));
        assert_eq!(csv.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paper_trace_memoizes_per_spec() {
        let spec = TraceSpec::calgary().scaled(100, 1_000);
        let a = paper_trace(&spec);
        let b = paper_trace(&spec);
        assert!(Arc::ptr_eq(&a, &b), "same spec must share one trace");
        let other = TraceSpec::calgary().scaled(100, 1_001);
        let c = paper_trace(&other);
        assert!(!Arc::ptr_eq(&a, &c), "different specs must not collide");
        // Memoization must be invisible: the cached trace is exactly
        // what direct generation produces.
        assert_eq!(
            a.requests(),
            spec.generate(trace_seed(&spec)).requests(),
            "cached trace must equal direct generation"
        );
    }
}
