//! X9: non-stationary workloads — analytic LRU validation plus the
//! dispatcher degradation table under drift and flash crowds.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_workload::run);
}
