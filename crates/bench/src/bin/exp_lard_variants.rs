//! Ablation: the LARD family against L2S. Compares
//!
//! * **lard** — LARD/R with the dedicated front-end (the paper's
//!   comparison target),
//! * **lard-basic** — LARD without replication (overload *moves* a
//!   file's server; Pai et al.'s simpler algorithm),
//! * **lard-dispatcher** — the improved organization of Aron et al.
//!   (USENIX 2000) discussed in the paper's Section 6: connections are
//!   accepted by every serving node, which queries a dedicated
//!   dispatcher (two-way message) and hands off itself,
//! * **l2s** — the paper's fully distributed design.
//!
//! Expected shape (Section 6): the dispatcher organization pushes the
//! saturation point well past the classic front-end, but still wastes a
//! node, still has a central point of failure, and pays a two-way
//! message per request — L2S should match or beat it.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_lard_variants::run);
}
