//! Regenerates every paper table/figure in one process, sharing the
//! memoized traces across experiments (`run_experiments.sh` invokes
//! this). Quick mode by default; `L2S_BENCH_FULL=1` for full fidelity.
fn main() {
    l2s_bench::run_experiment(l2s_bench::run_all_figures);
}
