//! Regenerates every paper table/figure in one process, sharing the
//! memoized traces across experiments (`run_experiments.sh` invokes
//! this). Quick mode by default; `L2S_BENCH_FULL=1` for full fidelity.
//!
//! On success the suite's wall-clock accounting is written to
//! `BENCH_suite.json` (override the path with `L2S_SUITE_JSON`):
//! worker/core counts, total and per-experiment wall-clock, and the
//! speedup against the recorded 1-worker baseline. A run with
//! `L2S_WORKERS=1` records itself as that baseline; later parallel runs
//! carry it over and report `speedup_vs_1worker` against it. Timing is
//! measurement *about* the suite — every figure's content is
//! byte-identical for any worker count.

use std::fmt::Write as _;

fn main() {
    let timing = match l2s_bench::run_all_figures_timed() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let path: std::path::PathBuf = std::env::var_os("L2S_SUITE_JSON")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_suite.json".into());
    let old = std::fs::read_to_string(&path).ok();
    // A 1-worker run defines the sequential baseline; a parallel run
    // compares against the last recorded one (itself, if none exists yet
    // — speedup then reads 1.0 rather than inventing a baseline).
    let baseline_wall_s = if timing.workers == 1 {
        timing.wall_s
    } else {
        old.as_deref()
            .and_then(|j| l2s_bench::extract_json_num(j, "baseline_wall_s_1worker"))
            .unwrap_or(timing.wall_s)
    };
    let speedup = baseline_wall_s / timing.wall_s.max(1e-9);
    println!(
        "suite: {} experiments in {:.2}s with {} worker(s) on {cores} core(s); \
         {speedup:.2}x vs the 1-worker baseline of {baseline_wall_s:.2}s",
        timing.per_experiment.len(),
        timing.wall_s,
        timing.workers,
    );

    let workload = if l2s_bench::full_fidelity() {
        "full fidelity (Table 2 request counts)".to_string()
    } else {
        format!(
            "quick mode ({} requests/cell cap)",
            l2s_bench::request_cap().unwrap_or(0)
        )
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": 1,");
    let _ = writeln!(
        json,
        "  \"workload\": \"all_figures suite: {} experiments, {workload}\",",
        timing.per_experiment.len()
    );
    let _ = writeln!(json, "  \"workers\": {},", timing.workers);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"wall_s_total\": {:.3},", timing.wall_s);
    let _ = writeln!(json, "  \"baseline_wall_s_1worker\": {baseline_wall_s:.3},");
    let _ = writeln!(json, "  \"speedup_vs_1worker\": {speedup:.3},");
    json.push_str("  \"experiments\": [\n");
    for (i, (name, wall_s)) in timing.per_experiment.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{name}\", \"wall_s\": {wall_s:.3}}}"
        );
        json.push_str(if i + 1 < timing.per_experiment.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
