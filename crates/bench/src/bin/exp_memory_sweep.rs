//! Section 3.2 memory study: how the peak locality gain shrinks as
//! per-node memory grows from 128 MB to 512 MB (paper: from ~7x to
//! ~6.5x).

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_memory_sweep::run);
}
