//! Scale-out proof harness: sweeps cluster sizes 16 → 1024 at a fixed
//! per-cell request count and records events/s, peak RSS, and peak FEL
//! depth in `BENCH_scaling.json` at the repo root.
//!
//! This is the evidence for the scale-out engine work: with indexed
//! dispatch the per-request policy cost is O(log n), with the streaming
//! workload the request count never touches resident memory, and with
//! lean metrics (`response_samples = false`) neither does the
//! completion count — so per-event *algorithmic* work stays flat from
//! 16 to 1024 nodes (each cell's queue operation counters prove it
//! wall-clock-free) and RSS stays flat in the request count. Measured
//! events/s still decays moderately with cluster size: the in-flight
//! window grows 64x across the sweep and drags the working set out of
//! L1 — see EXPERIMENTS.md for the decomposition.
//!
//! The workload is the Calgary file population (Table 2) streamed
//! straight from the synthetic generator — no materialized trace — at
//! 10 M requests per cell (≈10⁸ simulated events per cell; override
//! with `L2S_SCALING_REQUESTS`). Policies: traditional (pure O(log n)
//! dispatch) and LARD (front-end locality table + indexed load views).
//! L2S is excluded by design: its broadcast protocol sends Θ(n)
//! messages per load delta, so its cost at 1024 nodes is a property of
//! the *protocol*, not the engine — see DESIGN.md "Scaling
//! architecture".
//!
//! Modes:
//!
//! * default — run the full sweep (nodes ∈ {16, 64, 256, 1024}) and
//!   write `BENCH_scaling.json` (`L2S_SCALING_JSON` overrides the
//!   path);
//! * `--smoke` — a CI-sized flatness gate: traditional at 16 and 256
//!   nodes, 250 k requests, [`SMOKE_TRIALS`] interleaved pairs, exits
//!   non-zero if the median 256-node events/s falls below
//!   [`FLATNESS_FLOOR`] of the median 16-node figure.

use l2s::PolicyKind;
use l2s_sim::{simulate_workload, SimConfig, SynthWorkload};
use l2s_trace::TraceSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Requests per sweep cell in the full run. Traditional handles ~10
/// events per request, so the default puts every cell at or above 10⁸
/// events — the scale the memory-flat claims are made at.
const FULL_REQUESTS: usize = 10_000_000;

/// Requests per cell in `--smoke` mode (CI-sized; seconds, not minutes).
const SMOKE_REQUESTS: usize = 250_000;

/// Measurement pairs in `--smoke` mode, run 16-then-256 interleaved so
/// both sizes sample the same host-contention phases; the gate compares
/// per-column medians, so one contention spike cannot fail CI.
const SMOKE_TRIALS: usize = 3;

/// Minimum 256-node events/s as a fraction of the 16-node figure
/// (medians over [`SMOKE_TRIALS`] pairs). A per-request O(n) scan would
/// put the ratio near 16/256 = 0.06; the indexed engine measures
/// 0.5–0.7, the residual falloff being the 16x larger in-flight window
/// (4096 requests) spilling the working set out of L1 — per-event
/// algorithmic work is flat, which the queue's operation counters in
/// `BENCH_scaling.json` show machine-independently. The floor sits
/// below the measured band's noise so it trips on algorithmic
/// regressions, not on shared-host contention; the 0.8 stretch target
/// and the measured decomposition live in EXPERIMENTS.md.
const FLATNESS_FLOOR: f64 = 0.35;

/// Cluster sizes the full sweep covers.
const FULL_NODES: [usize; 4] = [16, 64, 256, 1024];

struct CellResult {
    policy: PolicyKind,
    nodes: usize,
    wall_s: f64,
    events: u64,
    peak_fel: usize,
    throughput_rps: f64,
    /// Process-wide peak RSS (kB) observed after this cell finished.
    rss_hwm_kb: u64,
    /// Event-queue operation counters — deterministic per-cell work
    /// evidence, immune to host noise.
    ops: l2s_devs::QueueStats,
}

/// Peak resident set size of this process in kB, from
/// `/proc/self/status` `VmHWM` (0 where procfs is unavailable). The
/// high-water mark is process-wide and monotone, which is exactly what
/// the memory-flat claim needs: if any cell materialized its requests,
/// the mark would jump by hundreds of MB and stay there.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn requests_per_cell(default: usize) -> usize {
    std::env::var("L2S_SCALING_REQUESTS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

fn json_path() -> std::path::PathBuf {
    std::env::var_os("L2S_SCALING_JSON")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_scaling.json".into())
}

/// Runs one sweep cell: a fresh streaming workload, lean metrics, no
/// warm-up (the sweep measures engine throughput, not cache curves).
fn run_cell(spec: &TraceSpec, policy: PolicyKind, nodes: usize) -> CellResult {
    let mut config = SimConfig::paper_default(nodes);
    config.warmup = false;
    config.response_samples = false;
    let mut workload = SynthWorkload::new(spec, 42);
    let start = Instant::now();
    let report = simulate_workload(&config, policy, &mut workload);
    let wall_s = start.elapsed().as_secs_f64();
    CellResult {
        policy,
        nodes,
        wall_s,
        events: report.events_handled,
        peak_fel: report.peak_fel_depth,
        throughput_rps: report.throughput_rps,
        rss_hwm_kb: peak_rss_kb(),
        ops: report.fel_ops,
    }
}

fn print_cell(c: &CellResult) {
    println!(
        "{:>12} {:>6} {:>10.3} {:>12} {:>12.0} {:>9} {:>12} {:>12.0}",
        c.policy.name(),
        c.nodes,
        c.wall_s,
        c.events,
        c.events as f64 / c.wall_s.max(1e-9),
        c.peak_fel,
        c.rss_hwm_kb,
        c.throughput_rps,
    );
}

fn header() {
    println!(
        "{:>12} {:>6} {:>10} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "policy", "nodes", "wall (s)", "events", "events/s", "peak FEL", "rss HWM kB", "sim r/s"
    );
}

fn eps(c: &CellResult) -> f64 {
    c.events as f64 / c.wall_s.max(1e-9)
}

/// Median of a small sample (the smoke's noise defense).
fn median(xs: &mut Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs.get(xs.len() / 2).copied().unwrap_or(0.0)
}

fn smoke(spec: &TraceSpec) {
    header();
    let mut small = Vec::new();
    let mut big = Vec::new();
    for _ in 0..SMOKE_TRIALS {
        let s = run_cell(spec, PolicyKind::Traditional, 16);
        print_cell(&s);
        small.push(eps(&s));
        let b = run_cell(spec, PolicyKind::Traditional, 256);
        print_cell(&b);
        big.push(eps(&b));
    }
    let ratio = median(&mut big) / median(&mut small).max(1e-9);
    println!(
        "\nflatness: median 256-node events/s over {SMOKE_TRIALS} interleaved \
         pairs is {ratio:.2}x the 16-node figure (floor {FLATNESS_FLOOR})"
    );
    if ratio < FLATNESS_FLOOR {
        eprintln!(
            "SCALING REGRESSION: events/s fell to {ratio:.2}x from 16 to 256 nodes; \
             dispatch is no longer flat in cluster size"
        );
        std::process::exit(1);
    }
    println!("smoke passed");
}

fn main() {
    // Wall-clock per cell is only meaningful sequentially; see
    // perf_baseline for the same pinning.
    std::env::set_var("L2S_WORKERS", "1");
    let smoke_mode = std::env::args().any(|a| a == "--smoke");
    let base = TraceSpec::calgary();
    let requests = requests_per_cell(if smoke_mode {
        SMOKE_REQUESTS
    } else {
        FULL_REQUESTS
    });
    // Full Calgary file population; the request count is the knob. The
    // workload streams, so this line is O(files) memory no matter how
    // large `requests` is.
    let spec = base.scaled(base.num_files, requests);
    println!(
        "perf_scaling: calgary population ({} files), {requests} streamed requests/cell",
        spec.num_files
    );

    if smoke_mode {
        smoke(&spec);
        return;
    }

    let mut results: Vec<CellResult> = Vec::new();
    header();
    for nodes in FULL_NODES {
        for policy in [PolicyKind::Traditional, PolicyKind::Lard] {
            let cell = run_cell(&spec, policy, nodes);
            print_cell(&cell);
            results.push(cell);
        }
    }

    // Per-policy flatness: events/s at each size relative to its
    // 16-node figure.
    for policy in [PolicyKind::Traditional, PolicyKind::Lard] {
        let base_eps = results
            .iter()
            .find(|c| c.policy == policy && c.nodes == FULL_NODES[0])
            .map(eps)
            .unwrap_or(0.0);
        let ratios: Vec<String> = FULL_NODES
            .iter()
            .filter_map(|&n| results.iter().find(|c| c.policy == policy && c.nodes == n))
            .map(|c| format!("{}: {:.2}", c.nodes, eps(c) / base_eps.max(1e-9)))
            .collect();
        println!(
            "{} events/s vs 16 nodes — {}",
            policy.name(),
            ratios.join(", ")
        );
    }

    let json = render_json(&spec, requests, &results);
    let path = json_path();
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn render_json(spec: &TraceSpec, requests: usize, cells: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(
        out,
        "  \"workload\": \"calgary population ({} files), streaming synth requests, \
         lean metrics, warm-up off, closed loop, sequential single-thread\",",
        spec.num_files
    );
    let _ = writeln!(out, "  \"requests_per_cell\": {requests},");
    let _ = writeln!(out, "  \"nodes_swept\": [16, 64, 256, 1024],");
    let _ = writeln!(out, "  \"peak_rss_kb\": {},", peak_rss_kb());
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"policy\": \"{}\", \"nodes\": {}, \"wall_s\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.1}, \"peak_fel_depth\": {}, \
             \"rss_hwm_kb\": {}, \"sim_throughput_rps\": {:.1}, \
             \"fel_ops\": {{\"near_pushes\": {}, \"far_pushes\": {}, \
             \"ins_shifted\": {}, \"sweep_sorted\": {}, \"sweeps\": {}, \
             \"scanned\": {}, \"deferred\": {}, \"full_laps\": {}}}}}",
            c.policy.name(),
            c.nodes,
            c.wall_s,
            c.events,
            eps(c),
            c.peak_fel,
            c.rss_hwm_kb,
            c.throughput_rps,
            c.ops.near_pushes,
            c.ops.far_pushes,
            c.ops.ins_shifted,
            c.ops.sweep_sorted,
            c.ops.sweeps,
            c.ops.scanned,
            c.ops.deferred,
            c.ops.full_laps
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
