//! Ablation: cache replacement policy. The paper's servers cache whole
//! files under LRU; GreedyDual-Size (Cao & Irani '97), which favors
//! small files, was the state of the art for WWW *proxy* caches. This
//! experiment swaps the per-node policy and reports the effect per
//! server organization.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_cache_policy::run);
}
