//! Section 5.2 sensitivity study (the results the paper summarizes from
//! its technical-report companion): L2S throughput under varied
//! broadcast threshold, messaging overhead, network latency, and network
//! bandwidth — plus ablations of the L2S design parameters `T`/`t`
//! called out in DESIGN.md. The paper's finding: L2S is "only slightly
//! affected by reasonable parameters" in all four dimensions.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_sensitivity::run);
}
