//! Open-loop validation and an open-loop finding.
//!
//! **Part 1 — engine vs model.** The traditional server under Poisson
//! arrivals is a textbook open network: we calibrate the model's hit
//! rate to the simulator's measured miss rate and compare mean response
//! times across offered loads. The simulator's service times are
//! deterministic (M/D/1-ish), so its queueing delay should sit at or
//! below the exponential model's, diverging at the same asymptote.
//!
//! **Part 2 — L2S under open loop.** The paper evaluates throughput in
//! a closed loop ("inject as fast as the buffers accept"). Open-loop
//! L2S exposes a fragility that methodology never probes: a transient
//! burst pushes nodes past `T`, threshold replication balloons the
//! server sets, duplicated caches push the miss rate toward the
//! locality-oblivious regime, capacity falls below the offered rate,
//! and the collapse locks in. With admission control (the closed loop)
//! the same configuration sustains more than twice the load.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_latency_curve::run);
}
