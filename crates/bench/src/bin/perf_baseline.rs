//! Perf-baseline harness: times a pinned quick-mode sweep of the
//! simulator and records the trajectory in `BENCH_sim.json` at the repo
//! root, so every PR has a before/after events-per-second record.
//!
//! The workload is pinned (it must stay comparable across commits): the
//! Calgary trace at its Table 2 population, request streams capped at
//! 150 000, warm-up on, run **sequentially** on one thread — wall-clock
//! per cell is only meaningful without co-scheduled siblings. Cells:
//!
//! * nodes ∈ {4, 8, 16} × {L2S, LARD, traditional} with the paper's LRU
//!   caches, and
//! * L2S + traditional at 8 nodes with GreedyDual-Size caches, so the
//!   eviction-structure hot path is covered too.
//!
//! Modes:
//!
//! * default — run the sweep and (re)write `BENCH_sim.json`, carrying the
//!   `baseline_events_per_sec` field over from the existing file (first
//!   run records itself as the baseline);
//! * `--check` — run the sweep and compare against the committed
//!   `BENCH_sim.json`, exiting non-zero on a >2x regression in
//!   events/sec (tolerant of ordinary wall-clock noise; CI uses this).
//!   Also enforces the machine-independent ratchet: the committed file
//!   must record at least [`MIN_SPEEDUP_VS_SEED`] over its seed
//!   baseline.

use l2s::PolicyKind;
use l2s_bench::{extract_json_num, paper_trace, trace_seed};
use l2s_cluster::CachePolicy;
use l2s_sim::{simulate, SimConfig};
use l2s_trace::TraceSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Requests per cell (both warm-up and measurement passes), pinned
/// independently of `L2S_BENCH_FULL` so runs stay comparable.
const PINNED_CAP: usize = 150_000;

/// Maximum tolerated slowdown versus the committed baseline in `--check`
/// mode. This is a catastrophe canary, not the perf gate: interleaved
/// A/B runs of identical binaries on shared dev/CI hosts measured up to
/// ~2.5x wall-clock swings between host-contention phases, so a 2x
/// tolerance flaked on noise. The tight, machine-independent gate is
/// [`MIN_SPEEDUP_VS_SEED`], which reads only committed numbers.
const MAX_REGRESSION: f64 = 3.0;

/// Minimum committed speedup over the recorded seed baseline, also
/// enforced by `--check`. Unlike `MAX_REGRESSION` (a live measurement,
/// generous because CI runners vary), this ratchet reads two numbers
/// out of the *committed* `BENCH_sim.json` — `events_per_sec` over
/// `baseline_events_per_sec` — so it is independent of the checking
/// machine's speed. The committed file records 2.19x after the indexed
/// dispatch + calendar-queue optimization PRs; commits may not ratchet
/// the recorded figure back below 2.1x.
const MIN_SPEEDUP_VS_SEED: f64 = 2.1;

struct CellResult {
    policy: PolicyKind,
    nodes: usize,
    cache: CachePolicy,
    wall_s: f64,
    events: u64,
    peak_fel: usize,
}

fn pinned_cells() -> Vec<(PolicyKind, usize, CachePolicy)> {
    let mut cells = Vec::new();
    for nodes in [4usize, 8, 16] {
        for policy in [PolicyKind::L2s, PolicyKind::Lard, PolicyKind::Traditional] {
            cells.push((policy, nodes, CachePolicy::Lru));
        }
    }
    cells.push((PolicyKind::L2s, 8, CachePolicy::GreedyDualSize));
    cells.push((PolicyKind::Traditional, 8, CachePolicy::GreedyDualSize));
    cells
}

fn json_path() -> std::path::PathBuf {
    std::env::var_os("L2S_BENCH_JSON")
        .map(Into::into)
        .unwrap_or_else(|| "BENCH_sim.json".into())
}

fn main() {
    // Wall-clock per cell is only meaningful without co-scheduled sibling
    // simulations, so pin the parallel executor to one worker no matter
    // what the caller's environment says (the measurement loop below is
    // already sequential, but library paths like `paper_trace` must not
    // fan out either).
    std::env::set_var("L2S_WORKERS", "1");
    let check_mode = std::env::args().any(|a| a == "--check");
    let spec = TraceSpec::calgary();
    println!(
        "perf_baseline: generating the pinned {} trace (seed {:#x})...",
        spec.name,
        trace_seed(&spec)
    );
    let gen_start = Instant::now();
    let trace = paper_trace(&spec);
    println!(
        "  {} files, {} requests generated in {:.2}s",
        trace.files().len(),
        trace.len(),
        gen_start.elapsed().as_secs_f64()
    );

    let mut results: Vec<CellResult> = Vec::new();
    println!(
        "{:>14} {:>6} {:>6} {:>10} {:>12} {:>12} {:>9}",
        "policy", "nodes", "cache", "wall (s)", "events", "events/s", "peak FEL"
    );
    for (policy, nodes, cache) in pinned_cells() {
        let mut config = SimConfig::paper_default(nodes);
        config.max_requests = Some(PINNED_CAP);
        config.cache_policy = cache;
        let start = Instant::now();
        let report = simulate(&config, policy, &trace);
        let wall_s = start.elapsed().as_secs_f64();
        let cell = CellResult {
            policy,
            nodes,
            cache,
            wall_s,
            events: report.events_handled,
            peak_fel: report.peak_fel_depth,
        };
        println!(
            "{:>14} {:>6} {:>6} {:>10.3} {:>12} {:>12.0} {:>9}",
            policy.name(),
            nodes,
            cache_name(cache),
            wall_s,
            cell.events,
            cell.events as f64 / wall_s.max(1e-9),
            cell.peak_fel
        );
        results.push(cell);
    }

    let wall_total: f64 = results.iter().map(|c| c.wall_s).sum();
    let events_total: u64 = results.iter().map(|c| c.events).sum();
    let peak_fel: usize = results.iter().map(|c| c.peak_fel).max().unwrap_or(0);
    let events_per_sec = events_total as f64 / wall_total.max(1e-9);
    println!(
        "\ntotal: {events_total} events in {wall_total:.2}s = {events_per_sec:.0} events/s \
         (peak FEL depth {peak_fel})"
    );

    let path = json_path();
    let old = std::fs::read_to_string(&path).ok();
    let committed_eps = old
        .as_deref()
        .and_then(|j| extract_json_num(j, "events_per_sec"));
    let baseline_eps = old
        .as_deref()
        .and_then(|j| extract_json_num(j, "baseline_events_per_sec"))
        .or(committed_eps)
        .unwrap_or(events_per_sec);
    println!(
        "baseline (pre-change): {baseline_eps:.0} events/s -> speedup {:.2}x",
        events_per_sec / baseline_eps.max(1e-9)
    );

    if check_mode {
        // Ratchet: the committed file must itself record the required
        // speedup over the seed baseline (machine-independent — both
        // numbers come from the same recorded run).
        let committed_baseline = old
            .as_deref()
            .and_then(|j| extract_json_num(j, "baseline_events_per_sec"));
        if let (Some(committed), Some(base)) = (committed_eps, committed_baseline) {
            let ratio = committed / base.max(1e-9);
            if ratio < MIN_SPEEDUP_VS_SEED {
                eprintln!(
                    "PERF RATCHET: committed BENCH_sim.json records only {ratio:.2}x over the \
                     seed baseline ({committed:.0} / {base:.0} events/s); the floor is \
                     {MIN_SPEEDUP_VS_SEED}x"
                );
                std::process::exit(1);
            }
            println!(
                "ratchet passed: committed speedup {ratio:.2}x >= {MIN_SPEEDUP_VS_SEED}x floor"
            );
        }
        match committed_eps {
            Some(committed) if events_per_sec * MAX_REGRESSION < committed => {
                eprintln!(
                    "PERF REGRESSION: {events_per_sec:.0} events/s is more than \
                     {MAX_REGRESSION}x below the committed {committed:.0} events/s"
                );
                std::process::exit(1);
            }
            Some(committed) => {
                println!(
                    "check passed: {events_per_sec:.0} events/s vs committed {committed:.0} \
                     events/s (threshold {MAX_REGRESSION}x)"
                );
            }
            None => {
                eprintln!(
                    "--check: no committed {} to compare against",
                    path.display()
                );
                std::process::exit(1);
            }
        }
        return;
    }

    let json = render_json(
        &results,
        events_per_sec,
        events_total,
        wall_total,
        peak_fel,
        baseline_eps,
    );
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn cache_name(cache: CachePolicy) -> &'static str {
    match cache {
        CachePolicy::Lru => "lru",
        CachePolicy::GreedyDualSize => "gds",
    }
}

fn render_json(
    cells: &[CellResult],
    events_per_sec: f64,
    events_total: u64,
    wall_total: f64,
    peak_fel: usize,
    baseline_eps: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(
        out,
        "  \"workload\": \"calgary (Table 2 population) x nodes[4,8,16] x \
         [l2s,lard,traditional] lru + [l2s,traditional]@8 gds, 150k requests/cell, \
         warm-up on, sequential single-thread\","
    );
    let _ = writeln!(out, "  \"events_per_sec\": {events_per_sec:.1},");
    let _ = writeln!(out, "  \"events_total\": {events_total},");
    let _ = writeln!(out, "  \"wall_s_total\": {wall_total:.3},");
    let _ = writeln!(out, "  \"peak_fel_depth\": {peak_fel},");
    let _ = writeln!(out, "  \"baseline_events_per_sec\": {baseline_eps:.1},");
    let _ = writeln!(
        out,
        "  \"speedup_vs_baseline\": {:.3},",
        events_per_sec / baseline_eps.max(1e-9)
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"policy\": \"{}\", \"nodes\": {}, \"cache\": \"{}\", \
             \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.1}, \
             \"peak_fel_depth\": {}}}",
            c.policy.name(),
            c.nodes,
            cache_name(c.cache),
            c.wall_s,
            c.events,
            c.events as f64 / c.wall_s.max(1e-9),
            c.peak_fel
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
