//! Figures 5 and 6: the throughput increase due to locality — the ratio
//! of the Figure 4 surface to the Figure 3 surface, plus its side view
//! (per-hit-rate maximum over file sizes).

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig05_throughput_increase::run);
}
