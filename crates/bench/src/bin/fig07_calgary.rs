//! Figure 7: throughput vs cluster size for the Calgary trace.
fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig07_calgary);
}
