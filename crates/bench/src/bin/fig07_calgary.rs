//! Figure 7: throughput vs cluster size for the Calgary trace.
fn main() {
    l2s_bench::run_paper_figure("fig07_calgary", &l2s_trace::TraceSpec::calgary());
}
