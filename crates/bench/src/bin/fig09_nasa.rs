//! Figure 9: throughput vs cluster size for the NASA trace.
fn main() {
    l2s_bench::run_paper_figure("fig09_nasa", &l2s_trace::TraceSpec::nasa());
}
