//! Figure 9: throughput vs cluster size for the NASA trace.
fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig09_nasa);
}
