//! Replay parity (X10): the `l2s-replay` fast path and the DES engine
//! must place every request of every Table 2 trace identically; the CSV
//! pins each placement stream's checksum.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_replay::run);
}
