//! Substrate ablation: the distributed file system. The paper's cluster
//! (Section 2) shares all disks through a DFS but charges misses a
//! single local-disk rate `µd`; this experiment compares that local-read
//! assumption against an explicit remote-home DFS where a miss fetches
//! the file from its home node's disk across the network.
//!
//! Locality-conscious servers are barely affected (their miss rates are
//! tiny, and a file's server set gravitates to wherever it was first
//! requested, not its disk home), while the traditional server — paying
//! the DFS on every one of its many misses — loses noticeably.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_dfs::run);
}
