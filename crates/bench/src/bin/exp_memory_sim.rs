//! Section 5.2 memory study (simulation): growing the caches from 32 MB
//! to 128 MB helps the traditional server tremendously (its hit rate is
//! the direct beneficiary), barely moves LARD and L2S (their miss rates
//! are already low), and never lifts LARD past its front-end ceiling —
//! so traditional can overtake LARD at large memories and cluster sizes.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_memory_sim::run);
}
