//! Extension study: persistent (HTTP/1.1-style) connections, which the
//! paper's Section 4 says its algorithms handle "by slightly modifying"
//! them. Sweeps the mean connection length for L2S and LARD.
//!
//! The adaptation follows Aron et al. (USENIX '99): a continuation
//! request is served by the connection's current holder when the holder
//! belongs to the file's server set (and, for L2S, is not overloaded);
//! otherwise the normal algorithm runs and the connection migrates with
//! the hand-off. The headline effect is LARD's: continuation requests
//! never visit the front-end, so persistent connections dissolve its
//! per-request bottleneck — while the already-decentralized L2S is
//! essentially insensitive.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_persistent::run);
}
