//! Figure 3: model throughput of a locality-oblivious server over the
//! (hit rate, average file size) plane, 16 nodes, 128 MB memories.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig03_oblivious_surface::run);
}
