//! Figure 8: throughput vs cluster size for the Clarknet trace.
fn main() {
    l2s_bench::run_paper_figure("fig08_clarknet", &l2s_trace::TraceSpec::clarknet());
}
