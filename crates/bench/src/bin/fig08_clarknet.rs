//! Figure 8: throughput vs cluster size for the Clarknet trace.
fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig08_clarknet);
}
