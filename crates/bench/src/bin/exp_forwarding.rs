//! Section 5.2 forwarding study: the fraction of requests handed off
//! between nodes. LARD forwards 100 % by construction; the paper reports
//! L2S forwarding at least ~15 % fewer requests up to 4 nodes and ~8–25 %
//! fewer at 16 nodes depending on the trace.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_forwarding::run);
}
