//! Dispatcher × heterogeneity surface (X8): the paper's three servers
//! plus JSQ(2), join-idle-queue, and a SITA size splitter on uniform,
//! mild, and extreme hardware mixes over every Table 2 trace, validated
//! against the heterogeneous closed-form bound.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_hetero::run);
}
