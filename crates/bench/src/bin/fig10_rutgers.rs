//! Figure 10: throughput vs cluster size for the Rutgers trace.
fn main() {
    l2s_bench::run_paper_figure("fig10_rutgers", &l2s_trace::TraceSpec::rutgers());
}
