//! Figure 10: throughput vs cluster size for the Rutgers trace.
fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig10_rutgers);
}
