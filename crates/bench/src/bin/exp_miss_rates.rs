//! Section 5.2 miss-rate study: aggregate cache miss rates per system
//! and cluster size for all four traces. The paper observes L2S with the
//! lowest miss rates at small clusters, with LARD catching up (or edging
//! ahead) at 16 nodes as its wasted front-end cache becomes a smaller
//! fraction of the total.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_miss_rates::run);
}
