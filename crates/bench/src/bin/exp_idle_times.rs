//! Section 5.2 idle-time study: mean CPU idle fraction of the serving
//! nodes per system and cluster size. The paper observes traditional
//! idle times roughly constant in cluster size, LARD improving up to
//! 8–12 nodes then worsening as the front-end bottlenecks, and L2S
//! steadily approaching full utilization.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_idle_times::run);
}
