//! Section 3.2 replication study: a small replicated fraction (the
//! paper settles on 15 %) cuts the forwarded fraction `Q` sharply while
//! giving up little aggregate cache capacity.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_replication::run);
}
