//! Table 2: characteristics of the four WWW traces — the paper's values
//! next to what the synthetic generator actually produces.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::table2_traces::run);
}
