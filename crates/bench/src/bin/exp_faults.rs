//! Fault tolerance (X6): two of eight nodes crash mid-run and reboot
//! cold; stranded requests retry through the router. Compares degraded-
//! mode and post-recovery throughput of the three servers on every
//! Table 2 trace.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::exp_faults::run);
}
