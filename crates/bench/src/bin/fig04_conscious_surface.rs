//! Figure 4: model throughput of a locality-conscious server (R = 0)
//! over the (hit rate, average file size) plane, 16 nodes, 128 MB
//! memories.

fn main() {
    l2s_bench::run_experiment(l2s_bench::experiments::fig04_conscious_surface::run);
}
