//! Open-loop validation and an open-loop finding.
//!
//! **Part 1 — engine vs model.** The traditional server under Poisson
//! arrivals is a textbook open network: we calibrate the model's hit
//! rate to the simulator's measured miss rate and compare mean response
//! times across offered loads. The simulator's service times are
//! deterministic (M/D/1-ish), so its queueing delay should sit at or
//! below the exponential model's, diverging at the same asymptote.
//!
//! **Part 2 — L2S under open loop.** The paper evaluates throughput in
//! a closed loop ("inject as fast as the buffers accept"). Open-loop
//! L2S exposes a fragility that methodology never probes: a transient
//! burst pushes nodes past `T`, threshold replication balloons the
//! server sets, duplicated caches push the miss rate toward the
//! locality-oblivious regime, capacity falls below the offered rate,
//! and the collapse locks in. With admission control (the closed loop)
//! the same configuration sustains more than twice the load.

use crate::{paper_trace, run_cells_parallel};
use l2s::PolicyKind;
use l2s_model::{Derived, ModelParams, QueueModel};
use l2s_sim::{simulate, ArrivalMode, SimConfig};
use l2s_trace::{TraceSpec, TraceStats};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let spec = TraceSpec::calgary();
    let trace = paper_trace(&spec);
    let stats = TraceStats::compute(&trace);
    let nodes = 8;

    // Calibrate: measure both servers' closed-loop behavior (traditional
    // for the model's hit rate, L2S for Part 2's capacity reference) —
    // two independent simulations, run in parallel.
    let mut closed = SimConfig::paper_default(nodes);
    closed.max_requests = Some(100_000);
    let calibration = run_cells_parallel(2, |i| {
        let kind = [PolicyKind::Traditional, PolicyKind::L2s][i];
        simulate(&closed, kind, &trace)
    });
    let (baseline, l2s_closed) = (&calibration[0], &calibration[1]);
    let derived = Derived {
        hit_rate: 1.0 - baseline.miss_rate,
        replicated_hit: 0.0,
        forward_fraction: 0.0,
    };
    let params = ModelParams {
        nodes,
        avg_file_kb: stats.avg_request_kb,
        ..ModelParams::default()
    };
    let model = QueueModel::new(params)?;
    let bound = model.max_throughput_derived(&derived);
    println!(
        "Part 1: traditional server, {nodes} nodes, hit rate calibrated to {:.1}%",
        derived.hit_rate * 100.0
    );
    println!(
        "model bound {bound:.0} r/s, closed-loop simulated capacity {:.0} r/s\n",
        baseline.throughput_rps
    );
    println!(
        "{:>10} {:>12} {:>16} {:>16}",
        "load", "rate (r/s)", "sim mean (ms)", "model mean (ms)"
    );

    let mut table = CsvTable::new(["server", "load_fraction", "rate_rps", "sim_ms", "model_ms"]);
    let part1_loads = [0.2, 0.4, 0.6, 0.8, 0.9];
    let part1 = run_cells_parallel(part1_loads.len(), |i| {
        let mut cfg = SimConfig::paper_default(nodes);
        cfg.arrivals = ArrivalMode::Poisson {
            rate_rps: bound * part1_loads[i],
        };
        cfg.max_requests = Some(80_000);
        simulate(&cfg, PolicyKind::Traditional, &trace)
    });
    for (load, report) in part1_loads.into_iter().zip(&part1) {
        let rate = bound * load;
        let model_ms = model
            .solve_derived(&derived, rate)
            .map(|s| s.response_s * 1e3)
            .unwrap_or(f64::NAN);
        let sim_ms = report.mean_response_s * 1e3;
        println!("{load:>10.1} {rate:>12.0} {sim_ms:>16.2} {model_ms:>16.2}");
        table.row([
            "traditional".into(),
            format!("{load:.2}"),
            format!("{rate:.1}"),
            format!("{sim_ms:.3}"),
            format!("{model_ms:.3}"),
        ]);
    }

    // Part 2: L2S open-loop stability sweep against its closed-loop
    // capacity (measured during calibration above).
    println!(
        "\nPart 2: L2S under open loop ({} r/s closed-loop capacity at {nodes} nodes)",
        l2s_closed.throughput_rps.round()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>10}",
        "load", "rate (r/s)", "thr (r/s)", "mean resp", "miss"
    );
    let part2_loads = [0.2, 0.4, 0.6, 0.8];
    let part2 = run_cells_parallel(part2_loads.len(), |i| {
        let mut cfg = SimConfig::paper_default(nodes);
        cfg.arrivals = ArrivalMode::Poisson {
            rate_rps: l2s_closed.throughput_rps * part2_loads[i],
        };
        cfg.max_requests = Some(80_000);
        simulate(&cfg, PolicyKind::L2s, &trace)
    });
    for (load, report) in part2_loads.into_iter().zip(&part2) {
        let rate = l2s_closed.throughput_rps * load;
        let stable = report.mean_response_s < 0.5;
        println!(
            "{load:>10.1} {rate:>12.0} {:>12.0} {:>11.1} ms {:>9.1}%{}",
            report.throughput_rps,
            report.mean_response_s * 1e3,
            report.miss_rate * 100.0,
            if stable { "" } else { "   <- collapsed" }
        );
        table.row([
            "l2s".into(),
            format!("{load:.2}"),
            format!("{rate:.1}"),
            format!("{:.3}", report.mean_response_s * 1e3),
            String::new(),
        ]);
    }

    let path = results_dir().join("exp_latency_curve.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(Part 1 expected: simulated and modeled curves grow convexly together, sim at \
         or below the\n exponential model. Part 2 expected: L2S tracks offered load at \
         low rates, then collapses via\n the replication-overload feedback loop well \
         below its closed-loop capacity — threshold-based\n replication needs admission \
         control, a finding the paper's closed-loop methodology cannot see.)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
