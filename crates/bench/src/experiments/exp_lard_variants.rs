//! Ablation: the LARD family against L2S. Compares
//!
//! * **lard** — LARD/R with the dedicated front-end (the paper's
//!   comparison target),
//! * **lard-basic** — LARD without replication (overload *moves* a
//!   file's server; Pai et al.'s simpler algorithm),
//! * **lard-dispatcher** — the improved organization of Aron et al.
//!   (USENIX 2000) discussed in the paper's Section 6: connections are
//!   accepted by every serving node, which queries a dedicated
//!   dispatcher (two-way message) and hands off itself,
//! * **l2s** — the paper's fully distributed design.
//!
//! Expected shape (Section 6): the dispatcher organization pushes the
//! saturation point well past the classic front-end, but still wastes a
//! node, still has a central point of failure, and pays a two-way
//! message per request — L2S should match or beat it.

use crate::{paper_config, paper_trace, sweep, PAPER_NODE_COUNTS};
use l2s::PolicyKind;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let policies = [
        PolicyKind::Lard,
        PolicyKind::LardBasic,
        PolicyKind::LardDispatcher,
        PolicyKind::L2s,
    ];
    let mut table = CsvTable::new(["trace", "nodes", "policy", "throughput_rps", "miss_rate"]);
    for spec in [TraceSpec::calgary(), TraceSpec::clarknet()] {
        let trace = paper_trace(&spec);
        let cells = sweep(&trace, &PAPER_NODE_COUNTS, &policies, paper_config);
        println!("\n{} trace — throughput (requests/s):", spec.name);
        println!(
            "{:>6} {:>10} {:>11} {:>16} {:>10}",
            "nodes", "lard", "lard-basic", "lard-dispatcher", "l2s"
        );
        for &n in &PAPER_NODE_COUNTS {
            let get = |p: PolicyKind| {
                cells
                    .iter()
                    .find(|c| c.nodes == n && c.policy == p)
                    .map(|c| (c.report.throughput_rps, c.report.miss_rate))
                    .unwrap_or((f64::NAN, f64::NAN))
            };
            let rows: Vec<(PolicyKind, (f64, f64))> =
                policies.iter().map(|&p| (p, get(p))).collect();
            println!(
                "{n:>6} {:>10.0} {:>11.0} {:>16.0} {:>10.0}",
                rows[0].1 .0, rows[1].1 .0, rows[2].1 .0, rows[3].1 .0
            );
            for (p, (thr, miss)) in rows {
                table.row([
                    spec.name.clone(),
                    n.to_string(),
                    p.name().to_string(),
                    format!("{thr:.1}"),
                    format!("{miss:.5}"),
                ]);
            }
        }
    }
    let path = results_dir().join("exp_lard_variants.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(expected: lard-basic <= lard (replication helps hot files); lard-dispatcher \
         breaks the ~4k r/s\n front-end ceiling but keeps a wasted node and per-request \
         round trip; l2s stays on top)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
