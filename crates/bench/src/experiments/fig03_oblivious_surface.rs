//! Figure 3: model throughput of a locality-oblivious server over the
//! (hit rate, average file size) plane, 16 nodes, 128 MB memories.

use l2s_model::{default_axes, throughput_surface, ModelParams, ServerKind};
use l2s_util::ascii::heat_map;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let (hits, sizes) = default_axes(25, 16);
    let base = ModelParams::default();
    let surface = throughput_surface(&base, ServerKind::LocalityOblivious, &hits, &sizes);

    let mut table = CsvTable::new(["hit_rate", "avg_size_kb", "throughput_rps"]);
    for (i, &h) in hits.iter().enumerate() {
        for (j, &s) in sizes.iter().enumerate() {
            // Invalid sweep points write an explicit `none` cell.
            table.row([
                format!("{h:.6}"),
                format!("{s:.6}"),
                surface.values[i][j].map_or_else(|| "none".to_string(), |v| format!("{v:.6}")),
            ]);
        }
    }
    let path = results_dir().join("fig03_oblivious_surface.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;

    let labels: Vec<String> = hits.iter().map(|h| format!("hit {h:.2}")).collect();
    println!(
        "{}",
        heat_map(
            "Figure 3: locality-oblivious throughput (reqs/s), rows = hit rate, cols = 4..128 KB",
            &surface.values_or_nan(),
            &labels,
            "avg file size (4 KB left .. 128 KB right)",
        )
    );
    let (peak, at_hit, at_size) = surface.peak();
    println!("peak throughput: {peak:.0} reqs/s at hit rate {at_hit:.2}, {at_size:.0} KB files");
    println!("(paper: ~2.5e4 reqs/s, significant only above ~80% hit rate and below ~64 KB)");
    println!("CSV: {}", path.display());
    Ok(())
}
