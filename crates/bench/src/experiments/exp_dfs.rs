//! Substrate ablation: the distributed file system. The paper's cluster
//! (Section 2) shares all disks through a DFS but charges misses a
//! single local-disk rate `µd`; this experiment compares that local-read
//! assumption against an explicit remote-home DFS where a miss fetches
//! the file from its home node's disk across the network.
//!
//! Locality-conscious servers are barely affected (their miss rates are
//! tiny, and a file's server set gravitates to wherever it was first
//! requested, not its disk home), while the traditional server — paying
//! the DFS on every one of its many misses — loses noticeably.

use crate::{paper_config, paper_trace, run_cells_parallel};
use l2s::PolicyKind;
use l2s_sim::simulate;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let spec = TraceSpec::rutgers();
    let trace = paper_trace(&spec);
    let mut table = CsvTable::new(["policy", "nodes", "dfs", "throughput_rps", "miss_rate"]);

    // 18 cells (nodes × policy × dfs mode) simulated in parallel over the
    // one shared trace; printing walks the index-ordered results so the
    // output matches the sequential nesting exactly.
    let node_counts = [4usize, 8, 16];
    let policies = [PolicyKind::Traditional, PolicyKind::Lard, PolicyKind::L2s];
    let cells: Vec<(usize, PolicyKind, bool)> = node_counts
        .iter()
        .flat_map(|&n| {
            policies.iter().flat_map(move |&kind| {
                [false, true]
                    .into_iter()
                    .map(move |remote| (n, kind, remote))
            })
        })
        .collect();
    let reports = run_cells_parallel(cells.len(), |i| {
        let (nodes, kind, remote) = cells[i];
        let mut cfg = paper_config(nodes);
        cfg.dfs_remote = remote;
        simulate(&cfg, kind, &trace)
    });

    // Each consecutive pair of cells is one (nodes, policy) row: local
    // mode then remote mode.
    for (row, pair) in reports.chunks(2).enumerate() {
        let (nodes, kind, _) = cells[row * 2];
        if row % policies.len() == 0 {
            println!("\n{} trace, {nodes} nodes — throughput (r/s):", spec.name);
            println!(
                "{:>14} {:>12} {:>12} {:>8}",
                "policy", "local disk", "remote DFS", "loss"
            );
        }
        let (lr, rr) = (&pair[0], &pair[1]);
        println!(
            "{:>14} {:>12.0} {:>12.0} {:>7.1}%",
            kind.name(),
            lr.throughput_rps,
            rr.throughput_rps,
            (1.0 - rr.throughput_rps / lr.throughput_rps) * 100.0
        );
        for (mode, r) in [("local", lr), ("remote", rr)] {
            table.row([
                kind.name().to_string(),
                nodes.to_string(),
                mode.to_string(),
                format!("{:.1}", r.throughput_rps),
                format!("{:.5}", r.miss_rate),
            ]);
        }
    }

    let path = results_dir().join("exp_dfs.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(the paper's single-µd charge is a good approximation precisely for the \
         locality-conscious\n servers it advocates; the traditional server's miss volume \
         makes the DFS boundary visible)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
