//! Non-stationary workloads (X9): the modulation engine as a *checked
//! instrument*, then the dispatcher zoo under drift and flash crowds.
//!
//! **Part A — model validation.** Each scenario composes a
//! `WorkloadMod` (diurnal rate swings, working-set drift, flash crowds,
//! and their combination) over a pure-IRM synthetic stream (`temporal =
//! 0`, so the per-request law is exactly the Zipf draw the analytic
//! model assumes), replays the modulated stream through a single cold
//! LRU [`FileCache`], and compares the measured miss rate against the
//! Olmos–Graham–Simonian style estimate from `crates/model`
//! ([`lru_miss_rate`]). The run *fails* if any scenario leaves the
//! stated tolerance band — the generator and the estimator must agree
//! on the process they describe.
//!
//! **Part B — policy degradation.** Every dispatcher (the paper's
//! traditional/LARD/L2S plus round-robin, JSQ(2), JIQ, and SITA) runs
//! the same trace stationary, under working-set drift, and under a
//! flash crowd, at the paper's closed-loop methodology. The emitted
//! table carries per-policy throughput/p99/miss per scenario and the
//! throughput degradation relative to that policy's own stationary
//! run — the headline question being which dispatcher's ranking
//! survives non-stationarity (Yildiz et al.'s "Dispatching Odyssey"
//! observation that rankings flip exactly here).

use crate::{paper_config, paper_trace, request_cap, run_cells_parallel};
use l2s::PolicyKind;
use l2s_cluster::{CachePolicy, FileCache};
use l2s_model::{lru_miss_rate, NonStatLruSpec};
use l2s_sim::{
    simulate, DriftSpec, FlashCrowd, ModulatedWorkload, RateSchedule, SimReport, SynthWorkload,
    Workload, WorkloadMod,
};
use l2s_trace::TraceSpec;
use l2s_util::cast;
use l2s_util::csv::{results_dir, CsvTable};

/// Cluster size for Part B (Table 2's mid-size point, matching X6/X8).
const NODES: usize = 8;

/// Every dispatcher in the degradation comparison.
pub const DISPATCHERS: [PolicyKind; 7] = [
    PolicyKind::Traditional,
    PolicyKind::RoundRobin,
    PolicyKind::Lard,
    PolicyKind::L2s,
    PolicyKind::Jsq,
    PolicyKind::Jiq,
    PolicyKind::Sita,
];

/// One Part A validation scenario: a modulation over the IRM stream.
struct Scenario {
    name: &'static str,
    modulation: WorkloadMod,
    /// Total request intensity λ(t) handed to the model; `None` means
    /// the fluid 1 request/s clock (so λ ≡ 1 and the horizon is the
    /// request count).
    schedule: Option<RateSchedule>,
}

/// Part A file population (kept moderate: the estimator's fixed point
/// is O(grid · bisect · quad · files) per scenario).
const MODEL_FILES: usize = 1_000;

/// Part A evaluation-grid density.
const MODEL_GRID: usize = 32;
/// Quadrature points per characteristic-window integral.
const MODEL_QUAD: usize = 6;

/// Working-set drift rotating an eighth of the run per epoch, with the
/// epoch expressed on the scenario's own clock (`horizon_s` = total run
/// length on that clock).
fn model_drift(horizon_s: f64) -> DriftSpec {
    DriftSpec {
        period_s: horizon_s / 8.0,
        step: cast::index_u32(MODEL_FILES / 6),
    }
}

/// Two overlapping-free flash crowds placed at fixed fractions of the
/// scenario's clock, so they fire identically whether the clock is
/// request-indexed (fluid) or real seconds under a rate schedule.
fn model_crowds(horizon_s: f64) -> Vec<FlashCrowd> {
    vec![
        FlashCrowd {
            start_s: 0.20 * horizon_s,
            ramp_s: 0.05 * horizon_s,
            hold_s: 0.20 * horizon_s,
            decay_s: 0.10 * horizon_s,
            peak_weight: 0.45,
            hot_files: 12,
            first_id: 0,
        },
        FlashCrowd {
            start_s: 0.55 * horizon_s,
            ramp_s: 0.02 * horizon_s,
            hold_s: 0.15 * horizon_s,
            decay_s: 0.05 * horizon_s,
            peak_weight: 0.35,
            hot_files: 6,
            first_id: 500,
        },
    ]
}

/// Builds the Part A scenarios for a run of `n` requests. Drift epochs
/// and crowd windows are fractions of each scenario's expected run
/// length on its own clock: `n` request-seconds under the fluid clock,
/// `Λ⁻¹(n)` real seconds under the diurnal schedule (which compresses
/// `n` arrivals into `n / mean_rps` seconds).
fn scenarios(n: f64) -> Result<Vec<Scenario>, String> {
    let diurnal = RateSchedule::diurnal(200.0, 0.8, n / 800.0)?;
    let scheduled_horizon = diurnal.invert(n);
    Ok(vec![
        Scenario {
            name: "diurnal",
            modulation: WorkloadMod {
                rate: Some(diurnal.clone()),
                ..WorkloadMod::none()
            },
            schedule: Some(diurnal.clone()),
        },
        Scenario {
            name: "drift",
            modulation: WorkloadMod {
                drift: Some(model_drift(n)),
                ..WorkloadMod::none()
            },
            schedule: None,
        },
        Scenario {
            name: "flash",
            modulation: WorkloadMod {
                flash: model_crowds(n),
                ..WorkloadMod::none()
            },
            schedule: None,
        },
        Scenario {
            name: "combined",
            modulation: WorkloadMod {
                rate: Some(diurnal.clone()),
                flash: model_crowds(scheduled_horizon),
                drift: Some(model_drift(scheduled_horizon)),
            },
            schedule: Some(diurnal),
        },
    ])
}

/// Replays the modulated stream through one cold LRU cache and returns
/// the measured miss rate.
fn replay_miss_rate(spec: &TraceSpec, modulation: &WorkloadMod, cache_kb: f64) -> f64 {
    let mut base = SynthWorkload::new(spec, 42);
    let files = base.files().clone();
    let mut w = ModulatedWorkload::new(&mut base, modulation.clone(), 42);
    let mut cache = FileCache::new(CachePolicy::Lru, cache_kb);
    let mut requests: u64 = 0;
    let mut misses: u64 = 0;
    while let Some(file) = w.next_file() {
        requests += 1;
        if !cache.touch(file) {
            misses += 1;
            cache.insert(file, files.size_kb(file));
        }
    }
    cast::exact_f64(misses) / cast::exact_f64(requests.max(1))
}

/// Part A: validate measured LRU miss rates against the analytic
/// estimate on every scenario; rows go to `table`, errors abort.
fn validate_model(table: &mut CsvTable) -> Result<(), String> {
    let n = request_cap().unwrap_or(200_000).min(200_000);
    let nf = cast::len_f64(n);
    // Pure IRM: the temporal re-reference layer redraws from recent
    // requests, which the per-file Poisson assumption cannot see.
    let mut spec = TraceSpec::clarknet().scaled(MODEL_FILES, n);
    spec.temporal = 0.0;
    let (files, stream) = spec.stream(42);
    let base_probs = stream.probabilities_by_id();
    let sizes: Vec<f64> = files.iter().map(|(_, kb)| kb).collect();
    // A quarter of the population's bytes: small enough that capacity
    // misses dominate and the characteristic window is really exercised.
    let cache_kb = 0.25 * files.total_kb();
    // Short capped runs (CI smoke) are noisier and transient-heavy;
    // full-scale runs hold the tight band.
    let tolerance = if n >= 50_000 { 0.06 } else { 0.12 };

    println!(
        "Part A: analytic LRU validation — {MODEL_FILES} files, {n} requests, \
         cache {:.0} KB, tolerance ±{tolerance}",
        cache_kb
    );
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>9}",
        "scenario", "measured", "model", "abs_err", "verdict"
    );

    for sc in scenarios(nf)? {
        let measured = replay_miss_rate(&spec, &sc.modulation, cache_kb);
        let horizon_s = match &sc.schedule {
            // Expected time for the schedule to accumulate n arrivals.
            Some(s) => s.invert(nf),
            None => nf,
        };
        let model_spec = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb,
            horizon_s,
            grid: MODEL_GRID,
            quad: MODEL_QUAD,
        };
        let modulation = &sc.modulation;
        let rate = |t: f64| match &sc.schedule {
            Some(s) => s.rate_at(t),
            None => 1.0,
        };
        let prob = |t: f64, f: usize| modulation.prob_at(&base_probs, t, f);
        let model = lru_miss_rate(&model_spec, rate, prob)
            .ok_or_else(|| format!("{}: estimator returned no miss rate", sc.name))?;
        let err = (measured - model).abs();
        let ok = err <= tolerance;
        println!(
            "{:>10} {:>10.4} {:>9.4} {:>9.4} {:>9}",
            sc.name,
            measured,
            model,
            err,
            if ok { "ok" } else { "OUTSIDE" }
        );
        table.row([
            sc.name.to_string(),
            format!("{n}"),
            format!("{cache_kb:.1}"),
            format!("{measured:.5}"),
            format!("{model:.5}"),
            format!("{err:.5}"),
            format!("{tolerance:.2}"),
        ]);
        if !ok {
            return Err(format!(
                "{}: measured miss rate {measured:.4} is outside the model's \
                 ±{tolerance} band around {model:.4}",
                sc.name
            ));
        }
    }
    Ok(())
}

/// One Part B scenario: a modulation applied to the paper trace under
/// the closed loop (the fluid clock makes drift/flash periods request
/// counts).
fn degradation_scenarios(n: f64, files: u32) -> Vec<(&'static str, WorkloadMod)> {
    vec![
        ("stationary", WorkloadMod::none()),
        (
            "drift",
            WorkloadMod {
                drift: Some(DriftSpec {
                    period_s: n / 8.0,
                    step: files / 12,
                }),
                ..WorkloadMod::none()
            },
        ),
        (
            "flash",
            WorkloadMod {
                flash: vec![FlashCrowd {
                    start_s: 0.25 * n,
                    ramp_s: 0.05 * n,
                    hold_s: 0.35 * n,
                    decay_s: 0.10 * n,
                    peak_weight: 0.5,
                    hot_files: 8,
                    first_id: 0,
                }],
                ..WorkloadMod::none()
            },
        ),
    ]
}

/// Renders an optional p99 for the CSV: experiments continue PR 7's
/// silent-NaN sweep by writing `none` instead of a fake number.
fn render_p99(p99: Option<f64>) -> String {
    p99.map_or_else(|| "none".to_string(), |v| format!("{v:.6}"))
}

/// Runs the experiment; errors are validation or I/O failures.
pub fn run() -> Result<(), String> {
    let mut model_table = CsvTable::new([
        "scenario",
        "requests",
        "cache_kb",
        "measured_miss",
        "model_miss",
        "abs_err",
        "tolerance",
    ]);
    validate_model(&mut model_table)?;
    let model_path = results_dir().join("exp_workload_model.csv");
    model_table
        .write_to(&model_path)
        .map_err(|e| format!("write {}: {e}", model_path.display()))?;

    // Part B: the dispatcher zoo under drift and flash crowds.
    let spec = TraceSpec::clarknet();
    let trace = paper_trace(&spec);
    let n = cast::len_f64(
        request_cap()
            .map(|c| c.min(trace.len()))
            .unwrap_or(trace.len()),
    );
    let scenarios = degradation_scenarios(n, cast::index_u32(trace.files().len()));

    let cells: Vec<(usize, PolicyKind)> = (0..scenarios.len())
        .flat_map(|s| DISPATCHERS.iter().map(move |&p| (s, p)))
        .collect();
    let reports: Vec<SimReport> = run_cells_parallel(cells.len(), |i| {
        let (s, kind) = cells[i];
        let mut cfg = paper_config(NODES);
        cfg.workload_mod = scenarios[s].1.clone();
        simulate(&cfg, kind, &trace)
    });

    let mut table = CsvTable::new([
        "scenario",
        "policy",
        "throughput_rps",
        "p99_s",
        "miss_rate",
        "degradation_pct",
    ]);
    let stationary_rps = |p: PolicyKind| -> Result<f64, String> {
        cells
            .iter()
            .position(|&(s, q)| s == 0 && q == p)
            .map(|i| reports[i].throughput_rps)
            .ok_or_else(|| {
                format!(
                    "no stationary (scenario 0) cell for policy {} — cell grid is incomplete",
                    p.name()
                )
            })
    };
    println!(
        "\nPart B: dispatcher degradation — {} trace, {NODES} nodes",
        spec.name
    );
    for (s, (name, _)) in scenarios.iter().enumerate() {
        println!(
            "\n{name} scenario:\n{:>14} {:>10} {:>10} {:>8} {:>12}",
            "policy", "rps", "p99_ms", "miss", "degradation"
        );
        for (i, &(cs, kind)) in cells.iter().enumerate() {
            if cs != s {
                continue;
            }
            let r = &reports[i];
            if !(r.throughput_rps.is_finite() && r.throughput_rps > 0.0) {
                return Err(format!(
                    "{name}/{}: degenerate throughput {}",
                    kind.name(),
                    r.throughput_rps
                ));
            }
            let degradation = (1.0 - r.throughput_rps / stationary_rps(kind)?) * 100.0;
            println!(
                "{:>14} {:>10.0} {:>10} {:>7.1}% {:>+11.1}%",
                kind.name(),
                r.throughput_rps,
                r.p99_response_s
                    .map_or_else(|| "none".to_string(), |v| format!("{:.1}", v * 1e3)),
                r.miss_rate * 100.0,
                degradation
            );
            table.row([
                name.to_string(),
                kind.name().to_string(),
                format!("{:.1}", r.throughput_rps),
                render_p99(r.p99_response_s),
                format!("{:.5}", r.miss_rate),
                format!("{degradation:.3}"),
            ]);
        }
        if s > 0 {
            // A policy missing from the cell grid used to degrade to
            // infinity silently (and an empty grid rendered "?"); both
            // now fail the run with the offending policy's name.
            let mut best: Option<(&'static str, f64)> = None;
            for p in DISPATCHERS {
                let i = cells
                    .iter()
                    .position(|&(cs, q)| cs == s && q == p)
                    .ok_or_else(|| format!("{name}: no simulated cell for policy {}", p.name()))?;
                let ds = 1.0 - reports[i].throughput_rps / stationary_rps(p)?;
                // Same tie-breaking as the Iterator::min_by this
                // replaces: the last of equally minimal elements wins.
                if best.is_none_or(|(_, b)| ds <= b) {
                    best = Some((p.name(), ds));
                }
            }
            let (best, _) = best.ok_or_else(|| format!("{name}: dispatcher set is empty"))?;
            println!("  least degraded under {name}: {best}");
        }
    }

    let path = results_dir().join("exp_workload.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(Part A holds the modulated generator to the analytic non-stationary LRU \
         estimate — the\n workload engine is a checked instrument, not just a knob. Part B's \
         degradation column is\n relative to each policy's own stationary throughput: drift \
         punishes remembered file→node\n mappings, flash crowds punish policies that cannot \
         spread a few suddenly-hot files)"
    );
    println!("CSV: {} and {}", path.display(), model_path.display());
    Ok(())
}
