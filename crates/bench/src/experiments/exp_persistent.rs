//! Extension study: persistent (HTTP/1.1-style) connections, which the
//! paper's Section 4 says its algorithms handle "by slightly modifying"
//! them. Sweeps the mean connection length for L2S and LARD.
//!
//! The adaptation follows Aron et al. (USENIX '99): a continuation
//! request is served by the connection's current holder when the holder
//! belongs to the file's server set (and, for L2S, is not overloaded);
//! otherwise the normal algorithm runs and the connection migrates with
//! the hand-off. The headline effect is LARD's: continuation requests
//! never visit the front-end, so persistent connections dissolve its
//! per-request bottleneck — while the already-decentralized L2S is
//! essentially insensitive.

use crate::{paper_config, paper_trace, run_cells_parallel};
use l2s::PolicyKind;
use l2s_sim::simulate;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let spec = TraceSpec::clarknet();
    let trace = paper_trace(&spec);
    let nodes = 16;
    let mut table = CsvTable::new([
        "policy",
        "mean_conn_len",
        "throughput_rps",
        "forwarded_fraction",
        "miss_rate",
    ]);

    // 10 cells (policy × mean connection length) simulated in parallel;
    // index-ordered results keep the printed tables byte-identical.
    let means = [1.0, 2.0, 4.0, 8.0, 16.0];
    let cells: Vec<(PolicyKind, f64)> = [PolicyKind::L2s, PolicyKind::Lard]
        .into_iter()
        .flat_map(|kind| means.into_iter().map(move |mean| (kind, mean)))
        .collect();
    let reports = run_cells_parallel(cells.len(), |i| {
        let (kind, mean) = cells[i];
        let mut cfg = paper_config(nodes);
        cfg.persistent_mean = mean;
        simulate(&cfg, kind, &trace)
    });

    for ((kind, mean), r) in cells.iter().zip(&reports) {
        if (*mean - means[0]).abs() < f64::EPSILON {
            println!(
                "\n{} on the {} trace, {nodes} nodes:",
                kind.name(),
                spec.name
            );
            println!(
                "{:>14} {:>12} {:>11} {:>10}",
                "conn length", "throughput", "forwarded", "miss"
            );
        }
        println!(
            "{mean:>14.0} {:>8.0} r/s {:>10.1}% {:>9.1}%",
            r.throughput_rps,
            r.forwarded_fraction * 100.0,
            r.miss_rate * 100.0
        );
        table.row([
            kind.name().to_string(),
            format!("{mean:.0}"),
            format!("{:.1}", r.throughput_rps),
            format!("{:.5}", r.forwarded_fraction),
            format!("{:.5}", r.miss_rate),
        ]);
    }

    let path = results_dir().join("exp_persistent.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(expected: LARD's throughput climbs steeply with connection length as its \
         front-end ceiling\n dissolves — the Aron et al. P-HTTP result — while L2S, \
         already front-end-free, barely moves\n and stays on top)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
