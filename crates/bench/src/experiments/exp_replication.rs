//! Section 3.2 replication study: a small replicated fraction (the
//! paper settles on 15 %) cuts the forwarded fraction `Q` sharply while
//! giving up little aggregate cache capacity.

use crate::run_cells_parallel;
use l2s_model::{Derived, ModelParams, QueueModel, ServerKind};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let replications = [0.0, 0.05, 0.10, 0.15, 0.25, 0.50, 1.0];
    let hlos = [0.3, 0.6, 0.8];
    let mut table = CsvTable::new([
        "replication",
        "hlo",
        "hit_rate",
        "replicated_hit",
        "forward_fraction",
        "max_throughput_rps",
    ]);

    // 21 model cells (hlo × replication) evaluated in parallel; the
    // index-ordered results reproduce the sequential nested loop exactly.
    let cells: Vec<(f64, f64)> = hlos
        .into_iter()
        .flat_map(|hlo| replications.into_iter().map(move |r| (hlo, r)))
        .collect();
    let results: Vec<Result<(Derived, f64), String>> = run_cells_parallel(cells.len(), |i| {
        let (hlo, r) = cells[i];
        let params = ModelParams {
            replication: r,
            ..ModelParams::default()
        };
        let model = QueueModel::new(params)?;
        let d = model.derived_from_hlo(ServerKind::LocalityConscious, hlo);
        let x = model.max_throughput_derived(&d);
        Ok((d, x))
    });

    println!("Section 3.2 replication study (model, 16 nodes, default S = 16 KB):");
    for ((hlo, r), result) in cells.iter().zip(results) {
        if (*r - replications[0]).abs() < f64::EPSILON {
            println!("\n  locality-oblivious hit rate axis = {hlo:.1}:");
            println!(
                "  {:>5} {:>8} {:>8} {:>8} {:>12}",
                "R", "H_lc", "h", "Q", "bound (r/s)"
            );
        }
        let (d, x) = result?;
        table.row_f64([
            *r,
            *hlo,
            d.hit_rate,
            d.replicated_hit,
            d.forward_fraction,
            x,
        ]);
        println!(
            "  {:>5.2} {:>8.3} {:>8.3} {:>8.3} {:>12.0}",
            r, d.hit_rate, d.replicated_hit, d.forward_fraction, x
        );
    }

    let path = results_dir().join("exp_replication.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: ~15% replication robustly balances load and reduces forwarding \
         while barely denting the aggregate cache; R = 1 degenerates to the \
         locality-oblivious server)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
