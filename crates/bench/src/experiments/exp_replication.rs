//! Section 3.2 replication study: a small replicated fraction (the
//! paper settles on 15 %) cuts the forwarded fraction `Q` sharply while
//! giving up little aggregate cache capacity.

use l2s_model::{ModelParams, QueueModel, ServerKind};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let replications = [0.0, 0.05, 0.10, 0.15, 0.25, 0.50, 1.0];
    let mut table = CsvTable::new([
        "replication",
        "hlo",
        "hit_rate",
        "replicated_hit",
        "forward_fraction",
        "max_throughput_rps",
    ]);

    println!("Section 3.2 replication study (model, 16 nodes, default S = 16 KB):");
    for &hlo in &[0.3, 0.6, 0.8] {
        println!("\n  locality-oblivious hit rate axis = {hlo:.1}:");
        println!(
            "  {:>5} {:>8} {:>8} {:>8} {:>12}",
            "R", "H_lc", "h", "Q", "bound (r/s)"
        );
        for &r in &replications {
            let params = ModelParams {
                replication: r,
                ..ModelParams::default()
            };
            let model = QueueModel::new(params)?;
            let d = model.derived_from_hlo(ServerKind::LocalityConscious, hlo);
            let x = model.max_throughput_derived(&d);
            table.row_f64([r, hlo, d.hit_rate, d.replicated_hit, d.forward_fraction, x]);
            println!(
                "  {:>5.2} {:>8.3} {:>8.3} {:>8.3} {:>12.0}",
                r, d.hit_rate, d.replicated_hit, d.forward_fraction, x
            );
        }
    }

    let path = results_dir().join("exp_replication.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: ~15% replication robustly balances load and reduces forwarding \
         while barely denting the aggregate cache; R = 1 degenerates to the \
         locality-oblivious server)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
