//! Section 3.2 memory study: how the peak locality gain shrinks as
//! per-node memory grows from 128 MB to 512 MB (paper: from ~7x to
//! ~6.5x).

use l2s_model::{default_axes, memory_sweep, ModelParams};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let (hits, sizes) = default_axes(25, 16);
    let base = ModelParams::default();
    let mb = 1024.0;
    let caches = [128.0 * mb, 192.0 * mb, 256.0 * mb, 384.0 * mb, 512.0 * mb];
    let sweep = memory_sweep(&base, &caches, &hits, &sizes);

    let mut table = CsvTable::new(["cache_mb", "peak_throughput_increase"]);
    println!("Section 3.2 memory study (model, 16 nodes):");
    println!("{:>10} {:>22}", "memory", "peak locality gain");
    for &(kb, gain) in &sweep {
        table.row_f64([kb / mb, gain]);
        println!("{:>7.0} MB {gain:>21.2}x", kb / mb);
    }
    let path = results_dir().join("exp_memory_sweep.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;

    let (Some(first), Some(last)) = (sweep.first(), sweep.last()) else {
        return Err("memory sweep produced no rows".into());
    };
    let (first, last) = (first.1, last.1);
    println!(
        "\ngain at 128 MB = {first:.2}x, at 512 MB = {last:.2}x \
         (paper: ~7x and ~6.5x — larger memories shrink the benefit everywhere, \
         but it stays significant)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
