//! Section 5.2 sensitivity study (the results the paper summarizes from
//! its technical-report companion): L2S throughput under varied
//! broadcast threshold, messaging overhead, network latency, and network
//! bandwidth — plus ablations of the L2S design parameters `T`/`t`
//! called out in DESIGN.md. The paper's finding: L2S is "only slightly
//! affected by reasonable parameters" in all four dimensions.

use crate::{paper_config, paper_trace, request_cap, run_cells_parallel};
use l2s::PolicyKind;
use l2s_sim::{simulate, SimConfig};
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

fn l2s_rps(cfg: &SimConfig, trace: &l2s_trace::Trace) -> f64 {
    simulate(cfg, PolicyKind::L2s, trace).throughput_rps
}

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let spec = TraceSpec::calgary();
    let trace = paper_trace(&spec);
    let nodes = 16;
    let base_cfg = paper_config(nodes);

    // Enumerate every knob cell up front; config construction stays
    // sequential because the network scalings can fail. The baseline and
    // all 20 knob cells then simulate as one parallel batch, and the
    // report below walks the index-ordered results so the output matches
    // the sequential knob-by-knob loops byte for byte.
    let mut cells: Vec<(&str, String, SimConfig)> = Vec::new();

    // Broadcast threshold (paper default 4).
    for delta in [1u32, 2, 4, 8, 16] {
        let mut cfg = base_cfg.clone();
        cfg.l2s.broadcast_delta = delta;
        cells.push(("broadcast threshold", delta.to_string(), cfg));
    }

    // Messaging overhead scaling (CPU + NI per-message costs).
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let mut cfg = base_cfg.clone();
        cfg.costs.msg_cpu_s *= scale;
        cfg.costs.msg_ni_s *= scale;
        cells.push(("message overhead x", format!("{scale}"), cfg));
    }

    // Network switch latency scaling.
    for scale in [1.0, 10.0, 100.0] {
        let mut cfg = base_cfg.clone();
        cfg.net = cfg.net.scale_latency(scale)?;
        cells.push(("switch latency x", format!("{scale}"), cfg));
    }

    // Link/NI bandwidth scaling.
    for scale in [0.25, 0.5, 1.0, 2.0] {
        let mut cfg = base_cfg.clone();
        cfg.net = cfg.net.scale_bandwidth(scale)?;
        cfg.costs.ni_out_kb_per_s *= scale;
        cells.push(("network bandwidth x", format!("{scale}"), cfg));
    }

    // Ablation: the L2S thresholds themselves.
    for (t_high, t_low) in [(10u32, 5u32), (20, 10), (40, 20), (80, 40)] {
        let mut cfg = base_cfg.clone();
        cfg.l2s.t_high = t_high;
        cfg.l2s.t_low = t_low;
        cells.push(("thresholds T/t", format!("{t_high}/{t_low}"), cfg));
    }

    // Cell 0 is the unmodified baseline; cells 1.. are the knobs.
    let throughputs = run_cells_parallel(cells.len() + 1, |i| {
        let cfg = if i == 0 { &base_cfg } else { &cells[i - 1].2 };
        l2s_rps(cfg, &trace)
    });
    let base = throughputs[0];
    println!(
        "L2S sensitivity on the {} trace, {nodes} nodes (baseline {base:.0} r/s{}):\n",
        spec.name,
        if request_cap().is_some() {
            ", quick mode"
        } else {
            ""
        }
    );

    let mut table = CsvTable::new(["knob", "value", "throughput_rps", "relative"]);
    let mut last_knob = cells[0].0;
    for ((knob, value, _), &thr) in cells.iter().zip(&throughputs[1..]) {
        if *knob != last_knob {
            println!();
            last_knob = knob;
        }
        println!(
            "  {knob:>22} = {value:<8} -> {thr:>8.0} r/s ({:+.1}%)",
            (thr / base - 1.0) * 100.0
        );
        table.row([
            knob.to_string(),
            value.clone(),
            format!("{thr:.1}"),
            format!("{:.4}", thr / base),
        ]);
    }

    let path = results_dir().join("exp_sensitivity.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: L2S is only slightly affected by reasonable broadcast frequencies, \
         messaging overheads,\n and network latency/bandwidth; the largest sensitivity \
         is to severe bandwidth reduction)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
