//! Section 5.2 forwarding study: the fraction of requests handed off
//! between nodes. LARD forwards 100 % by construction; the paper reports
//! L2S forwarding at least ~15 % fewer requests up to 4 nodes and ~8–25 %
//! fewer at 16 nodes depending on the trace.

use crate::{paper_config, paper_trace, sweep, PAPER_NODE_COUNTS};
use l2s::PolicyKind;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let policies = [PolicyKind::L2s, PolicyKind::Lard];
    let mut table = CsvTable::new(["trace", "nodes", "policy", "forwarded_fraction"]);
    for spec in TraceSpec::paper_presets() {
        let trace = paper_trace(&spec);
        let cells = sweep(&trace, &PAPER_NODE_COUNTS, &policies, paper_config);
        println!("\n{} trace — forwarded requests (%):", spec.name);
        println!(
            "{:>6} {:>10} {:>10} {:>12}",
            "nodes", "l2s", "lard", "l2s saves"
        );
        for &n in &PAPER_NODE_COUNTS {
            let get = |p: PolicyKind| {
                cells
                    .iter()
                    .find(|c| c.nodes == n && c.policy == p)
                    .map(|c| c.report.forwarded_fraction)
                    .unwrap_or(f64::NAN)
            };
            let (l2s, lard) = (get(PolicyKind::L2s), get(PolicyKind::Lard));
            println!(
                "{n:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
                l2s * 100.0,
                lard * 100.0,
                (lard - l2s) * 100.0
            );
            for (p, v) in [(PolicyKind::L2s, l2s), (PolicyKind::Lard, lard)] {
                table.row([
                    spec.name.clone(),
                    n.to_string(),
                    p.name().to_string(),
                    format!("{v:.5}"),
                ]);
            }
        }
    }
    let path = results_dir().join("exp_forwarding.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: LARD forwards 100%; L2S forwards >=15% fewer up to 4 nodes and \
         ~8-25% fewer at 16 nodes)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
