//! Ablation: cache replacement policy. The paper's servers cache whole
//! files under LRU; GreedyDual-Size (Cao & Irani '97), which favors
//! small files, was the state of the art for WWW *proxy* caches. This
//! experiment swaps the per-node policy and reports the effect per
//! server organization.

use crate::{paper_config, paper_trace, run_cells_parallel};
use l2s::PolicyKind;
use l2s_cluster::CachePolicy;
use l2s_sim::simulate;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let mut table = CsvTable::new(["trace", "policy", "cache", "throughput_rps", "miss_rate"]);
    let nodes = 8;

    // Enumerate the full cell matrix up front, simulate in parallel, and
    // print from the index-ordered results — output is byte-identical to
    // the sequential triple loop for any worker count.
    let specs = [TraceSpec::calgary(), TraceSpec::clarknet()];
    let cells: Vec<(usize, PolicyKind, CachePolicy)> = specs
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            [PolicyKind::Traditional, PolicyKind::L2s]
                .into_iter()
                .flat_map(move |kind| {
                    [CachePolicy::Lru, CachePolicy::GreedyDualSize]
                        .into_iter()
                        .map(move |cache| (si, kind, cache))
                })
        })
        .collect();
    let reports = run_cells_parallel(cells.len(), |i| {
        let (si, kind, cache) = cells[i];
        let trace = paper_trace(&specs[si]);
        let mut cfg = paper_config(nodes);
        cfg.cache_policy = cache;
        simulate(&cfg, kind, &trace)
    });

    let mut last_spec = usize::MAX;
    for ((si, kind, cache), r) in cells.iter().zip(&reports) {
        let spec = &specs[*si];
        if *si != last_spec {
            println!("\n{} trace, {nodes} nodes:", spec.name);
            println!(
                "{:>14} {:>10} {:>12} {:>10}",
                "policy", "cache", "throughput", "miss"
            );
            last_spec = *si;
        }
        let cache_name = match cache {
            CachePolicy::Lru => "lru",
            CachePolicy::GreedyDualSize => "gds",
        };
        println!(
            "{:>14} {:>10} {:>8.0} r/s {:>9.1}%",
            kind.name(),
            cache_name,
            r.throughput_rps,
            r.miss_rate * 100.0
        );
        table.row([
            spec.name.clone(),
            kind.name().to_string(),
            cache_name.to_string(),
            format!("{:.1}", r.throughput_rps),
            format!("{:.5}", r.miss_rate),
        ]);
    }

    let path = results_dir().join("exp_cache_policy.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(GDS trades byte hit rate for object hit rate: it can lower the *miss count* \
         on the\n traditional server's thrashing caches, but under locality-conscious \
         distribution the\n aggregate cache already fits the working set and the policies \
         converge)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
