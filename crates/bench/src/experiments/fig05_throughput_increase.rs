//! Figures 5 and 6: the throughput increase due to locality — the ratio
//! of the Figure 4 surface to the Figure 3 surface, plus its side view
//! (per-hit-rate maximum over file sizes).

use l2s_model::{default_axes, throughput_increase_surface, ModelParams};
use l2s_util::ascii::{heat_map, line_chart, Series};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let (hits, sizes) = default_axes(25, 16);
    let base = ModelParams::default();
    let ratio = throughput_increase_surface(&base, &hits, &sizes);

    let mut table = CsvTable::new(["hit_rate", "avg_size_kb", "throughput_increase"]);
    for (i, &h) in hits.iter().enumerate() {
        for (j, &s) in sizes.iter().enumerate() {
            // Invalid sweep points write an explicit `none` cell.
            table.row([
                format!("{h:.6}"),
                format!("{s:.6}"),
                ratio.values[i][j].map_or_else(|| "none".to_string(), |v| format!("{v:.6}")),
            ]);
        }
    }
    let path = results_dir().join("fig05_throughput_increase.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;

    let labels: Vec<String> = hits.iter().map(|h| format!("hit {h:.2}")).collect();
    println!(
        "{}",
        heat_map(
            "Figure 5: throughput increase due to locality (ratio), rows = hit rate",
            &ratio.values_or_nan(),
            &labels,
            "avg file size (4 KB left .. 128 KB right)",
        )
    );

    // Figure 6 = the side view: max ratio per hit rate.
    let side: Vec<(f64, f64)> = hits
        .iter()
        .zip(ratio.row_max())
        .map(|(&h, m)| (h, m))
        .collect();
    let mut side_table = CsvTable::new(["hit_rate", "max_throughput_increase"]);
    for &(h, m) in &side {
        side_table.row_f64([h, m]);
    }
    let side_path = results_dir().join("fig06_increase_side_view.csv");
    side_table
        .write_to(&side_path)
        .map_err(|e| format!("write {}: {e}", side_path.display()))?;
    println!(
        "{}",
        line_chart(
            "Figure 6 (side view): max throughput increase vs hit rate",
            &[Series::new("max ratio", side)],
            64,
            18,
        )
    );

    let (peak, at_hit, at_size) = ratio.peak();
    println!("peak increase: {peak:.2}x at hit rate {at_hit:.2}, {at_size:.0} KB files");
    let last_row = ratio.values.last().ok_or("ratio surface is empty")?;
    let min_at_full_hit = last_row
        .iter()
        .copied()
        .flatten()
        .fold(f64::INFINITY, f64::min);
    println!("at 100% hit rate the ratio dips to {min_at_full_hit:.2} (forwarding overhead)");
    println!("(paper: up to ~7x, growing with hit rate, collapsing past ~80%, <1 near full hit)");
    println!("CSV: {} and {}", path.display(), side_path.display());
    Ok(())
}
