//! Fault tolerance (X6): node crashes and failover. The paper evaluates
//! its servers on an always-healthy cluster; this experiment extends the
//! comparison to the failure behavior any production front-end cluster
//! actually faces. Two of eight nodes crash partway through the measured
//! run and reboot (cold) later, and every request stranded on a dead
//! node is retried once through the router after a client timeout.
//!
//! For each Table 2 trace and each of the three servers the CSV reports
//! overall throughput under faults, per-phase throughput (healthy /
//! degraded / recovered), the healthy-run baseline, retry and loss
//! counts, and the fraction of node capacity lost to downtime. The
//! locality-conscious servers carry state that dies with a node — L2S
//! server sets shrink and rebuild, LARD's front-end mapping re-forms —
//! so their degraded and recovered phases show the cost of re-learning
//! locality, while the traditional server only loses raw capacity.

use crate::{paper_config, paper_trace, run_cells_parallel, PAPER_POLICIES};
use l2s::PolicyKind;
use l2s_sim::{simulate, FaultPlan, SimReport};
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Cluster size for the fault study (Table 2's mid-size point).
const NODES: usize = 8;
/// The two victims. Node 0 is never crashed, so LARD's front-end — a
/// single point of failure the paper's architecture accepts — survives
/// and the three servers face the same capacity loss.
const VICTIMS: [usize; 2] = [2, 5];
/// The modern dispatchers ride along after the paper's three servers.
/// They reuse the plans derived from the paper trio's healthy runs, so
/// the rows for the original policies stay byte-identical to the
/// pre-zoo CSV and merely gain a suffix.
const EXTRA_POLICIES: [PolicyKind; 3] = [PolicyKind::Jsq, PolicyKind::Jiq, PolicyKind::Sita];

/// The fault schedule for one trace, sized to the shortest healthy
/// elapsed time across the three servers so every faulted run passes
/// through all three phases: both victims die around a third of the way
/// in and reboot around two thirds.
fn plan_for(min_elapsed_s: f64) -> FaultPlan {
    let e = min_elapsed_s;
    FaultPlan::crash_recover(VICTIMS[0], 0.30 * e, 0.60 * e).merged(FaultPlan::crash_recover(
        VICTIMS[1],
        0.35 * e,
        0.65 * e,
    ))
}

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let specs = TraceSpec::paper_presets();
    let policies = PAPER_POLICIES;

    // Stage 1: healthy baselines — one cell per (trace, policy), all in
    // parallel. The plans derived from them depend only on index-ordered
    // results, so the whole experiment is worker-count independent. The
    // paper trio forms the first block of cells and the modern
    // dispatchers a second block, so the CSV keeps the original rows as
    // an unchanged prefix.
    let cells: Vec<(usize, PolicyKind)> = (0..specs.len())
        .flat_map(|s| policies.iter().map(move |&p| (s, p)))
        .chain((0..specs.len()).flat_map(|s| EXTRA_POLICIES.iter().map(move |&p| (s, p))))
        .collect();
    let healthy: Vec<SimReport> = run_cells_parallel(cells.len(), |i| {
        let (s, kind) = cells[i];
        let trace = paper_trace(&specs[s]);
        simulate(&paper_config(NODES), kind, &trace)
    });

    // Per-trace fault plans from the healthy elapsed times of the paper
    // trio only — the plans (and so the original rows) are identical
    // with and without the modern dispatchers in the matrix.
    let plans: Vec<FaultPlan> = (0..specs.len())
        .map(|s| {
            let e_min = healthy
                .iter()
                .zip(&cells)
                .filter(|(_, &(cs, p))| cs == s && policies.contains(&p))
                .map(|(r, _)| r.elapsed.as_secs_f64())
                .fold(f64::INFINITY, f64::min);
            let plan = plan_for(e_min);
            plan.validate(NODES).map(|()| plan)
        })
        .collect::<Result<_, _>>()?;

    // Stage 2: the same matrix under faults.
    let faulted: Vec<SimReport> = run_cells_parallel(cells.len(), |i| {
        let (s, kind) = cells[i];
        let trace = paper_trace(&specs[s]);
        let mut cfg = paper_config(NODES);
        cfg.faults = plans[s].clone();
        simulate(&cfg, kind, &trace)
    });

    let mut table = CsvTable::new([
        "trace",
        "policy",
        "healthy_baseline_rps",
        "faulted_rps",
        "healthy_phase_rps",
        "degraded_phase_rps",
        "recovered_phase_rps",
        "failed",
        "retried",
        "unavailability",
    ]);
    for (i, &(s, kind)) in cells.iter().enumerate() {
        let (base, fr) = (&healthy[i], &faulted[i]);
        // A new table whenever the trace changes — including the wrap
        // from the paper trio's last trace back to the modern
        // dispatchers' first.
        if i == 0 || cells[i - 1].0 != s {
            println!(
                "\n{} trace, {NODES} nodes, {} of {NODES} crash then reboot:",
                specs[s].name,
                VICTIMS.len()
            );
            println!(
                "{:>14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
                "policy",
                "healthy",
                "faulted",
                "degrade",
                "recover",
                "unavail",
                "retried",
                "failed"
            );
        }
        println!(
            "{:>14} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>8.2}% {:>7} {:>7}",
            kind.name(),
            base.throughput_rps,
            fr.throughput_rps,
            fr.phase_rps[1],
            fr.phase_rps[2],
            fr.unavailability * 100.0,
            fr.retried,
            fr.failed
        );
        table.row([
            specs[s].name.to_string(),
            kind.name().to_string(),
            format!("{:.1}", base.throughput_rps),
            format!("{:.1}", fr.throughput_rps),
            format!("{:.1}", fr.phase_rps[0]),
            format!("{:.1}", fr.phase_rps[1]),
            format!("{:.1}", fr.phase_rps[2]),
            fr.failed.to_string(),
            fr.retried.to_string(),
            format!("{:.5}", fr.unavailability),
        ]);
    }

    let path = results_dir().join("exp_faults.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(the degraded column is throughput while 2 of {NODES} nodes are down; recovered is \
         after both\n reboot with cold caches — the locality-conscious servers must re-learn \
         placement there,\n the traditional server only regains capacity)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
