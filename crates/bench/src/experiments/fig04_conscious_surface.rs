//! Figure 4: model throughput of a locality-conscious server (R = 0)
//! over the (hit rate, average file size) plane, 16 nodes, 128 MB
//! memories.

use l2s_model::{default_axes, throughput_surface, ModelParams, ServerKind};
use l2s_util::ascii::heat_map;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let (hits, sizes) = default_axes(25, 16);
    let base = ModelParams::default();
    let surface = throughput_surface(&base, ServerKind::LocalityConscious, &hits, &sizes);

    let mut table = CsvTable::new(["hit_rate", "avg_size_kb", "throughput_rps"]);
    for (i, &h) in hits.iter().enumerate() {
        for (j, &s) in sizes.iter().enumerate() {
            // Invalid sweep points write an explicit `none` cell.
            table.row([
                format!("{h:.6}"),
                format!("{s:.6}"),
                surface.values[i][j].map_or_else(|| "none".to_string(), |v| format!("{v:.6}")),
            ]);
        }
    }
    let path = results_dir().join("fig04_conscious_surface.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;

    let labels: Vec<String> = hits.iter().map(|h| format!("hit {h:.2}")).collect();
    println!(
        "{}",
        heat_map(
            "Figure 4: locality-conscious throughput (reqs/s), rows = hit rate, cols = 4..128 KB",
            &surface.values_or_nan(),
            &labels,
            "avg file size (4 KB left .. 128 KB right)",
        )
    );
    let (peak, at_hit, at_size) = surface.peak();
    println!("peak throughput: {peak:.0} reqs/s at hit rate {at_hit:.2}, {at_size:.0} KB files");
    println!("(paper: same ~2.5e4 peak as Figure 3 but sustained over a much larger region —");
    println!(" significant already above ~50% hit rate and below ~96 KB)");
    println!("CSV: {}", path.display());
    Ok(())
}
