//! Section 5.2 idle-time study: mean CPU idle fraction of the serving
//! nodes per system and cluster size. The paper observes traditional
//! idle times roughly constant in cluster size, LARD improving up to
//! 8–12 nodes then worsening as the front-end bottlenecks, and L2S
//! steadily approaching full utilization.

use crate::{paper_config, paper_trace, sweep, PAPER_NODE_COUNTS, PAPER_POLICIES};
use l2s::PolicyKind;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let mut table = CsvTable::new(["trace", "nodes", "policy", "cpu_idle"]);
    for spec in TraceSpec::paper_presets() {
        let trace = paper_trace(&spec);
        let cells = sweep(&trace, &PAPER_NODE_COUNTS, &PAPER_POLICIES, paper_config);
        println!("\n{} trace — mean serving-node CPU idle (%):", spec.name);
        println!(
            "{:>6} {:>10} {:>10} {:>12}",
            "nodes", "l2s", "lard", "traditional"
        );
        for &n in &PAPER_NODE_COUNTS {
            let get = |p: PolicyKind| {
                cells
                    .iter()
                    .find(|c| c.nodes == n && c.policy == p)
                    .map(|c| c.report.cpu_idle)
                    .unwrap_or(f64::NAN)
            };
            let (l2s, lard, trad) = (
                get(PolicyKind::L2s),
                get(PolicyKind::Lard),
                get(PolicyKind::Traditional),
            );
            println!(
                "{n:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
                l2s * 100.0,
                lard * 100.0,
                trad * 100.0
            );
            for (p, v) in [
                (PolicyKind::L2s, l2s),
                (PolicyKind::Lard, lard),
                (PolicyKind::Traditional, trad),
            ] {
                table.row([
                    spec.name.clone(),
                    n.to_string(),
                    p.name().to_string(),
                    format!("{v:.5}"),
                ]);
            }
        }
    }
    let path = results_dir().join("exp_idle_times.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: traditional ~constant; LARD improves to 8-12 nodes then degrades; \
         L2S keeps improving)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
