//! The experiment bodies behind every figure/table binary.
//!
//! Each submodule owns one experiment as a `run() -> Result<(), String>`
//! function; the `src/bin/` wrappers call them through
//! [`crate::run_experiment`], and the `all_figures` binary runs the
//! whole suite in-process via [`ALL`] so the memoized traces of
//! [`crate::paper_trace`] are generated once per spec instead of once
//! per process.

pub mod exp_cache_policy;
pub mod exp_dfs;
pub mod exp_faults;
pub mod exp_forwarding;
pub mod exp_hetero;
pub mod exp_idle_times;
pub mod exp_lard_variants;
pub mod exp_latency_curve;
pub mod exp_memory_sim;
pub mod exp_memory_sweep;
pub mod exp_miss_rates;
pub mod exp_persistent;
pub mod exp_replay;
pub mod exp_replication;
pub mod exp_sensitivity;
pub mod exp_workload;
pub mod fig03_oblivious_surface;
pub mod fig04_conscious_surface;
pub mod fig05_throughput_increase;
pub mod table2_traces;

/// Figure 7: throughput vs cluster size for the Calgary trace.
pub fn fig07_calgary() -> Result<(), String> {
    crate::run_paper_figure("fig07_calgary", &l2s_trace::TraceSpec::calgary())
}

/// Figure 8: throughput vs cluster size for the Clarknet trace.
pub fn fig08_clarknet() -> Result<(), String> {
    crate::run_paper_figure("fig08_clarknet", &l2s_trace::TraceSpec::clarknet())
}

/// Figure 9: throughput vs cluster size for the NASA trace.
pub fn fig09_nasa() -> Result<(), String> {
    crate::run_paper_figure("fig09_nasa", &l2s_trace::TraceSpec::nasa())
}

/// Figure 10: throughput vs cluster size for the Rutgers trace.
pub fn fig10_rutgers() -> Result<(), String> {
    crate::run_paper_figure("fig10_rutgers", &l2s_trace::TraceSpec::rutgers())
}

/// Every experiment, in the order the historical `run_experiments.sh`
/// ran them: model studies first, then the four headline figures, then
/// the simulator-level studies.
pub const ALL: &[(&str, fn() -> Result<(), String>)] = &[
    ("fig03_oblivious_surface", fig03_oblivious_surface::run),
    ("fig04_conscious_surface", fig04_conscious_surface::run),
    ("fig05_throughput_increase", fig05_throughput_increase::run),
    ("exp_memory_sweep", exp_memory_sweep::run),
    ("exp_replication", exp_replication::run),
    ("table2_traces", table2_traces::run),
    ("fig07_calgary", fig07_calgary),
    ("fig08_clarknet", fig08_clarknet),
    ("fig09_nasa", fig09_nasa),
    ("fig10_rutgers", fig10_rutgers),
    ("exp_miss_rates", exp_miss_rates::run),
    ("exp_idle_times", exp_idle_times::run),
    ("exp_forwarding", exp_forwarding::run),
    ("exp_memory_sim", exp_memory_sim::run),
    ("exp_sensitivity", exp_sensitivity::run),
    ("exp_lard_variants", exp_lard_variants::run),
    ("exp_latency_curve", exp_latency_curve::run),
    ("exp_persistent", exp_persistent::run),
    ("exp_dfs", exp_dfs::run),
    ("exp_cache_policy", exp_cache_policy::run),
    ("exp_faults", exp_faults::run),
    ("exp_hetero", exp_hetero::run),
    ("exp_workload", exp_workload::run),
    ("exp_replay", exp_replay::run),
];
