//! Section 5.2 memory study (simulation): growing the caches from 32 MB
//! to 128 MB helps the traditional server tremendously (its hit rate is
//! the direct beneficiary), barely moves LARD and L2S (their miss rates
//! are already low), and never lifts LARD past its front-end ceiling —
//! so traditional can overtake LARD at large memories and cluster sizes.

use crate::{paper_config, paper_trace, sweep, PAPER_POLICIES};
use l2s::PolicyKind;
use l2s_trace::TraceSpec;
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let node_counts = [4usize, 8, 16];
    let caches_mb = [32.0, 64.0, 128.0];
    let mut table = CsvTable::new(["trace", "cache_mb", "nodes", "policy", "throughput_rps"]);

    for spec in [TraceSpec::calgary(), TraceSpec::rutgers()] {
        let trace = paper_trace(&spec);
        for &cache_mb in &caches_mb {
            let cells = sweep(&trace, &node_counts, &PAPER_POLICIES, |n| {
                let mut cfg = paper_config(n);
                cfg.cache_kb = cache_mb * 1024.0;
                cfg
            });
            println!(
                "\n{} trace, {cache_mb:.0} MB caches — throughput (r/s):",
                spec.name
            );
            println!(
                "{:>6} {:>10} {:>10} {:>12}",
                "nodes", "l2s", "lard", "traditional"
            );
            for &n in &node_counts {
                let get = |p: PolicyKind| {
                    cells
                        .iter()
                        .find(|c| c.nodes == n && c.policy == p)
                        .map(|c| c.report.throughput_rps)
                        .unwrap_or(f64::NAN)
                };
                let (l2s, lard, trad) = (
                    get(PolicyKind::L2s),
                    get(PolicyKind::Lard),
                    get(PolicyKind::Traditional),
                );
                println!("{n:>6} {l2s:>10.0} {lard:>10.0} {trad:>12.0}");
                for (p, v) in [
                    (PolicyKind::L2s, l2s),
                    (PolicyKind::Lard, lard),
                    (PolicyKind::Traditional, trad),
                ] {
                    table.row([
                        spec.name.clone(),
                        format!("{cache_mb:.0}"),
                        n.to_string(),
                        p.name().to_string(),
                        format!("{v:.1}"),
                    ]);
                }
            }
        }
    }

    let path = results_dir().join("exp_memory_sim.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper: larger memories lift the traditional server dramatically, LARD and \
         L2S only slightly;\n LARD's ~5000 r/s front-end ceiling is memory-independent, \
         letting traditional overtake it\n at 128 MB and >= 8 nodes on some traces)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
