//! Replay parity (X10): the infinite-speed replay path must reproduce
//! the DES engine's placement sequence byte for byte.
//!
//! For every Table 2 trace this runs the engine twice — once directly
//! with a placement observer attached, once through
//! [`l2s_replay::replay_trace_fast`] (the path `l2s-replay
//! --as-fast-as-possible --trace` takes) — and compares the two
//! [`PlacementRecord`] streams element for element. Any divergence
//! fails the run with the trace, policy, and first differing index; the
//! CSV pins each stream's FNV checksum so cross-run and cross-worker
//! drift shows up as a diff in version control.

use crate::{paper_trace, request_cap, run_cells_parallel, trace_seed};
use l2s::PolicyKind;
use l2s_replay::{placement_checksum, replay_trace_fast};
use l2s_sim::{simulate_observed, PlacementRecord, SimConfig};
use l2s_trace::TraceSpec;
use l2s_util::cast;
use l2s_util::csv::{results_dir, CsvTable};

const NODES: usize = 8;

/// The policies the parity check covers: the paper's locality-conscious
/// pair plus one queue-depth dispatcher, so both stateful-mapping and
/// stateless selection paths are pinned.
const POLICIES: [PolicyKind; 3] = [PolicyKind::L2s, PolicyKind::Lard, PolicyKind::Jsq];

struct Cell {
    trace: String,
    policy: &'static str,
    requests: usize,
    placements: usize,
    checksum: u64,
}

fn run_cell(spec: &TraceSpec, kind: PolicyKind) -> Result<Cell, String> {
    let trace = paper_trace(spec);
    let config = SimConfig {
        seed: trace_seed(spec),
        max_requests: request_cap(),
        ..SimConfig::paper_default(NODES)
    };

    let (replayed, replay_report) = replay_trace_fast(&config, kind, &trace);

    let mut direct: Vec<PlacementRecord> = Vec::new();
    let mut observer = |r: PlacementRecord| direct.push(r);
    let direct_report = simulate_observed(&config, kind, &trace, &mut observer);

    if replayed.len() != direct.len() {
        return Err(format!(
            "{}/{}: replay produced {} placements, engine {}",
            spec.name,
            kind.name(),
            replayed.len(),
            direct.len()
        ));
    }
    if let Some(i) = (0..replayed.len()).find(|&i| replayed[i] != direct[i]) {
        return Err(format!(
            "{}/{}: placement streams diverge at index {i}: replay {:?} vs engine {:?}",
            spec.name,
            kind.name(),
            replayed[i],
            direct[i]
        ));
    }
    if replay_report != direct_report {
        return Err(format!(
            "{}/{}: placements match but the reports differ",
            spec.name,
            kind.name()
        ));
    }
    Ok(Cell {
        trace: spec.name.clone(),
        policy: kind.name(),
        requests: trace.len(),
        placements: replayed.len(),
        checksum: placement_checksum(&replayed),
    })
}

/// Runs the experiment; errors are parity violations or I/O failures.
pub fn run() -> Result<(), String> {
    let specs = TraceSpec::paper_presets();
    let cells: Vec<(usize, PolicyKind)> = (0..specs.len())
        .flat_map(|s| POLICIES.iter().map(move |&p| (s, p)))
        .collect();

    println!("X10: replay-vs-DES placement parity ({NODES} nodes)");
    println!(
        "{:>9} {:>6} {:>10} {:>11} {:>18}",
        "trace", "policy", "requests", "placements", "checksum"
    );

    let results = run_cells_parallel(cells.len(), |i| {
        let (s, kind) = cells[i];
        run_cell(&specs[s], kind)
    });

    let mut table = CsvTable::new([
        "trace",
        "policy",
        "requests",
        "placements",
        "placement_checksum",
    ]);
    for result in results {
        let cell = result?;
        println!(
            "{:>9} {:>6} {:>10} {:>11} {:>18}",
            cell.trace,
            cell.policy,
            cell.requests,
            cell.placements,
            format!("{:016x}", cell.checksum)
        );
        table.row([
            cell.trace.clone(),
            cell.policy.to_string(),
            cast::len_u64(cell.requests).to_string(),
            cast::len_u64(cell.placements).to_string(),
            format!("{:016x}", cell.checksum),
        ]);
    }

    let path = results_dir().join("exp_replay.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(every cell ran the same trace twice — once through the DES engine's \
         observer hook,\n once through the l2s-replay fast path — and the placement \
         streams matched element\n for element; the checksums above pin the sequences \
         for cross-run comparison)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
