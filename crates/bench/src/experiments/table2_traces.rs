//! Table 2: characteristics of the four WWW traces — the paper's values
//! next to what the synthetic generator actually produces.

use crate::{paper_trace, run_cells_parallel, trace_seed};
use l2s_trace::{TraceSpec, TraceStats};
use l2s_util::csv::{results_dir, CsvTable};

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let mut table = CsvTable::new([
        "trace",
        "num_files",
        "avg_file_kb_paper",
        "avg_file_kb_generated",
        "num_requests",
        "avg_req_kb_paper",
        "avg_req_kb_generated",
        "alpha_paper",
        "alpha_estimated",
        "working_set_mb",
    ]);

    println!("Table 2: WWW server trace characteristics (paper target -> generated)");
    println!(
        "{:>9} {:>9} {:>10} {:>12} {:>11} {:>11} {:>13} {:>7} {:>9} {:>8}",
        "trace",
        "files",
        "avgfileKB",
        "(generated)",
        "requests",
        "avgreqKB",
        "(generated)",
        "alpha",
        "(est.)",
        "ws MB"
    );
    // Generate all four traces (and their statistics) in parallel; the
    // per-spec memo in `paper_trace` lets distinct specs build
    // concurrently, and index-ordering keeps the table rows in preset
    // order.
    let specs = TraceSpec::paper_presets();
    let all_stats = run_cells_parallel(specs.len(), |i| {
        TraceStats::compute(&paper_trace(&specs[i]))
    });
    for (spec, stats) in specs.iter().zip(&all_stats) {
        println!(
            "{:>9} {:>9} {:>10.1} {:>12.1} {:>11} {:>11.1} {:>13.1} {:>7.2} {:>9.2} {:>8.0}",
            spec.name,
            stats.num_files,
            spec.avg_file_kb,
            stats.avg_file_kb,
            stats.num_requests,
            spec.avg_request_kb,
            stats.avg_request_kb,
            spec.alpha,
            stats.alpha,
            stats.working_set_kb / 1024.0
        );
        table.row([
            spec.name.clone(),
            stats.num_files.to_string(),
            format!("{:.1}", spec.avg_file_kb),
            format!("{:.1}", stats.avg_file_kb),
            stats.num_requests.to_string(),
            format!("{:.1}", spec.avg_request_kb),
            format!("{:.1}", stats.avg_request_kb),
            format!("{:.2}", spec.alpha),
            format!("{:.2}", stats.alpha),
            format!("{:.0}", stats.working_set_kb / 1024.0),
        ]);
        let _ = trace_seed(spec);
    }

    let path = results_dir().join("table2_traces.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(paper Table 2: Calgary 8397/42.9/567895/19.7/1.08, Clarknet \
         35885/11.6/3053525/11.9/0.78,\n NASA 5500/53.7/3147719/47.0/0.91, \
         Rutgers 24098/30.5/535021/26.2/0.79;\n working sets 288-717 MB)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
