//! Dispatcher zoo on heterogeneous clusters (X8). The paper's three
//! servers — and three modern dispatchers (JSQ(2) power-of-two-choices,
//! join-idle-queue, and a size-aware SITA splitter) — run on every
//! Table 2 trace over three hardware mixes: the paper's uniform
//! cluster, a mild two-generation mix, and an extreme
//! few-fast-many-slow mix (van der Boor & Comte's regime).
//!
//! Each (trace, mix) block also carries a closed-form validation row
//! from `crates/model`: the saturation bound of the heterogeneous
//! network with the CPU station at its *aggregate* capacity `Σᵢ sᵢ`
//! and every other station unchanged. It is the model's line for a
//! locality-*oblivious* server — the oblivious dispatchers
//! (traditional, JSQ, JIQ) saturate around it, while the conscious
//! servers clear it by beating the oblivious hit rate. The run fails
//! if the bound is not monotone non-decreasing in the mix
//! (uniform ≤ mild ≤ extreme): adding CPU capacity can only raise it,
//! and when the bottleneck station is the disk (as it is at the
//! paper's parameters) it stays exactly flat.

use crate::{paper_config, paper_trace, run_cells_parallel};
use l2s::PolicyKind;
use l2s_cluster::HeteroSpec;
use l2s_model::{ModelParams, QueueModel, ServerKind};
use l2s_sim::{simulate, SimReport};
use l2s_trace::{TraceSpec, TraceStats};
use l2s_util::cast;
use l2s_util::csv::{results_dir, CsvTable};

/// Cluster size of the surface (Table 2's mid-size point, matching X6).
const NODES: usize = 8;

/// Every dispatcher in the comparison: the paper's three servers plus
/// the modern zoo.
pub const DISPATCHERS: [PolicyKind; 6] = [
    PolicyKind::Traditional,
    PolicyKind::Lard,
    PolicyKind::L2s,
    PolicyKind::Jsq,
    PolicyKind::Jiq,
    PolicyKind::Sita,
];

/// The hardware mixes of the surface, mildest first.
fn mixes() -> [(&'static str, HeteroSpec); 3] {
    [
        ("uniform", HeteroSpec::uniform()),
        ("mild", HeteroSpec::mild()),
        ("extreme", HeteroSpec::extreme()),
    ]
}

/// Closed-form heterogeneous saturation bound for one (trace, mix):
/// the X8 validation line. The dispatchers here are locality-oblivious
/// at the model's level of abstraction (the conscious servers only do
/// better), so the oblivious hit rate over the trace's population
/// feeds the bound.
fn model_bound(stats: &TraceStats, spec: &HeteroSpec, cache_kb: f64) -> Result<f64, String> {
    let params = ModelParams {
        nodes: NODES,
        alpha: stats.alpha.max(0.05),
        cache_kb,
        avg_file_kb: stats.avg_request_kb,
        ..ModelParams::default()
    };
    let model = QueueModel::new(params)?;
    let derived = model.derived_from_population(
        ServerKind::LocalityOblivious,
        cast::len_f64(stats.num_files),
    );
    Ok(model.max_throughput_hetero(&derived, &spec.speeds(NODES)))
}

/// Runs the experiment; errors are I/O or model failures.
pub fn run() -> Result<(), String> {
    let specs = TraceSpec::paper_presets();
    let mixes = mixes();

    let cells: Vec<(usize, usize, PolicyKind)> = (0..specs.len())
        .flat_map(|s| {
            (0..mixes.len()).flat_map(move |m| DISPATCHERS.iter().map(move |&p| (s, m, p)))
        })
        .collect();
    let reports: Vec<SimReport> = run_cells_parallel(cells.len(), |i| {
        let (s, m, kind) = cells[i];
        let trace = paper_trace(&specs[s]);
        let mut cfg = paper_config(NODES);
        cfg.hetero = Some(mixes[m].1.clone());
        simulate(&cfg, kind, &trace)
    });

    let mut table = CsvTable::new([
        "trace",
        "mix",
        "policy",
        "throughput_rps",
        "miss_rate",
        "forwarded",
        "imbalance",
        "model_bound_rps",
    ]);
    let cache_kb = paper_config(1).cache_kb;
    for s in 0..specs.len() {
        let trace = paper_trace(&specs[s]);
        let stats = TraceStats::compute(&trace);
        let mut prev_bound = 0.0;
        for (m, (mix_name, mix)) in mixes.iter().enumerate() {
            let bound = model_bound(&stats, mix, cache_kb)?;
            if bound + 1e-9 < prev_bound {
                return Err(format!(
                    "{}/{mix_name}: hetero bound {bound:.1} fell below the \
                     milder mix's {prev_bound:.1} — the mixes only add CPU capacity",
                    specs[s].name
                ));
            }
            prev_bound = bound;
            println!(
                "\n{} trace, {NODES} nodes, {mix_name} hardware (bound {bound:.0} r/s):",
                specs[s].name
            );
            println!(
                "{:>14} {:>10} {:>8} {:>9} {:>10}",
                "policy", "rps", "miss", "forward", "imbalance"
            );
            for (i, &(cs, cm, kind)) in cells.iter().enumerate() {
                if cs != s || cm != m {
                    continue;
                }
                let r = &reports[i];
                println!(
                    "{:>14} {:>10.0} {:>7.1}% {:>8.1}% {:>10.3}",
                    kind.name(),
                    r.throughput_rps,
                    r.miss_rate * 100.0,
                    r.forwarded_fraction * 100.0,
                    r.completion_imbalance()
                );
                table.row([
                    specs[s].name.to_string(),
                    mix_name.to_string(),
                    kind.name().to_string(),
                    format!("{:.1}", r.throughput_rps),
                    format!("{:.5}", r.miss_rate),
                    format!("{:.5}", r.forwarded_fraction),
                    format!("{:.5}", r.completion_imbalance()),
                    format!("{:.1}", bound),
                ]);
            }
            // The closed-form validation row for this (trace, mix).
            table.row([
                specs[s].name.to_string(),
                mix_name.to_string(),
                "model_bound".to_string(),
                format!("{:.1}", bound),
                String::new(),
                String::new(),
                String::new(),
                format!("{bound:.1}"),
            ]);
        }
    }

    let path = results_dir().join("exp_hetero.csv");
    table
        .write_to(&path)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "\n(each mix keeps the same node count; mild ≈ 1.13× and extreme ≈ 1.38× the uniform \
         cluster's\n aggregate CPU. The model_bound rows are the heterogeneous closed form — \
         CPU station at Σ sᵢ,\n other stations unchanged — i.e. the oblivious server's \
         saturation line. It moves with the\n mix only when the CPU is the bottleneck; the \
         locality-conscious servers clear it by\n beating the oblivious hit rate)"
    );
    println!("CSV: {}", path.display());
    Ok(())
}
