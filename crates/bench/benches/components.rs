//! Criterion microbenchmarks of the substrates: event queue, LRU cache,
//! Zipf sampling, model solving, and policy decision latency. These
//! guard the hot paths the trace-driven simulator leans on (30M+ events
//! per full-fidelity figure run).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use l2s::{Distributor, L2s, L2sConfig, Lard, LardConfig, Traditional};
use l2s_cluster::LruCache;
use l2s_devs::{EventQueue, FifoResource};
use l2s_model::{ModelParams, QueueModel, ServerKind};
use l2s_util::{DetRng, SimDuration, SimTime};
use l2s_zipf::ZipfSampler;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for i in 0..1_000u32 {
                q.schedule(SimTime::from_nanos(rng.below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e as u64;
            }
            black_box(sum)
        })
    });
}

fn bench_fifo_resource(c: &mut Criterion) {
    c.bench_function("fifo_resource_schedule", |b| {
        let mut r = FifoResource::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(r.schedule(SimTime::from_nanos(t), SimDuration::from_nanos(150)))
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_touch_hit", |b| {
        let mut cache = LruCache::new(100_000.0);
        for f in 0..1_000u32 {
            cache.insert(f, 10.0);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7) % 1_000;
            black_box(cache.touch(i))
        })
    });
    c.bench_function("lru_insert_evict", |b| {
        let mut cache = LruCache::new(1_000.0);
        let mut f = 0u32;
        b.iter(|| {
            f = f.wrapping_add(1);
            black_box(cache.insert(f, 10.0).len())
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    c.bench_function("zipf_sample_35885_files", |b| {
        let sampler = ZipfSampler::new(35_885, 0.78);
        let mut rng = DetRng::new(2);
        b.iter(|| black_box(sampler.sample(&mut rng)))
    });
}

fn bench_model(c: &mut Criterion) {
    c.bench_function("model_max_throughput", |b| {
        let model = QueueModel::new(ModelParams::default()).unwrap();
        b.iter(|| black_box(model.max_throughput(ServerKind::LocalityConscious, 0.8)))
    });
    c.bench_function("model_full_solve", |b| {
        let model = QueueModel::new(ModelParams::default()).unwrap();
        b.iter(|| black_box(model.solve(ServerKind::LocalityConscious, 0.8, 1_000.0)))
    });
}

fn bench_policies(c: &mut Criterion) {
    let now = SimTime::ZERO;
    c.bench_function("policy_traditional_assign", |b| {
        let mut p = Traditional::new(16);
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 1) % 1_000;
            let n = p.arrival_node().unwrap();
            let a = p.assign(now, n, f.into());
            p.complete(now, a.service, f.into());
            black_box(a.service)
        })
    });
    c.bench_function("policy_lard_assign", |b| {
        let mut p = Lard::new(16, LardConfig::default());
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 1) % 1_000;
            let n = p.arrival_node().unwrap();
            let a = p.assign(now, n, f.into());
            p.complete(now, a.service, f.into());
            black_box(a.service)
        })
    });
    c.bench_function("policy_l2s_assign", |b| {
        let mut p = L2s::new(16, L2sConfig::default());
        let mut buf = Vec::new();
        let mut f = 0u32;
        b.iter(|| {
            f = (f + 1) % 1_000;
            let n = p.arrival_node().unwrap();
            let a = p.assign(now, n, f.into());
            p.complete(now, a.service, f.into());
            p.drain_messages(&mut buf);
            buf.clear();
            black_box(a.service)
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fifo_resource,
    bench_lru,
    bench_zipf,
    bench_model,
    bench_policies
);
criterion_main!(benches);
