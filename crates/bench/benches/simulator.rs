//! Criterion end-to-end benchmarks: whole simulation runs per policy.
//! These measure simulator performance (simulated requests per wall
//! second), which bounds how fast the figure binaries regenerate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use l2s::PolicyKind;
use l2s_sim::{simulate, SimConfig};
use l2s_trace::TraceSpec;

fn bench_simulate(c: &mut Criterion) {
    let trace = TraceSpec::calgary().scaled(2_000, 20_000).generate(7);
    let mut group = c.benchmark_group("simulate_20k_requests");
    group.sample_size(10);
    for kind in [PolicyKind::Traditional, PolicyKind::Lard, PolicyKind::L2s] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let cfg = SimConfig::quick(8, 8.0 * 1024.0);
                b.iter(|| black_box(simulate(&cfg, kind, &trace)))
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("calgary_scaled_50k", |b| {
        let spec = TraceSpec::calgary().scaled(4_000, 50_000);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(spec.generate(seed).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulate, bench_trace_generation);
criterion_main!(benches);
