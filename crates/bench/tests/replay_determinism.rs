//! Replay-parity determinism: the `exp_replay` experiment regenerated
//! with 4 workers must be byte-identical to the sequential run. The
//! experiment's cells each compare the l2s-replay fast path against the
//! DES engine's observer stream, so this test simultaneously pins two
//! contracts: placement parity holds under concurrent cell execution,
//! and the placement checksums themselves are stable across worker
//! counts.
//!
//! This file deliberately holds a single `#[test]`: the experiment
//! reads `L2S_WORKERS`, `L2S_BENCH_CAP`, and `L2S_RESULTS_DIR` from
//! the process environment, and a sibling test mutating them
//! concurrently would race. CI runs it with `L2S_WORKERS=4` exported
//! as well, which the explicit `set_var` calls below override per
//! phase.

#[test]
fn replay_parity_csv_is_byte_identical_across_worker_counts() {
    // Small cap so both runs finish in seconds; the cap is part of the
    // cell configuration, so it is identical across the two runs.
    std::env::set_var("L2S_BENCH_CAP", "2000");
    let base = std::env::temp_dir().join(format!("l2s-replay-det-{}", std::process::id()));
    let seq_dir = base.join("workers1");
    let par_dir = base.join("workers4");
    std::fs::create_dir_all(&seq_dir).unwrap();
    std::fs::create_dir_all(&par_dir).unwrap();

    std::env::set_var("L2S_WORKERS", "1");
    std::env::set_var("L2S_RESULTS_DIR", &seq_dir);
    l2s_bench::experiments::exp_replay::run().unwrap();

    std::env::set_var("L2S_WORKERS", "4");
    std::env::set_var("L2S_RESULTS_DIR", &par_dir);
    l2s_bench::experiments::exp_replay::run().unwrap();

    let csv = "exp_replay.csv";
    let sequential = std::fs::read(seq_dir.join(csv)).unwrap();
    let parallel = std::fs::read(par_dir.join(csv)).unwrap();
    assert!(
        !sequential.is_empty(),
        "sequential run wrote an empty {csv}"
    );
    assert_eq!(
        sequential, parallel,
        "4-worker {csv} must be byte-identical to the sequential CSV"
    );

    // Every Table 2 trace and covered policy must appear, each with a
    // pinned 16-hex-digit checksum.
    let text = std::fs::read_to_string(seq_dir.join(csv)).unwrap();
    for trace in ["calgary", "clarknet", "nasa", "rutgers"] {
        for policy in ["l2s", "lard", "jsq"] {
            let row = text
                .lines()
                .find(|l| {
                    let mut f = l.split(',');
                    f.next() == Some(trace) && f.next() == Some(policy)
                })
                .unwrap_or_else(|| panic!("missing {trace}/{policy} row:\n{text}"));
            let checksum = row.split(',').nth(4).unwrap_or("");
            assert_eq!(
                checksum.len(),
                16,
                "{trace}/{policy}: malformed checksum {checksum:?}"
            );
        }
    }
}
