//! Suite-level determinism: a figure regenerated with 4 workers must be
//! byte-identical to the same figure regenerated sequentially. This is
//! the executor's contract ([`l2s_bench::run_cells_parallel`] collects
//! results by cell index, never by completion order) checked end to end
//! through a real experiment — trace generation, the full `sweep`
//! matrix, and the CSV writer.
//!
//! This file deliberately holds a single `#[test]`: the experiment reads
//! `L2S_WORKERS`, `L2S_BENCH_CAP`, and `L2S_RESULTS_DIR` from the
//! process environment, and a sibling test mutating them concurrently
//! would race. CI runs it with `L2S_WORKERS=4` exported as well, which
//! the explicit `set_var` calls below override per phase.

#[test]
fn figure_csv_is_byte_identical_across_worker_counts() {
    // Small cap so both runs finish in seconds; the cap is part of the
    // cell configuration, so it is identical across the two runs.
    std::env::set_var("L2S_BENCH_CAP", "2000");
    let base = std::env::temp_dir().join(format!("l2s-parallel-det-{}", std::process::id()));
    let seq_dir = base.join("workers1");
    let par_dir = base.join("workers4");
    std::fs::create_dir_all(&seq_dir).unwrap();
    std::fs::create_dir_all(&par_dir).unwrap();

    std::env::set_var("L2S_WORKERS", "1");
    std::env::set_var("L2S_RESULTS_DIR", &seq_dir);
    l2s_bench::experiments::fig07_calgary().unwrap();

    std::env::set_var("L2S_WORKERS", "4");
    std::env::set_var("L2S_RESULTS_DIR", &par_dir);
    l2s_bench::experiments::fig07_calgary().unwrap();

    let sequential = std::fs::read(seq_dir.join("fig07_calgary.csv")).unwrap();
    let parallel = std::fs::read(par_dir.join("fig07_calgary.csv")).unwrap();
    assert!(
        !sequential.is_empty(),
        "sequential run produced an empty CSV"
    );
    assert_eq!(
        sequential, parallel,
        "4-worker CSV must be byte-identical to the sequential CSV"
    );
    let _ = std::fs::remove_dir_all(&base);
}
