//! Dispatcher-zoo determinism: the `exp_hetero` experiment regenerated
//! with 4 workers must be byte-identical to the same experiment run
//! sequentially. This drives the three modern dispatchers — JSQ(2),
//! join-idle-queue, and the SITA splitter — end-to-end through the
//! bench executor on every hardware mix, so any completion-order or
//! shared-state leakage in the new policies (JIQ's idle stack, SITA's
//! size thresholds, JSQ's sampling RNG) shows up as a byte diff.
//!
//! This file deliberately holds a single `#[test]`: the experiment
//! reads `L2S_WORKERS`, `L2S_BENCH_CAP`, and `L2S_RESULTS_DIR` from
//! the process environment, and a sibling test mutating them
//! concurrently would race. CI runs it with `L2S_WORKERS=4` exported
//! as well, which the explicit `set_var` calls below override per
//! phase.

#[test]
fn hetero_experiment_csv_is_byte_identical_across_worker_counts() {
    // Small cap so both runs finish in seconds; the cap is part of the
    // cell configuration, so it is identical across the two runs.
    std::env::set_var("L2S_BENCH_CAP", "2000");
    let base = std::env::temp_dir().join(format!("l2s-hetero-det-{}", std::process::id()));
    let seq_dir = base.join("workers1");
    let par_dir = base.join("workers4");
    std::fs::create_dir_all(&seq_dir).unwrap();
    std::fs::create_dir_all(&par_dir).unwrap();

    std::env::set_var("L2S_WORKERS", "1");
    std::env::set_var("L2S_RESULTS_DIR", &seq_dir);
    l2s_bench::experiments::exp_hetero::run().unwrap();

    std::env::set_var("L2S_WORKERS", "4");
    std::env::set_var("L2S_RESULTS_DIR", &par_dir);
    l2s_bench::experiments::exp_hetero::run().unwrap();

    let sequential = std::fs::read(seq_dir.join("exp_hetero.csv")).unwrap();
    let parallel = std::fs::read(par_dir.join("exp_hetero.csv")).unwrap();
    assert!(
        !sequential.is_empty(),
        "sequential run produced an empty CSV"
    );
    let text = String::from_utf8(sequential.clone()).unwrap();
    for policy in ["jsq", "jiq", "sita"] {
        assert!(
            text.lines().any(|l| l.split(',').nth(2) == Some(policy)),
            "the surface should carry {policy} rows:\n{text}"
        );
    }
    assert!(
        text.lines()
            .any(|l| l.split(',').nth(2) == Some("model_bound")),
        "the surface should carry closed-form validation rows:\n{text}"
    );
    assert_eq!(
        sequential, parallel,
        "4-worker hetero CSV must be byte-identical to the sequential CSV"
    );
    let _ = std::fs::remove_dir_all(&base);
}
