//! Fault-injection determinism: the `exp_faults` experiment regenerated
//! with 4 workers must be byte-identical to the same experiment run
//! sequentially. The fault study is the hardest case for the executor's
//! index-ordered contract because its second stage derives each trace's
//! crash schedule from the first stage's healthy elapsed times — any
//! completion-order leakage in stage 1 would reshape the fault plans and
//! cascade through every downstream number.
//!
//! This file deliberately holds a single `#[test]`: the experiment reads
//! `L2S_WORKERS`, `L2S_BENCH_CAP`, and `L2S_RESULTS_DIR` from the
//! process environment, and a sibling test mutating them concurrently
//! would race. CI runs it with `L2S_WORKERS=4` exported as well, which
//! the explicit `set_var` calls below override per phase.

#[test]
fn fault_experiment_csv_is_byte_identical_across_worker_counts() {
    // Small cap so both runs finish in seconds; the cap is part of the
    // cell configuration, so it is identical across the two runs.
    std::env::set_var("L2S_BENCH_CAP", "2000");
    let base = std::env::temp_dir().join(format!("l2s-fault-det-{}", std::process::id()));
    let seq_dir = base.join("workers1");
    let par_dir = base.join("workers4");
    std::fs::create_dir_all(&seq_dir).unwrap();
    std::fs::create_dir_all(&par_dir).unwrap();

    std::env::set_var("L2S_WORKERS", "1");
    std::env::set_var("L2S_RESULTS_DIR", &seq_dir);
    l2s_bench::experiments::exp_faults::run().unwrap();

    std::env::set_var("L2S_WORKERS", "4");
    std::env::set_var("L2S_RESULTS_DIR", &par_dir);
    l2s_bench::experiments::exp_faults::run().unwrap();

    let sequential = std::fs::read(seq_dir.join("exp_faults.csv")).unwrap();
    let parallel = std::fs::read(par_dir.join("exp_faults.csv")).unwrap();
    assert!(
        !sequential.is_empty(),
        "sequential run produced an empty CSV"
    );
    let text = String::from_utf8(sequential.clone()).unwrap();
    assert!(
        text.lines().skip(1).any(|l| {
            let retried: u64 = l.split(',').nth(8).unwrap_or("0").parse().unwrap_or(0);
            retried > 0
        }),
        "the fault plan should strand (and retry) at least one request somewhere:\n{text}"
    );
    assert_eq!(
        sequential, parallel,
        "4-worker fault CSV must be byte-identical to the sequential CSV"
    );
    let _ = std::fs::remove_dir_all(&base);
}
