//! Non-stationary-workload determinism: the `exp_workload` experiment
//! regenerated with 4 workers must be byte-identical to the same
//! experiment run sequentially. This drives the modulation engine —
//! rate-schedule inversion, flash-crowd redirection, working-set drift
//! — end-to-end through the bench executor for every dispatcher, so
//! any completion-order dependence or RNG leakage in the modulated
//! path (the Modulator's private stream, the pending arrival pair, the
//! pass-base clock) shows up as a byte diff in either CSV.
//!
//! This file deliberately holds a single `#[test]`: the experiment
//! reads `L2S_WORKERS`, `L2S_BENCH_CAP`, and `L2S_RESULTS_DIR` from
//! the process environment, and a sibling test mutating them
//! concurrently would race. CI runs it with `L2S_WORKERS=4` exported
//! as well, which the explicit `set_var` calls below override per
//! phase.

#[test]
fn workload_experiment_csvs_are_byte_identical_across_worker_counts() {
    // Small cap so both runs finish in seconds; the cap is part of the
    // cell configuration, so it is identical across the two runs.
    std::env::set_var("L2S_BENCH_CAP", "2000");
    let base = std::env::temp_dir().join(format!("l2s-workload-det-{}", std::process::id()));
    let seq_dir = base.join("workers1");
    let par_dir = base.join("workers4");
    std::fs::create_dir_all(&seq_dir).unwrap();
    std::fs::create_dir_all(&par_dir).unwrap();

    std::env::set_var("L2S_WORKERS", "1");
    std::env::set_var("L2S_RESULTS_DIR", &seq_dir);
    l2s_bench::experiments::exp_workload::run().unwrap();

    std::env::set_var("L2S_WORKERS", "4");
    std::env::set_var("L2S_RESULTS_DIR", &par_dir);
    l2s_bench::experiments::exp_workload::run().unwrap();

    for csv in ["exp_workload.csv", "exp_workload_model.csv"] {
        let sequential = std::fs::read(seq_dir.join(csv)).unwrap();
        let parallel = std::fs::read(par_dir.join(csv)).unwrap();
        assert!(
            !sequential.is_empty(),
            "sequential run wrote an empty {csv}"
        );
        assert_eq!(
            sequential, parallel,
            "4-worker {csv} must be byte-identical to the sequential CSV"
        );
    }

    let text = std::fs::read_to_string(seq_dir.join("exp_workload.csv")).unwrap();
    for scenario in ["stationary", "drift", "flash"] {
        assert!(
            text.lines().any(|l| l.split(',').next() == Some(scenario)),
            "the degradation table should carry {scenario} rows:\n{text}"
        );
    }
    for policy in [
        "traditional",
        "round-robin",
        "lard",
        "l2s",
        "jsq",
        "jiq",
        "sita",
    ] {
        assert!(
            text.lines().any(|l| l.split(',').nth(1) == Some(policy)),
            "the degradation table should carry {policy} rows:\n{text}"
        );
    }
    let model = std::fs::read_to_string(seq_dir.join("exp_workload_model.csv")).unwrap();
    assert!(
        model.lines().count() >= 4,
        "the model-validation table should carry at least 3 scenarios:\n{model}"
    );
    let _ = std::fs::remove_dir_all(&base);
}
