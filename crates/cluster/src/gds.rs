//! GreedyDual-Size caching (Cao & Irani, USENIX Symposium on Internet
//! Technologies and Systems 1997) — the classic WWW cache replacement
//! policy, provided as an ablation against the paper's LRU.
//!
//! Each resident file carries a priority `H(f) = L + cost(f)/size(f)`
//! where `L` is an aging baseline. Eviction removes the minimum-priority
//! file and raises `L` to its priority; a hit refreshes the file's
//! priority with the current `L`. With unit cost (the variant
//! implemented here, "GDS(1)"), small files are preferentially kept —
//! appropriate when the goal is maximizing hit *count*.
//!
//! # Structure
//!
//! Per-file state lives in a dense `Vec` indexed by the interned
//! [`FileId`]; the eviction order lives in a binary min-heap of
//! `(priority bits, FileId)` keys with **lazy invalidation**: refreshing
//! a priority pushes a new key and leaves the old one in the heap to be
//! skipped when popped (a key is live iff its file is resident *and* the
//! bits match the file's current priority). Every live entry's current
//! key is always in the heap, so when eviction pops keys in ascending
//! order and discards the stale ones, the first live key to surface is
//! the true minimum over all live keys. The heap is compacted (rebuilt
//! from the dense table in file order, deterministically) when stale
//! keys outnumber live ones.

use crate::{CacheStats, FileId};
use l2s_util::{cast, invariant};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Priority key ordered as `(priority bits, file)`. Priorities are
/// non-negative finite floats, so their IEEE-754 bit patterns order
/// identically to their values.
type PriKey = (u64, FileId);

/// Dense per-file state. `resident == false` slots keep their last
/// values but are ignored everywhere.
#[derive(Clone, Copy, Debug, Default)]
struct GdsEntry {
    resident: bool,
    kb: f64,
    pri: f64,
}

/// A GreedyDual-Size(1) cache with a byte (KB) capacity.
#[derive(Clone, Debug)]
pub struct GdsCache {
    capacity_kb: f64,
    used_kb: f64,
    aging: f64,
    /// `entries[file.index()]` — grows on demand to the highest id seen.
    entries: Vec<GdsEntry>,
    /// Resident-file count.
    live: usize,
    /// Min-heap of possibly-stale priority keys (see module docs).
    heap: BinaryHeap<Reverse<PriKey>>,
    /// Victims of the latest `insert`, reused so eviction never allocates.
    evicted: Vec<FileId>,
    stats: CacheStats,
}

impl GdsCache {
    /// Creates a cache holding at most `capacity_kb` KB.
    pub fn new(capacity_kb: f64) -> Self {
        l2s_util::invariant!(
            capacity_kb > 0.0 && capacity_kb.is_finite(),
            "capacity must be positive"
        );
        GdsCache {
            capacity_kb,
            used_kb: 0.0,
            aging: 0.0,
            entries: Vec::new(),
            live: 0,
            heap: BinaryHeap::new(),
            evicted: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    fn priority(&self, kb: f64) -> f64 {
        self.aging + 1.0 / kb
    }

    fn key(pri: f64, file: FileId) -> PriKey {
        (pri.to_bits(), file)
    }

    #[inline]
    fn entry(&self, file: FileId) -> Option<&GdsEntry> {
        self.entries.get(file.index()).filter(|e| e.resident)
    }

    fn ensure_slot(&mut self, file: FileId) -> &mut GdsEntry {
        if self.entries.len() <= file.index() {
            self.entries.resize(file.index() + 1, GdsEntry::default());
        }
        &mut self.entries[file.index()]
    }

    /// Re-keys `file` to its current-aging priority and records the new
    /// key (the heap keeps the old key as a stale duplicate).
    fn refresh(&mut self, file: FileId, kb: f64) {
        let pri = self.priority(kb);
        let e = self.ensure_slot(file);
        e.resident = true;
        e.kb = kb;
        e.pri = pri;
        self.heap.push(Reverse(Self::key(pri, file)));
        self.maybe_compact();
    }

    /// Rebuilds the heap from the dense table once stale keys dominate.
    /// Iteration is in dense file order, so the rebuild (and therefore
    /// every subsequent pop) is deterministic.
    fn maybe_compact(&mut self) {
        if self.heap.len() <= 2 * self.live + 64 {
            return;
        }
        self.heap.clear();
        for (i, e) in self.entries.iter().enumerate() {
            if e.resident {
                self.heap.push(Reverse(Self::key(
                    e.pri,
                    FileId::from_raw(cast::index_u32(i)),
                )));
            }
        }
    }

    /// Configured capacity in KB.
    pub fn capacity_kb(&self) -> f64 {
        self.capacity_kb
    }

    /// Bytes currently resident, in KB.
    pub fn used_kb(&self) -> f64 {
        self.used_kb
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The current aging baseline `L` (for tests).
    pub fn aging(&self) -> f64 {
        self.aging
    }

    /// Whether `file` is resident, without touching priority or stats.
    pub fn contains(&self, file: impl Into<FileId>) -> bool {
        self.entry(file.into()).is_some()
    }

    /// Looks up `file`: on a hit, refreshes its priority and returns
    /// `true`. Updates statistics.
    pub fn touch(&mut self, file: impl Into<FileId>) -> bool {
        let file = file.into();
        match self.entry(file) {
            Some(e) => {
                let kb = e.kb;
                self.stats.hits += 1;
                self.refresh(file, kb);
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Pops heap keys until the minimum *live* one surfaces, and returns
    /// its file. `None` when no live key remains.
    fn pop_min_live(&mut self) -> Option<FileId> {
        while let Some(Reverse((bits, file))) = self.heap.pop() {
            let is_current = self
                .entries
                .get(file.index())
                .is_some_and(|e| e.resident && e.pri.to_bits() == bits);
            if is_current {
                return Some(file);
            }
        }
        None
    }

    /// Drops every resident file (a node crash wipes main memory) and
    /// resets the aging baseline — a rebooted node starts cold, exactly
    /// like a fresh cache. Statistics are kept: they describe the
    /// measurement window, not the cache contents.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.resident = false;
        }
        self.heap.clear();
        self.live = 0;
        self.used_kb = 0.0;
        self.aging = 0.0;
        self.evicted.clear();
    }

    /// Inserts `file` of `kb` KB, evicting minimum-priority files until
    /// it fits. Returns the evicted files (a borrow of internal scratch,
    /// valid until the next `insert`). Oversized files are not cached.
    pub fn insert(&mut self, file: impl Into<FileId>, kb: f64) -> &[FileId] {
        let file = file.into();
        l2s_util::invariant!(kb > 0.0 && kb.is_finite(), "file size must be positive");
        self.evicted.clear();
        if let Some(e) = self.entry(file) {
            if (e.kb - kb).abs() < 1e-12 {
                // Plain refresh.
                self.refresh(file, kb);
                return &self.evicted;
            }
            // Size changed: drop the stale residency and insert fresh
            // below, so growth goes through the eviction loop.
            self.used_kb -= e.kb;
            self.entries[file.index()].resident = false;
            self.live -= 1;
        }
        if kb > self.capacity_kb {
            return &self.evicted;
        }
        while self.used_kb + kb > self.capacity_kb {
            let Some(victim) = self.pop_min_live() else {
                invariant!(
                    false,
                    "GDS accounting out of sync: {used} KB resident but the priority queue is empty",
                    used = self.used_kb
                );
                break;
            };
            let e = &mut self.entries[victim.index()];
            e.resident = false;
            self.used_kb -= e.kb;
            self.aging = self.aging.max(e.pri);
            self.live -= 1;
            self.stats.evictions += 1;
            self.evicted.push(victim);
        }
        self.refresh(file, kb);
        self.live += 1;
        self.used_kb += kb;
        self.stats.insertions += 1;
        invariant!(
            self.used_kb <= self.capacity_kb + 1e-9,
            "GDS byte conservation violated: {used} KB resident exceeds capacity {cap} KB",
            used = self.used_kb,
            cap = self.capacity_kb
        );
        &self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_and_stats() {
        let mut c = GdsCache::new(100.0);
        assert!(c.insert(1, 40.0).is_empty());
        assert!(c.touch(1));
        assert!(!c.touch(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_kb(), 40.0);
    }

    #[test]
    fn prefers_keeping_small_files() {
        let mut c = GdsCache::new(100.0);
        c.insert(1, 80.0); // large: H = 1/80
        c.insert(2, 10.0); // small: H = 1/10
                           // A new insert that needs room evicts the large file first.
        let evicted = c.insert(3, 50.0);
        assert_eq!(evicted, vec![1], "large file evicted first");
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn aging_lets_new_files_displace_stale_small_ones() {
        let mut c = GdsCache::new(20.0);
        c.insert(1, 10.0); // H = 0.1
                           // Evictions raise L; eventually even files larger than old
                           // residents get in because L grows.
        for f in 2..50u32 {
            c.insert(f, 15.0);
        }
        assert!(c.aging() > 0.0);
        assert!(!c.contains(1), "stale small file aged out");
    }

    #[test]
    fn oversized_files_bypass() {
        let mut c = GdsCache::new(50.0);
        c.insert(1, 20.0);
        assert!(c.insert(2, 60.0).is_empty());
        assert!(!c.contains(2));
        assert!(c.contains(1));
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut rng = l2s_util::DetRng::new(5);
        let mut c = GdsCache::new(300.0);
        for _ in 0..5_000 {
            let f = FileId::from_raw(rng.below(100) as u32);
            if rng.chance(0.5) {
                c.touch(f);
            } else {
                c.insert(f, 1.0 + rng.f64() * 30.0);
            }
            assert!(c.used_kb() <= 300.0 + 1e-6);
            // Lazy invalidation: the heap may hold stale keys, but
            // compaction bounds them and every live entry stays keyed.
            assert!(c.heap.len() >= c.len(), "live key missing from heap");
            assert!(
                c.heap.len() <= 2 * c.len() + 64,
                "compaction failed to bound stale keys: {} keys for {} live",
                c.heap.len(),
                c.len()
            );
        }
    }

    #[test]
    fn clear_empties_contents_and_resets_aging() {
        let mut c = GdsCache::new(20.0);
        for f in 1..10u32 {
            c.insert(f, 15.0); // churn to raise the aging baseline
        }
        assert!(c.aging() > 0.0);
        let before = c.stats();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_kb(), 0.0);
        assert_eq!(c.aging(), 0.0, "rebooted node starts cold");
        assert_eq!(c.stats(), before, "stats describe the window");
        assert!(c.insert(1, 20.0).is_empty());
        assert!(c.touch(1));
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = GdsCache::new(100.0);
        c.insert(1, 10.0);
        c.touch(1);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.contains(1));
    }
}
