//! GreedyDual-Size caching (Cao & Irani, USENIX Symposium on Internet
//! Technologies and Systems 1997) — the classic WWW cache replacement
//! policy, provided as an ablation against the paper's LRU.
//!
//! Each resident file carries a priority `H(f) = L + cost(f)/size(f)`
//! where `L` is an aging baseline. Eviction removes the minimum-priority
//! file and raises `L` to its priority; a hit refreshes the file's
//! priority with the current `L`. With unit cost (the variant
//! implemented here, "GDS(1)"), small files are preferentially kept —
//! appropriate when the goal is maximizing hit *count*.

use crate::{CacheStats, FileId};
use l2s_util::invariant;
use std::collections::{BTreeMap, BTreeSet};

/// Priority key ordered as `(priority bits, file)`. Priorities are
/// non-negative finite floats, so their IEEE-754 bit patterns order
/// identically to their values.
type PriKey = (u64, FileId);

/// A GreedyDual-Size(1) cache with a byte (KB) capacity.
#[derive(Clone, Debug)]
pub struct GdsCache {
    capacity_kb: f64,
    used_kb: f64,
    aging: f64,
    entries: BTreeMap<FileId, (f64, f64)>, // file -> (kb, priority)
    queue: BTreeSet<PriKey>,
    stats: CacheStats,
}

impl GdsCache {
    /// Creates a cache holding at most `capacity_kb` KB.
    pub fn new(capacity_kb: f64) -> Self {
        assert!(
            capacity_kb > 0.0 && capacity_kb.is_finite(),
            "capacity must be positive"
        );
        GdsCache {
            capacity_kb,
            used_kb: 0.0,
            aging: 0.0,
            entries: BTreeMap::new(),
            queue: BTreeSet::new(),
            stats: CacheStats::default(),
        }
    }

    fn priority(&self, kb: f64) -> f64 {
        self.aging + 1.0 / kb
    }

    fn key(pri: f64, file: FileId) -> PriKey {
        (pri.to_bits(), file)
    }

    /// Configured capacity in KB.
    pub fn capacity_kb(&self) -> f64 {
        self.capacity_kb
    }

    /// Bytes currently resident, in KB.
    pub fn used_kb(&self) -> f64 {
        self.used_kb
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The current aging baseline `L` (for tests).
    pub fn aging(&self) -> f64 {
        self.aging
    }

    /// Whether `file` is resident, without touching priority or stats.
    pub fn contains(&self, file: FileId) -> bool {
        self.entries.contains_key(&file)
    }

    /// Looks up `file`: on a hit, refreshes its priority and returns
    /// `true`. Updates statistics.
    pub fn touch(&mut self, file: FileId) -> bool {
        match self.entries.get(&file).copied() {
            Some((kb, old_pri)) => {
                self.stats.hits += 1;
                let new_pri = self.priority(kb);
                self.queue.remove(&Self::key(old_pri, file));
                self.queue.insert(Self::key(new_pri, file));
                self.entries.insert(file, (kb, new_pri));
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Inserts `file` of `kb` KB, evicting minimum-priority files until
    /// it fits. Returns the evicted files. Oversized files are not
    /// cached.
    pub fn insert(&mut self, file: FileId, kb: f64) -> Vec<FileId> {
        assert!(kb > 0.0 && kb.is_finite(), "file size must be positive");
        if let Some((old_kb, old_pri)) = self.entries.get(&file).copied() {
            if (old_kb - kb).abs() < 1e-12 {
                // Plain refresh.
                self.queue.remove(&Self::key(old_pri, file));
                let pri = self.priority(kb);
                self.queue.insert(Self::key(pri, file));
                self.entries.insert(file, (kb, pri));
                return Vec::new();
            }
            // Size changed: drop the stale entry and insert fresh below,
            // so growth goes through the eviction loop.
            self.queue.remove(&Self::key(old_pri, file));
            self.entries.remove(&file);
            self.used_kb -= old_kb;
        }
        if kb > self.capacity_kb {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used_kb + kb > self.capacity_kb {
            let Some(&(pri_bits, victim)) = self.queue.first() else {
                invariant!(
                    false,
                    "GDS accounting out of sync: {used} KB resident but the priority queue is empty",
                    used = self.used_kb
                );
                break;
            };
            self.queue.remove(&(pri_bits, victim));
            let removed = self.entries.remove(&victim);
            invariant!(
                removed.is_some(),
                "GDS queue/map desync: victim {victim} has no entry"
            );
            let Some((vkb, vpri)) = removed else { break };
            self.used_kb -= vkb;
            self.aging = self.aging.max(vpri);
            self.stats.evictions += 1;
            evicted.push(victim);
        }
        let pri = self.priority(kb);
        self.queue.insert(Self::key(pri, file));
        self.entries.insert(file, (kb, pri));
        self.used_kb += kb;
        self.stats.insertions += 1;
        invariant!(
            self.used_kb <= self.capacity_kb + 1e-9,
            "GDS byte conservation violated: {used} KB resident exceeds capacity {cap} KB",
            used = self.used_kb,
            cap = self.capacity_kb
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_touch_and_stats() {
        let mut c = GdsCache::new(100.0);
        assert!(c.insert(1, 40.0).is_empty());
        assert!(c.touch(1));
        assert!(!c.touch(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_kb(), 40.0);
    }

    #[test]
    fn prefers_keeping_small_files() {
        let mut c = GdsCache::new(100.0);
        c.insert(1, 80.0); // large: H = 1/80
        c.insert(2, 10.0); // small: H = 1/10
                           // A new insert that needs room evicts the large file first.
        let evicted = c.insert(3, 50.0);
        assert_eq!(evicted, vec![1], "large file evicted first");
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn aging_lets_new_files_displace_stale_small_ones() {
        let mut c = GdsCache::new(20.0);
        c.insert(1, 10.0); // H = 0.1
                           // Evictions raise L; eventually even files larger than old
                           // residents get in because L grows.
        for f in 2..50u32 {
            c.insert(f, 15.0);
        }
        assert!(c.aging() > 0.0);
        assert!(!c.contains(1), "stale small file aged out");
    }

    #[test]
    fn oversized_files_bypass() {
        let mut c = GdsCache::new(50.0);
        c.insert(1, 20.0);
        assert!(c.insert(2, 60.0).is_empty());
        assert!(!c.contains(2));
        assert!(c.contains(1));
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut rng = l2s_util::DetRng::new(5);
        let mut c = GdsCache::new(300.0);
        for _ in 0..5_000 {
            let f = rng.below(100) as FileId;
            if rng.chance(0.5) {
                c.touch(f);
            } else {
                c.insert(f, 1.0 + rng.f64() * 30.0);
            }
            assert!(c.used_kb() <= 300.0 + 1e-6);
            assert_eq!(c.queue.len(), c.entries.len(), "queue/map desync");
        }
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = GdsCache::new(100.0);
        c.insert(1, 10.0);
        c.touch(1);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.contains(1));
    }
}
