//! Replacement-policy-polymorphic file cache.

use crate::{CacheStats, FileId, GdsCache, LruCache};

/// Which replacement policy a node's main-memory cache runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Least-recently-used over whole files (the paper's policy).
    #[default]
    Lru,
    /// GreedyDual-Size(1) (Cao & Irani 1997) — ablation.
    GreedyDualSize,
}

/// A file cache with a selectable replacement policy, presenting the
/// interface the simulator uses.
#[derive(Clone, Debug)]
pub enum FileCache {
    /// LRU-backed cache.
    Lru(LruCache),
    /// GreedyDual-Size-backed cache.
    Gds(GdsCache),
}

impl FileCache {
    /// Creates a cache of `capacity_kb` KB with the given policy.
    pub fn new(policy: CachePolicy, capacity_kb: f64) -> Self {
        match policy {
            CachePolicy::Lru => FileCache::Lru(LruCache::new(capacity_kb)),
            CachePolicy::GreedyDualSize => FileCache::Gds(GdsCache::new(capacity_kb)),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> CachePolicy {
        match self {
            FileCache::Lru(_) => CachePolicy::Lru,
            FileCache::Gds(_) => CachePolicy::GreedyDualSize,
        }
    }

    /// Configured capacity in KB.
    pub fn capacity_kb(&self) -> f64 {
        match self {
            FileCache::Lru(c) => c.capacity_kb(),
            FileCache::Gds(c) => c.capacity_kb(),
        }
    }

    /// Bytes currently resident, in KB.
    pub fn used_kb(&self) -> f64 {
        match self {
            FileCache::Lru(c) => c.used_kb(),
            FileCache::Gds(c) => c.used_kb(),
        }
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        match self {
            FileCache::Lru(c) => c.len(),
            FileCache::Gds(c) => c.len(),
        }
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `file` is resident (no stats/recency side effects).
    pub fn contains(&self, file: impl Into<FileId>) -> bool {
        match self {
            FileCache::Lru(c) => c.contains(file),
            FileCache::Gds(c) => c.contains(file),
        }
    }

    /// Looks up `file`, refreshing its replacement state on a hit.
    pub fn touch(&mut self, file: impl Into<FileId>) -> bool {
        match self {
            FileCache::Lru(c) => c.touch(file),
            FileCache::Gds(c) => c.touch(file),
        }
    }

    /// Inserts `file` of `kb` KB; returns the evicted files (a borrow of
    /// the underlying cache's scratch, valid until the next `insert`).
    pub fn insert(&mut self, file: impl Into<FileId>, kb: f64) -> &[FileId] {
        match self {
            FileCache::Lru(c) => c.insert(file, kb),
            FileCache::Gds(c) => c.insert(file, kb),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        match self {
            FileCache::Lru(c) => c.stats(),
            FileCache::Gds(c) => c.stats(),
        }
    }

    /// Zeroes the statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        match self {
            FileCache::Lru(c) => c.reset_stats(),
            FileCache::Gds(c) => c.reset_stats(),
        }
    }

    /// Drops every resident file (a node crash wipes main memory),
    /// keeping statistics.
    pub fn clear(&mut self) {
        match self {
            FileCache::Lru(c) => c.clear(),
            FileCache::Gds(c) => c.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_share_the_interface() {
        for policy in [CachePolicy::Lru, CachePolicy::GreedyDualSize] {
            let mut c = FileCache::new(policy, 100.0);
            assert_eq!(c.policy(), policy);
            assert!(c.is_empty());
            c.insert(1, 30.0);
            assert!(c.contains(1));
            assert!(c.touch(1));
            assert!(!c.touch(2));
            assert_eq!(c.len(), 1);
            assert_eq!(c.used_kb(), 30.0);
            assert_eq!(c.capacity_kb(), 100.0);
            let s = c.stats();
            assert_eq!((s.hits, s.misses), (1, 1));
            c.reset_stats();
            assert_eq!(c.stats().hits, 0);
        }
    }

    #[test]
    fn clear_works_under_both_policies() {
        for policy in [CachePolicy::Lru, CachePolicy::GreedyDualSize] {
            let mut c = FileCache::new(policy, 100.0);
            c.insert(1, 30.0);
            c.touch(1);
            let stats = c.stats();
            c.clear();
            assert!(c.is_empty());
            assert!(!c.contains(1));
            assert_eq!(c.used_kb(), 0.0);
            assert_eq!(c.stats(), stats);
        }
    }

    #[test]
    fn default_policy_is_lru() {
        assert_eq!(CachePolicy::default(), CachePolicy::Lru);
    }

    #[test]
    fn policies_differ_on_size_skewed_eviction() {
        // One big + small files; a new insert evicts differently.
        let build = |policy| {
            let mut c = FileCache::new(policy, 100.0);
            c.insert(1, 70.0); // big, oldest
            c.insert(2, 10.0);
            c.insert(3, 10.0);
            // Touch 1 so it is MRU for LRU purposes.
            c.touch(1);
            c.insert(4, 30.0).to_vec()
        };
        let lru_evicted = build(CachePolicy::Lru);
        let gds_evicted = build(CachePolicy::GreedyDualSize);
        // LRU evicts by recency (2 then 3); GDS evicts the big file.
        assert_eq!(lru_evicted, vec![2, 3]);
        assert_eq!(gds_evicted, vec![1]);
    }
}
