//! Heterogeneous cluster composition.
//!
//! The paper evaluates identical nodes; real clusters mix generations
//! of hardware. A [`HeteroSpec`] describes the mix as a small list of
//! node classes — each with a population weight, a CPU speed multiplier,
//! and cache / NI-buffer scale factors — and expands deterministically
//! into per-node [`NodeProfile`]s for any cluster size. Van der Boor &
//! Comte's product-form analysis of load balancing on heterogeneous
//! clusters (see PAPERS.md) is the analytic companion: in the fluid
//! limit the saturation throughput of a CPU-bound heterogeneous cluster
//! depends on the *aggregate* speed `Σᵢ sᵢ`, which `crates/model`
//! validates the simulator against.
//!
//! Expansion assigns classes to contiguous node-id blocks by largest-
//! remainder apportionment, so the same spec yields the same profiles at
//! every cluster size and worker count — a prerequisite for the
//! simulator's byte-identical determinism contract.

use l2s_util::{cast, invariant};

/// One class of nodes in a heterogeneous cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeClass {
    /// Relative share of the cluster population (any positive scale;
    /// shares are normalized over the spec).
    pub weight: f64,
    /// CPU speed multiplier relative to the paper's 300 MHz baseline
    /// node: CPU service times divide by this factor.
    pub cpu_speed: f64,
    /// Main-memory cache scale factor applied to the configured per-node
    /// cache size.
    pub cache_factor: f64,
    /// Inbound-NI buffer scale factor applied to the configured buffer
    /// depth (rounded, floor 1 message).
    pub ni_buffer_factor: f64,
}

/// Concrete hardware of one node, expanded from a [`HeteroSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeProfile {
    /// CPU speed multiplier (1.0 = the paper's baseline node).
    pub cpu_speed: f64,
    /// Cache capacity in KB.
    pub cache_kb: f64,
    /// Inbound-NI buffer depth in messages.
    pub ni_buffer: usize,
}

/// A validated description of a heterogeneous cluster as a mix of node
/// classes. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct HeteroSpec {
    classes: Vec<NodeClass>,
}

impl HeteroSpec {
    /// Builds a spec from a class mix, validating every parameter.
    pub fn new(classes: Vec<NodeClass>) -> Result<Self, String> {
        if classes.is_empty() {
            return Err("hetero spec needs at least one node class".into());
        }
        for (i, c) in classes.iter().enumerate() {
            if !(c.weight.is_finite() && c.weight > 0.0) {
                return Err(format!("class {i}: weight must be positive and finite"));
            }
            if !(c.cpu_speed.is_finite() && c.cpu_speed > 0.0) {
                return Err(format!("class {i}: cpu_speed must be positive and finite"));
            }
            if !(c.cache_factor.is_finite() && c.cache_factor > 0.0) {
                return Err(format!(
                    "class {i}: cache_factor must be positive and finite"
                ));
            }
            if !(c.ni_buffer_factor.is_finite() && c.ni_buffer_factor > 0.0) {
                return Err(format!(
                    "class {i}: ni_buffer_factor must be positive and finite"
                ));
            }
        }
        Ok(HeteroSpec { classes })
    }

    /// A single-class spec at baseline speed — expands to exactly the
    /// homogeneous cluster the rest of the simulator builds by default.
    pub fn uniform() -> Self {
        HeteroSpec {
            classes: vec![NodeClass {
                weight: 1.0,
                cpu_speed: 1.0,
                cache_factor: 1.0,
                ni_buffer_factor: 1.0,
            }],
        }
    }

    /// A mildly mixed cluster: half the nodes one hardware generation
    /// ahead (1.5× CPU, 1.5× memory), half one behind (0.75×/0.75×).
    /// Aggregate CPU capacity ≈ 1.125× the homogeneous cluster's.
    pub fn mild() -> Self {
        HeteroSpec {
            classes: vec![
                NodeClass {
                    weight: 1.0,
                    cpu_speed: 1.5,
                    cache_factor: 1.5,
                    ni_buffer_factor: 1.0,
                },
                NodeClass {
                    weight: 1.0,
                    cpu_speed: 0.75,
                    cache_factor: 0.75,
                    ni_buffer_factor: 1.0,
                },
            ],
        }
    }

    /// An extreme mix: one quarter big machines (4× CPU, 4× memory,
    /// doubled NI buffers), three quarters half-speed stragglers — the
    /// few-fast-many-slow regime van der Boor & Comte's heterogeneous
    /// model targets. Aggregate CPU capacity ≈ 1.375× homogeneous.
    pub fn extreme() -> Self {
        HeteroSpec {
            classes: vec![
                NodeClass {
                    weight: 1.0,
                    cpu_speed: 4.0,
                    cache_factor: 4.0,
                    ni_buffer_factor: 2.0,
                },
                NodeClass {
                    weight: 3.0,
                    cpu_speed: 0.5,
                    cache_factor: 0.5,
                    ni_buffer_factor: 1.0,
                },
            ],
        }
    }

    /// The class mix.
    pub fn classes(&self) -> &[NodeClass] {
        &self.classes
    }

    /// How many of `n` nodes each class gets, by largest-remainder
    /// apportionment (ties to the earlier class). Every class with
    /// positive weight gets its share; totals always sum to `n`.
    fn class_counts(&self, n: usize) -> Vec<usize> {
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        let quotas: Vec<f64> = self
            .classes
            .iter()
            .map(|c| cast::len_f64(n) * c.weight / total_weight)
            .collect();
        let mut counts: Vec<usize> = quotas.iter().map(|&q| cast::floor_index(q)).collect();
        let assigned: usize = counts.iter().sum();
        // Hand the leftover seats to the largest fractional remainders;
        // the sort is by (remainder desc, class index asc) so the order
        // is total and platform-independent.
        let mut order: Vec<usize> = (0..self.classes.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = quotas[a] - cast::len_f64(counts[a]);
            let rb = quotas[b] - cast::len_f64(counts[b]);
            rb.total_cmp(&ra).then(a.cmp(&b))
        });
        for i in 0..n - assigned {
            counts[order[i % order.len()]] += 1;
        }
        counts
    }

    /// Expands the spec into one [`NodeProfile`] per node for an
    /// `n`-node cluster with `base_cache_kb` of cache and `base_ni_buffer`
    /// inbound-NI messages on the baseline class. Classes occupy
    /// contiguous node-id blocks in declaration order.
    pub fn profiles(
        &self,
        n: usize,
        base_cache_kb: f64,
        base_ni_buffer: usize,
    ) -> Vec<NodeProfile> {
        invariant!(n >= 1, "need at least one node");
        let counts = self.class_counts(n);
        let mut profiles = Vec::with_capacity(n);
        for (class, &count) in self.classes.iter().zip(&counts) {
            let ni =
                cast::floor_index((cast::len_f64(base_ni_buffer) * class.ni_buffer_factor).round())
                    .max(1);
            for _ in 0..count {
                profiles.push(NodeProfile {
                    cpu_speed: class.cpu_speed,
                    cache_kb: base_cache_kb * class.cache_factor,
                    ni_buffer: ni,
                });
            }
        }
        profiles
    }

    /// Per-node CPU speed multipliers for an `n`-node cluster (the
    /// cache/buffer parameters do not affect speeds).
    pub fn speeds(&self, n: usize) -> Vec<f64> {
        self.profiles(n, 1.0, 1)
            .iter()
            .map(|p| p.cpu_speed)
            .collect()
    }

    /// Aggregate CPU capacity of an `n`-node cluster in baseline-node
    /// units: `Σᵢ sᵢ` — the quantity the heterogeneous closed form's
    /// CPU station is sized by.
    pub fn total_speed(&self, n: usize) -> f64 {
        self.speeds(n).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_expands_to_the_homogeneous_cluster() {
        let profiles = HeteroSpec::uniform().profiles(4, 1000.0, 64);
        assert_eq!(profiles.len(), 4);
        for p in &profiles {
            assert_eq!(p.cpu_speed, 1.0);
            assert_eq!(p.cache_kb, 1000.0);
            assert_eq!(p.ni_buffer, 64);
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(HeteroSpec::new(vec![]).is_err());
        let bad = NodeClass {
            weight: 1.0,
            cpu_speed: 0.0,
            cache_factor: 1.0,
            ni_buffer_factor: 1.0,
        };
        assert!(HeteroSpec::new(vec![bad]).is_err());
        let nan = NodeClass {
            weight: f64::NAN,
            cpu_speed: 1.0,
            cache_factor: 1.0,
            ni_buffer_factor: 1.0,
        };
        assert!(HeteroSpec::new(vec![nan]).is_err());
        HeteroSpec::new(vec![NodeClass {
            weight: 2.0,
            cpu_speed: 1.5,
            cache_factor: 1.0,
            ni_buffer_factor: 1.0,
        }])
        .unwrap();
    }

    #[test]
    fn apportionment_is_exact_and_deterministic() {
        let spec = HeteroSpec::extreme(); // weights 1 : 3
        for n in [1, 2, 4, 7, 8, 12, 16, 1024] {
            let profiles = spec.profiles(n, 100.0, 8);
            assert_eq!(profiles.len(), n, "n={n}");
            let again = spec.profiles(n, 100.0, 8);
            assert_eq!(profiles, again, "expansion must be deterministic");
        }
        // At 8 nodes, 1:3 gives exactly 2 fast and 6 slow.
        let p8 = spec.profiles(8, 100.0, 8);
        assert_eq!(p8.iter().filter(|p| p.cpu_speed == 4.0).count(), 2);
        assert_eq!(p8.iter().filter(|p| p.cpu_speed == 0.5).count(), 6);
        // Fast nodes sit in a contiguous leading block.
        assert_eq!(p8[0].cpu_speed, 4.0);
        assert_eq!(p8[1].cpu_speed, 4.0);
        assert_eq!(p8[2].cpu_speed, 0.5);
    }

    #[test]
    fn factors_scale_cache_and_buffers() {
        let p = HeteroSpec::extreme().profiles(8, 1000.0, 8);
        assert_eq!(p[0].cache_kb, 4000.0);
        assert_eq!(p[0].ni_buffer, 16);
        assert_eq!(p[7].cache_kb, 500.0);
        assert_eq!(p[7].ni_buffer, 8, "slow class keeps the baseline buffer");
    }

    #[test]
    fn tiny_clusters_still_get_every_profile_count_right() {
        // 1 node under a 1:3 mix: the slow class has the larger quota.
        let p = HeteroSpec::extreme().profiles(1, 100.0, 8);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].cpu_speed, 0.5);
    }

    #[test]
    fn aggregate_speed_matches_the_mix() {
        let spec = HeteroSpec::mild();
        // 8 nodes at 1:1 → 4 × 1.5 + 4 × 0.75 = 9.
        assert!((spec.total_speed(8) - 9.0).abs() < 1e-12);
        assert_eq!(spec.speeds(8).len(), 8);
    }

    #[test]
    fn ni_buffer_never_rounds_to_zero() {
        let spec = HeteroSpec::new(vec![NodeClass {
            weight: 1.0,
            cpu_speed: 1.0,
            cache_factor: 1.0,
            ni_buffer_factor: 0.01,
        }])
        .unwrap();
        assert_eq!(spec.profiles(2, 100.0, 4)[0].ni_buffer, 1);
    }
}
