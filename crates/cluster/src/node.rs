//! One cluster node's contended stations and cache.

use crate::{CachePolicy, FileCache, FileId};
use l2s_devs::FifoResource;
use l2s_util::{SimDuration, SimTime};

/// The hardware of one cluster node: the four contended FIFO stations
/// (CPU, disk, inbound NI, outbound NI) plus the main-memory file cache.
///
/// The simulator owns the event loop; `NodeHardware` provides the
/// stations and bookkeeping so every server flavor (traditional, LARD,
/// L2S) shares identical hardware modeling.
#[derive(Clone, Debug)]
pub struct NodeHardware {
    /// Processor (parse, forward, reply, and message handling).
    pub cpu: FifoResource,
    /// Local disk.
    pub disk: FifoResource,
    /// Inbound network interface.
    pub ni_in: FifoResource,
    /// Outbound network interface.
    pub ni_out: FifoResource,
    /// Main-memory file cache.
    pub cache: FileCache,
    /// Requests this node finished serving (since last stats reset).
    pub completed: u64,
}

impl NodeHardware {
    /// A node with `cache_kb` of LRU-managed main memory and an
    /// inbound-NI buffer of `ni_buffer` requests (the admission bound of
    /// Section 5.1).
    pub fn new(cache_kb: f64, ni_buffer: usize) -> Self {
        Self::with_policy(CachePolicy::Lru, cache_kb, ni_buffer)
    }

    /// A node whose cache runs the given replacement policy.
    pub fn with_policy(policy: CachePolicy, cache_kb: f64, ni_buffer: usize) -> Self {
        NodeHardware {
            cpu: FifoResource::new(),
            disk: FifoResource::new(),
            ni_in: FifoResource::with_capacity(ni_buffer),
            ni_out: FifoResource::new(),
            cache: FileCache::new(policy, cache_kb),
            completed: 0,
        }
    }

    /// Looks the file up in the cache (recording hit/miss) and, on a
    /// miss, inserts it after its disk read. Returns whether it hit.
    pub fn access_file(&mut self, file: impl Into<FileId>, kb: f64) -> bool {
        let file = file.into();
        if self.cache.touch(file) {
            true
        } else {
            self.cache.insert(file, kb);
            false
        }
    }

    /// Warms the cache with one file reference without touching hit/miss
    /// statistics (used for the pre-measurement warm-up pass).
    pub fn warm_file(&mut self, file: impl Into<FileId>, kb: f64) {
        // Insert refreshes replacement state when already resident.
        self.cache.insert(file, kb);
    }

    /// CPU idle fraction over a measurement window.
    pub fn cpu_idle_fraction(&self, window: SimDuration) -> f64 {
        1.0 - self.cpu.utilization(window)
    }

    /// Zeroes all statistics (stations, cache, completion counter)
    /// without disturbing in-flight state or cache contents.
    pub fn reset_stats(&mut self) {
        self.cpu.reset_stats();
        self.disk.reset_stats();
        self.ni_in.reset_stats();
        self.ni_out.reset_stats();
        self.cache.reset_stats();
        self.completed = 0;
    }

    /// Whether the inbound NI would accept one more request at `now`.
    /// Pure query.
    pub fn accepts_request(&self, now: SimTime) -> bool {
        self.ni_in.would_accept(now)
    }

    /// The node crashes at `now`: main memory (the file cache) is wiped
    /// and every station discards its queued and in-flight work, so the
    /// node comes back idle and cold when it recovers. Window statistics
    /// (completed count, performed busy time, cache hit/miss counters)
    /// are kept — they describe what happened, not what survives.
    pub fn crash(&mut self, now: SimTime) {
        self.cpu.reset_in_flight(now);
        self.disk.reset_in_flight(now);
        self.ni_in.reset_in_flight(now);
        self.ni_out.reset_in_flight(now);
        self.cache.clear();
    }
}

/// Convenience: builds `n` identical nodes.
pub fn build_nodes(
    n: usize,
    policy: CachePolicy,
    cache_kb: f64,
    ni_buffer: usize,
) -> Vec<NodeHardware> {
    (0..n)
        .map(|_| NodeHardware::with_policy(policy, cache_kb, ni_buffer))
        .collect()
}

/// Builds one node per [`NodeProfile`](crate::NodeProfile) — the
/// heterogeneous-cluster counterpart of [`build_nodes`]. CPU speed is
/// not node hardware state: the engine owns the clock and scales CPU
/// service times by the profile's multiplier when it schedules work.
pub fn build_nodes_profiled(
    profiles: &[crate::NodeProfile],
    policy: CachePolicy,
) -> Vec<NodeHardware> {
    profiles
        .iter()
        .map(|p| NodeHardware::with_policy(policy, p.cache_kb, p.ni_buffer))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2s_util::SimDuration;

    #[test]
    fn access_records_hits_and_misses() {
        let mut n = NodeHardware::new(100.0, 8);
        assert!(!n.access_file(1, 10.0), "first access misses");
        assert!(n.access_file(1, 10.0), "second access hits");
        let s = n.cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
    }

    #[test]
    fn warm_does_not_touch_stats() {
        let mut n = NodeHardware::new(100.0, 8);
        n.warm_file(1, 10.0);
        n.warm_file(2, 10.0);
        assert_eq!(n.cache.stats().hits + n.cache.stats().misses, 0);
        assert!(n.access_file(1, 10.0), "warmed file hits");
    }

    #[test]
    fn reset_preserves_cache_contents() {
        let mut n = NodeHardware::new(100.0, 8);
        n.access_file(1, 10.0);
        n.completed = 5;
        n.reset_stats();
        assert_eq!(n.completed, 0);
        assert_eq!(n.cache.stats().misses, 0);
        assert!(n.cache.contains(1));
    }

    #[test]
    fn idle_fraction_complements_utilization() {
        let mut n = NodeHardware::new(100.0, 8);
        let now = SimTime::ZERO;
        n.cpu.schedule(now, SimDuration::from_millis(250));
        let idle = n.cpu_idle_fraction(SimDuration::from_millis(1000));
        assert!((idle - 0.75).abs() < 1e-9);
    }

    #[test]
    fn ni_buffer_limits_admission() {
        let mut n = NodeHardware::new(100.0, 2);
        let now = SimTime::ZERO;
        let svc = SimDuration::from_millis(10);
        assert!(n.accepts_request(now));
        n.ni_in.try_schedule(now, svc).unwrap();
        n.ni_in.try_schedule(now, svc).unwrap();
        assert!(!n.accepts_request(now), "buffer of 2 is full");
    }

    #[test]
    fn crash_wipes_cache_and_in_flight_work_but_keeps_stats() {
        let mut n = NodeHardware::new(100.0, 2);
        n.access_file(1, 10.0);
        n.completed = 3;
        let t = SimTime::from_nanos(500);
        n.cpu.schedule(t, SimDuration::from_millis(10));
        n.ni_in
            .try_schedule(t, SimDuration::from_millis(10))
            .unwrap();
        n.ni_in
            .try_schedule(t, SimDuration::from_millis(10))
            .unwrap();
        assert!(!n.accepts_request(t));
        let crash_at = SimTime::from_nanos(600);
        n.crash(crash_at);
        assert!(n.cache.is_empty(), "main memory wiped");
        assert!(n.accepts_request(crash_at), "NI backlog dropped");
        assert_eq!(n.cpu.free_at(), crash_at);
        assert_eq!(n.completed, 3, "window stats survive the crash");
        assert_eq!(n.cache.stats().misses, 1);
    }

    #[test]
    fn build_nodes_makes_identical_nodes() {
        let nodes = build_nodes(4, CachePolicy::Lru, 64.0, 16);
        assert_eq!(nodes.len(), 4);
        for n in &nodes {
            assert_eq!(n.cache.capacity_kb(), 64.0);
            assert_eq!(n.cache.policy(), CachePolicy::Lru);
        }
    }

    #[test]
    fn nodes_can_run_gds_caches() {
        let n = NodeHardware::with_policy(CachePolicy::GreedyDualSize, 64.0, 16);
        assert_eq!(n.cache.policy(), CachePolicy::GreedyDualSize);
    }

    #[test]
    fn profiled_nodes_follow_their_profiles() {
        let profiles = crate::HeteroSpec::extreme().profiles(4, 1000.0, 8);
        let nodes = build_nodes_profiled(&profiles, CachePolicy::Lru);
        assert_eq!(nodes.len(), 4);
        for (node, profile) in nodes.iter().zip(&profiles) {
            assert_eq!(node.cache.capacity_kb(), profile.cache_kb);
        }
        // The big node's cache dwarfs the stragglers'.
        assert!(nodes[0].cache.capacity_kb() > nodes[3].cache.capacity_kb());
    }
}
