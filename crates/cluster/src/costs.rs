//! Per-operation service times — Table 1 and the Section 5.1 M-VIA
//! message cost breakdown.

use l2s_util::SimDuration;

/// Every service time one node charges for request processing and
/// cluster messaging. Defaults are the paper's values.
///
/// Message costs follow the paper's M-VIA measurement: a 4-byte message
/// takes 19 µs one way — 3 µs of CPU on each end, 6 µs in each network
/// interface, and 1 µs in the switch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeCosts {
    /// `1/µp` — CPU time to read and parse one request (158.7 µs).
    pub parse_s: f64,
    /// `1/µf` — CPU time to forward (hand off) one request (100 µs).
    pub forward_s: f64,
    /// `µm` overhead — CPU time to start a reply from memory (100 µs).
    pub mem_overhead_s: f64,
    /// `µm` bandwidth — CPU-limited reply streaming rate (12 000 KB/s).
    pub mem_kb_per_s: f64,
    /// `µd` overhead — one disk access incl. directory (28 ms).
    pub disk_overhead_s: f64,
    /// `µd` bandwidth — disk transfer rate (10 000 KB/s).
    pub disk_kb_per_s: f64,
    /// `1/µi` — NI time to receive one client request (7.14 µs).
    pub ni_in_s: f64,
    /// `µo` overhead — NI per-message cost (3 µs).
    pub ni_out_overhead_s: f64,
    /// `µo` bandwidth — NI link rate (128 000 KB/s = 1 Gbit/s).
    pub ni_out_kb_per_s: f64,
    /// CPU cost to send or receive one small cluster message (3 µs).
    pub msg_cpu_s: f64,
    /// NI cost to send or receive one small cluster message (6 µs).
    pub msg_ni_s: f64,
    /// Switch traversal latency (1 µs, contention-free).
    pub switch_s: f64,
}

impl Default for NodeCosts {
    fn default() -> Self {
        NodeCosts {
            parse_s: 1.0 / 6_300.0,
            forward_s: 1.0 / 10_000.0,
            mem_overhead_s: 0.0001,
            mem_kb_per_s: 12_000.0,
            disk_overhead_s: 0.028,
            disk_kb_per_s: 10_000.0,
            ni_in_s: 1.0 / 140_000.0,
            ni_out_overhead_s: 0.000_003,
            ni_out_kb_per_s: 128_000.0,
            msg_cpu_s: 0.000_003,
            msg_ni_s: 0.000_006,
            switch_s: 0.000_001,
        }
    }
}

impl NodeCosts {
    /// CPU time to stream a `kb`-KB reply from memory (`1/µm`).
    #[inline]
    pub fn mem_reply(&self, kb: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.mem_overhead_s + kb / self.mem_kb_per_s)
    }

    /// Disk time to read a `kb`-KB file (`1/µd`).
    #[inline]
    pub fn disk_read(&self, kb: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.disk_overhead_s + kb / self.disk_kb_per_s)
    }

    /// NI time to push `kb` KB onto the link (`1/µo`).
    #[inline]
    pub fn ni_out(&self, kb: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.ni_out_overhead_s + kb / self.ni_out_kb_per_s)
    }

    /// NI time to receive one client request (`1/µi`).
    #[inline]
    pub fn ni_in(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.ni_in_s)
    }

    /// CPU time to parse one request (`1/µp`).
    #[inline]
    pub fn parse(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.parse_s)
    }

    /// CPU time to hand a request off to another node (`1/µf`).
    #[inline]
    pub fn forward(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.forward_s)
    }

    /// CPU time to send or receive one small cluster message.
    #[inline]
    pub fn msg_cpu(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.msg_cpu_s)
    }

    /// NI time to send or receive one small cluster message.
    #[inline]
    pub fn msg_ni(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.msg_ni_s)
    }

    /// Switch traversal latency.
    #[inline]
    pub fn switch(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.switch_s)
    }

    /// One-way latency of a small cluster message on an idle cluster:
    /// send CPU + send NI + switch + receive NI + receive CPU. The paper
    /// quotes 19 µs for a 4-byte message; the default costs reproduce it.
    pub fn one_way_message(&self) -> SimDuration {
        self.msg_cpu() + self.msg_ni() + self.switch() + self.msg_ni() + self.msg_cpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = NodeCosts::default();
        assert!((c.parse_s - 1.0 / 6300.0).abs() < 1e-12);
        assert!((c.forward_s - 0.0001).abs() < 1e-12);
        assert_eq!(c.disk_overhead_s, 0.028);
        assert_eq!(c.disk_kb_per_s, 10_000.0);
        assert_eq!(c.ni_out_kb_per_s, 128_000.0);
    }

    #[test]
    fn m_via_message_is_19_microseconds() {
        let c = NodeCosts::default();
        assert_eq!(c.one_way_message().as_nanos(), 19_000);
    }

    #[test]
    fn service_time_helpers() {
        let c = NodeCosts::default();
        // 12 KB from memory: 100 µs + 1 ms.
        assert_eq!(c.mem_reply(12.0).as_nanos(), 1_100_000);
        // 10 KB from disk: 28 ms + 1 ms.
        assert_eq!(c.disk_read(10.0).as_nanos(), 29_000_000);
        // 128 KB out the NI: 3 µs + 1 ms.
        assert_eq!(c.ni_out(128.0).as_nanos(), 1_003_000);
        // Request receipt: 1/140000 s ≈ 7.143 µs.
        assert_eq!(c.ni_in().as_nanos(), 7_143);
    }

    #[test]
    fn costs_scale_with_size() {
        let c = NodeCosts::default();
        assert!(c.mem_reply(100.0) > c.mem_reply(1.0));
        assert!(c.disk_read(100.0) > c.disk_read(1.0));
        assert!(c.ni_out(100.0) > c.ni_out(1.0));
    }
}
