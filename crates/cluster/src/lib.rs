//! Node hardware substrate for the cluster simulator.
//!
//! Each cluster node is a commodity workstation (Figure 1 of the paper):
//! CPU, main-memory file cache, disk, and a network interface. This crate
//! models those pieces:
//!
//! * [`LruCache`] — a byte-capacity LRU cache of whole files, the unit of
//!   caching in all three simulated servers — plus [`GdsCache`]
//!   (GreedyDual-Size) as an ablation, both behind [`FileCache`];
//! * [`NodeCosts`] — every per-operation service time from Table 1 and
//!   Section 5.1 (parse, forward, memory reply, disk read, NI transfer,
//!   and the M-VIA message cost breakdown);
//! * [`NodeHardware`] — the four contended stations of one node (CPU,
//!   disk, inbound NI, outbound NI) plus its cache, with hit/miss
//!   accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod costs;
mod filecache;
mod gds;
mod hetero;
mod node;

pub use cache::{CacheStats, LruCache};
pub use costs::NodeCosts;
pub use filecache::{CachePolicy, FileCache};
pub use gds::GdsCache;
pub use hetero::{HeteroSpec, NodeClass, NodeProfile};
pub use node::{build_nodes, build_nodes_profiled, NodeHardware};

/// Identifies one file served by the cluster — the dense interned index
/// from `l2s-trace`, re-exported so traces plug in directly and per-file
/// state here can be flat-`Vec`-indexed.
pub use l2s_trace::FileId;
