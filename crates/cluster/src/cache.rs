//! A byte-capacity LRU cache of whole files.

use crate::FileId;
use l2s_util::{cast, invariant};

/// Sentinel in the dense file->slot index for "not resident".
const NO_SLOT: u32 = u32::MAX;

/// Stamp marking a slot as free. Live stamps come from a counter that
/// starts at 1, so the sentinel never collides.
const FREE_STAMP: u64 = u64::MAX;

/// Victim candidates gathered per harvest scan. Larger batches amortize
/// the scan over more evictions; smaller ones keep candidates fresher
/// (a touched candidate is discarded at pop time). 64 keeps the scan
/// under 2% of eviction work for the paper's populations.
const HARVEST_BATCH: usize = 64;

#[derive(Clone, Debug)]
struct Slot {
    file: FileId,
    kb: f64,
    /// Recency stamp: strictly increasing across all assignments, so
    /// stamp order *is* recency order and stamps never repeat.
    /// [`FREE_STAMP`] while the slot sits on the free list.
    stamp: u64,
}

/// Cumulative cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the file resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Files inserted.
    pub insertions: u64,
    /// Files evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss fraction over all lookups (0 when none were made).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            cast::exact_f64(self.misses) / cast::exact_f64(total)
        }
    }
}

/// An LRU cache of whole files with a byte (KB) capacity — the main
/// memory of one cluster node.
///
/// Files larger than the capacity are never cached (they stream from
/// disk every time), matching how a real server's unified buffer cache
/// behaves for oversized objects.
///
/// Recency is tracked by *stamps*, not a linked list: every hit writes
/// one monotone counter value into the slot it touched, and the LRU
/// victim is the live slot with the smallest stamp. Slots live in a pool
/// located through a *dense* file->slot index (`Vec<u32>` keyed by the
/// interned [`FileId`] — file ids are consecutive small integers, so the
/// index is a flat array rather than a map).
///
/// A doubly-linked recency list makes a hit splice ~4 random cache
/// lines; at hundreds of nodes the per-node lists sum to tens of MB and
/// that splice traffic dominates the simulator's hot path. The stamp
/// scheme makes a hit exactly one random write. Eviction finds victims
/// with a batched harvest: a sequential scan keeps the
/// [`HARVEST_BATCH`] oldest stamps, and victims pop in stamp order,
/// each validated against its slot (a candidate touched since the scan
/// has a newer stamp and is discarded). Because stamps are unique and
/// every assignment exceeds all earlier ones, a validated candidate is
/// *the* global minimum — the eviction sequence is exact LRU, identical
/// to the linked-list implementation's.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity_kb: f64,
    used_kb: f64,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// `index[file.index()]` is the slot holding `file`, or [`NO_SLOT`].
    /// Grows on demand to the highest file id seen.
    index: Vec<u32>,
    /// Resident-file count (the index holds no len of its own).
    live: usize,
    /// Monotone recency counter; the last stamp handed out.
    clock: u64,
    /// Pending victim candidates `(stamp, slot)`, sorted descending so
    /// `pop()` yields the oldest first. Entries are validated against
    /// the slot's current stamp when popped.
    harvest: Vec<(u64, u32)>,
    /// Victims of the latest `insert`, reused across calls so eviction
    /// never allocates.
    evicted: Vec<FileId>,
    stats: CacheStats,
}

impl LruCache {
    /// Creates a cache holding at most `capacity_kb` KB.
    pub fn new(capacity_kb: f64) -> Self {
        l2s_util::invariant!(
            capacity_kb > 0.0 && capacity_kb.is_finite(),
            "capacity must be positive"
        );
        LruCache {
            capacity_kb,
            used_kb: 0.0,
            slots: Vec::new(),
            free: Vec::new(),
            index: Vec::new(),
            live: 0,
            clock: 0,
            harvest: Vec::new(),
            evicted: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// A fresh, never-before-issued recency stamp.
    #[inline]
    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Slot of `file`, or `None` when not resident.
    #[inline]
    fn slot_of(&self, file: FileId) -> Option<usize> {
        match self.index.get(file.index()) {
            Some(&s) if s != NO_SLOT => Some(cast::wide_usize(s)),
            _ => None,
        }
    }

    /// Configured capacity in KB.
    pub fn capacity_kb(&self) -> f64 {
        self.capacity_kb
    }

    /// Bytes currently resident, in KB.
    pub fn used_kb(&self) -> f64 {
        self.used_kb
    }

    /// Number of resident files.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the statistics (used after cache warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Whether `file` is resident, without touching recency or stats.
    pub fn contains(&self, file: impl Into<FileId>) -> bool {
        self.slot_of(file.into()).is_some()
    }

    /// Looks up `file`: on a hit, moves it to the MRU position and
    /// returns `true`; on a miss returns `false`. Updates statistics.
    pub fn touch(&mut self, file: impl Into<FileId>) -> bool {
        match self.slot_of(file.into()) {
            Some(slot) => {
                self.stats.hits += 1;
                let stamp = self.next_stamp();
                self.slots[slot].stamp = stamp;
                true
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Inserts `file` of `kb` KB at the MRU position, evicting LRU files
    /// until it fits. Returns the evicted files (a borrow of internal
    /// scratch, valid until the next `insert`). A file already resident
    /// is just refreshed (touch without stats). A file larger than the
    /// whole cache is not cached and evicts nothing.
    pub fn insert(&mut self, file: impl Into<FileId>, kb: f64) -> &[FileId] {
        let file = file.into();
        l2s_util::invariant!(kb > 0.0 && kb.is_finite(), "file size must be positive");
        self.evicted.clear();
        if let Some(slot) = self.slot_of(file) {
            let stamp = self.next_stamp();
            self.slots[slot].stamp = stamp;
            return &self.evicted;
        }
        if kb > self.capacity_kb {
            return &self.evicted;
        }
        while self.used_kb + kb > self.capacity_kb {
            invariant!(
                self.live > 0,
                "cache accounting out of sync: {used} KB used of {cap} KB but no LRU victim",
                used = self.used_kb,
                cap = self.capacity_kb
            );
            if self.live == 0 {
                break; // guard against float drift, like the clamp below
            }
            let lru = self.pop_lru();
            let victim = self.slots[lru].file;
            self.remove_slot(lru);
            self.stats.evictions += 1;
            self.evicted.push(victim);
        }
        let slot = self.alloc(file, kb);
        if self.index.len() <= file.index() {
            self.index.resize(file.index() + 1, NO_SLOT);
        }
        self.index[file.index()] = cast::index_u32(slot);
        self.live += 1;
        self.used_kb += kb;
        self.stats.insertions += 1;
        invariant!(
            self.used_kb <= self.capacity_kb + 1e-9,
            "cache byte conservation violated: {used} KB resident exceeds capacity {cap} KB",
            used = self.used_kb,
            cap = self.capacity_kb
        );
        &self.evicted
    }

    /// Drops every resident file (a node crash wipes main memory).
    /// Statistics are kept — they describe the measurement window, not
    /// the cache contents.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.index.fill(NO_SLOT);
        self.live = 0;
        self.harvest.clear();
        self.used_kb = 0.0;
        self.evicted.clear();
    }

    /// Removes `file` if resident; returns whether it was.
    pub fn remove(&mut self, file: impl Into<FileId>) -> bool {
        match self.slot_of(file.into()) {
            Some(slot) => {
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Resident files from most- to least-recently used (stamp
    /// descending). Materializes and sorts a snapshot — O(n log n), for
    /// inspection and tests, not the simulation hot path.
    pub fn iter_mru(&self) -> impl Iterator<Item = (FileId, f64)> + '_ {
        let mut resident: Vec<&Slot> = self
            .slots
            .iter()
            .filter(|s| s.stamp != FREE_STAMP)
            .collect();
        resident.sort_unstable_by(|a, b| b.stamp.cmp(&a.stamp));
        resident.into_iter().map(|s| (s.file, s.kb))
    }

    fn alloc(&mut self, file: FileId, kb: f64) -> usize {
        let stamp = self.next_stamp();
        let slot = Slot { file, kb, stamp };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    /// The live slot with the globally smallest stamp — the exact LRU
    /// victim. Candidates come from the harvest batch; a popped
    /// candidate whose slot was touched, freed, or reallocated since the
    /// scan carries a different stamp (stamps never repeat) and is
    /// discarded. Every slot left out of a scan was strictly newer than
    /// the whole batch and only gets newer, so a validated candidate is
    /// the true minimum. Caller guarantees `live > 0`.
    fn pop_lru(&mut self) -> usize {
        loop {
            match self.harvest.pop() {
                Some((stamp, slot)) => {
                    let s = cast::wide_usize(slot);
                    if self.slots[s].stamp == stamp {
                        return s;
                    }
                }
                None => self.refill_harvest(),
            }
        }
    }

    /// Scans the slot pool sequentially and keeps the
    /// [`HARVEST_BATCH`] oldest live slots, sorted so `pop()` yields
    /// stamp-ascending (LRU-first) order.
    fn refill_harvest(&mut self) {
        self.harvest.clear();
        self.harvest.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.stamp != FREE_STAMP)
                .map(|(i, s)| (s.stamp, cast::index_u32(i))),
        );
        let len = self.harvest.len();
        if len > HARVEST_BATCH {
            self.harvest.select_nth_unstable(HARVEST_BATCH - 1);
            self.harvest.truncate(HARVEST_BATCH);
        }
        self.harvest.sort_unstable_by(|a, b| b.cmp(a));
    }

    fn remove_slot(&mut self, slot: usize) {
        let file = self.slots[slot].file;
        self.slots[slot].stamp = FREE_STAMP;
        self.used_kb -= self.slots[slot].kb;
        invariant!(
            self.used_kb > -1e-6,
            "cache byte conservation violated: removing {file} left {used} KB resident",
            used = self.used_kb
        );
        if self.used_kb < 0.0 {
            self.used_kb = 0.0; // guard against float drift
        }
        self.index[file.index()] = NO_SLOT;
        self.live -= 1;
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_touch() {
        let mut c = LruCache::new(100.0);
        assert!(c.insert(1, 40.0).is_empty());
        assert!(c.touch(1));
        assert!(!c.touch(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_kb(), 40.0);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 40.0);
        c.insert(2, 40.0);
        // Touch 1 so 2 becomes LRU.
        c.touch(1);
        let evicted = c.insert(3, 40.0);
        assert_eq!(evicted, vec![2]);
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn evicts_multiple_to_fit_large_file() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 30.0);
        c.insert(2, 30.0);
        c.insert(3, 30.0);
        // 80 KB only fits once all three 30 KB files are gone
        // (30 + 80 = 110 > 100).
        let evicted = c.insert(4, 80.0);
        assert_eq!(evicted, vec![1, 2, 3]);
        assert_eq!(c.used_kb(), 80.0);
        assert!(c.used_kb() <= 100.0 + 1e-9);
    }

    #[test]
    fn oversized_file_is_not_cached() {
        let mut c = LruCache::new(50.0);
        c.insert(1, 30.0);
        let evicted = c.insert(2, 60.0);
        assert!(evicted.is_empty());
        assert!(!c.contains(2));
        assert!(c.contains(1), "resident files untouched");
    }

    #[test]
    fn reinserting_resident_file_refreshes_recency() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 40.0);
        c.insert(2, 40.0);
        c.insert(1, 40.0); // refresh, no growth
        assert_eq!(c.used_kb(), 80.0);
        let evicted = c.insert(3, 40.0);
        assert_eq!(evicted, vec![2], "2 was LRU after 1's refresh");
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 60.0);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.used_kb(), 0.0);
        assert!(c.is_empty());
        assert!(c.insert(2, 100.0).is_empty());
    }

    #[test]
    fn mru_iteration_order() {
        let mut c = LruCache::new(1000.0);
        c.insert(1, 10.0);
        c.insert(2, 10.0);
        c.insert(3, 10.0);
        c.touch(1);
        let order: Vec<FileId> = c.iter_mru().map(|(f, _)| f).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn stats_reset() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 10.0);
        c.touch(1);
        c.touch(9);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.contains(1), "contents survive stats reset");
    }

    #[test]
    fn clear_empties_contents_but_keeps_stats() {
        let mut c = LruCache::new(100.0);
        c.insert(1, 40.0);
        c.insert(2, 40.0);
        c.touch(1);
        c.touch(9);
        let before = c.stats();
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_kb(), 0.0);
        assert!(!c.contains(1) && !c.contains(2));
        assert_eq!(c.iter_mru().count(), 0);
        assert_eq!(c.stats(), before, "stats describe the window, not contents");
        // The cache works normally after the wipe.
        assert!(c.insert(3, 100.0).is_empty());
        assert!(c.touch(3));
    }

    #[test]
    fn miss_rate_computation() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(30.0);
        for i in 0..1000u32 {
            c.insert(i, 10.0);
        }
        // Only 3 files fit; the slot pool must not grow unboundedly.
        assert_eq!(c.len(), 3);
        assert!(c.slots.len() <= 4, "slots = {}", c.slots.len());
    }

    #[test]
    fn stress_consistency() {
        let mut rng = l2s_util::DetRng::new(77);
        let mut c = LruCache::new(500.0);
        for _ in 0..20_000 {
            let f = FileId::from_raw(rng.below(200) as u32);
            if rng.chance(0.5) {
                c.touch(f);
            } else {
                c.insert(f, 1.0 + rng.f64() * 20.0);
            }
            assert!(c.used_kb() <= 500.0 + 1e-6);
        }
        // Index and list agree.
        assert_eq!(c.iter_mru().count(), c.len());
        let listed: f64 = c.iter_mru().map(|(_, kb)| kb).sum();
        assert!((listed - c.used_kb()).abs() < 1e-6);
    }
}
