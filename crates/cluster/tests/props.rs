//! Property-based tests for the node-hardware substrate.

use l2s_cluster::{LruCache, NodeCosts};
use proptest::prelude::*;

proptest! {
    /// The cache never exceeds capacity, never double-counts a file, and
    /// hit/miss statistics tally with lookups.
    #[test]
    fn lru_accounting_invariants(
        capacity in 10.0f64..500.0,
        ops in prop::collection::vec((0u32..200, 0.5f64..60.0, 0u8..3), 1..500),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut lookups = 0u64;
        for (file, kb, op) in ops {
            match op {
                0 => {
                    cache.touch(file);
                    lookups += 1;
                }
                1 => {
                    cache.insert(file, kb);
                }
                _ => {
                    cache.remove(file);
                }
            }
            prop_assert!(cache.used_kb() <= capacity + 1e-9);
            let listed: f64 = cache.iter_mru().map(|(_, s)| s).sum();
            prop_assert!((listed - cache.used_kb()).abs() < 1e-6);
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, lookups);
        }
    }

    /// MRU iteration yields each resident file exactly once.
    #[test]
    fn lru_iteration_is_a_set(ops in prop::collection::vec((0u32..50, 1.0f64..10.0), 1..300)) {
        let mut cache = LruCache::new(120.0);
        for (file, kb) in ops {
            cache.insert(file, kb);
        }
        let files: Vec<u32> = cache.iter_mru().map(|(f, _)| f).collect();
        let mut dedup = files.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), files.len(), "duplicate in MRU list");
        for f in files {
            prop_assert!(cache.contains(f));
        }
    }

    /// Every cost formula is non-negative and monotone in transfer size.
    #[test]
    fn costs_monotone_in_size(a in 0.1f64..1_000.0, b in 0.1f64..1_000.0) {
        let costs = NodeCosts::default();
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(costs.mem_reply(small) <= costs.mem_reply(large));
        prop_assert!(costs.disk_read(small) <= costs.disk_read(large));
        prop_assert!(costs.ni_out(small) <= costs.ni_out(large));
        prop_assert!(costs.disk_read(small).as_nanos() > 0);
    }
}
