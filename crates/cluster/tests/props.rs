//! Property-based tests for the node-hardware substrate.
//!
//! Beyond the accounting invariants, the optimized cache structures are
//! checked against deliberately naive reference implementations: the
//! dense-index LRU and the lazy-invalidation GDS heap must produce the
//! *same eviction sequence* as an O(n)-per-op model across random
//! workloads, so the hot-path data structures cannot silently change
//! simulation results.

use l2s_cluster::{FileId, GdsCache, LruCache, NodeCosts};
use proptest::prelude::*;

/// Reference LRU: a plain MRU-first vector, O(n) per operation.
struct NaiveLru {
    capacity_kb: f64,
    entries: Vec<(u32, f64)>, // MRU first
}

impl NaiveLru {
    fn new(capacity_kb: f64) -> Self {
        NaiveLru {
            capacity_kb,
            entries: Vec::new(),
        }
    }

    fn used_kb(&self) -> f64 {
        self.entries.iter().map(|&(_, kb)| kb).sum()
    }

    fn touch(&mut self, file: u32) -> bool {
        match self.entries.iter().position(|&(f, _)| f == file) {
            Some(i) => {
                let e = self.entries.remove(i);
                self.entries.insert(0, e);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, file: u32, kb: f64) -> Vec<u32> {
        if self.touch(file) {
            return Vec::new();
        }
        if kb > self.capacity_kb {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used_kb() + kb > self.capacity_kb {
            let (victim, _) = self.entries.pop().expect("used > 0 implies a victim");
            evicted.push(victim);
        }
        self.entries.insert(0, (file, kb));
        evicted
    }
}

/// Reference GDS(1): a flat table scanned for the minimum-priority
/// victim, with the same float arithmetic as the real implementation so
/// priorities compare bit-for-bit.
struct NaiveGds {
    capacity_kb: f64,
    aging: f64,
    entries: Vec<(u32, f64, f64)>, // (file, kb, priority)
}

impl NaiveGds {
    fn new(capacity_kb: f64) -> Self {
        NaiveGds {
            capacity_kb,
            aging: 0.0,
            entries: Vec::new(),
        }
    }

    fn used_kb(&self) -> f64 {
        self.entries.iter().map(|&(_, kb, _)| kb).sum()
    }

    fn touch(&mut self, file: u32) -> bool {
        let aging = self.aging;
        match self.entries.iter_mut().find(|(f, _, _)| *f == file) {
            Some((_, kb, pri)) => {
                *pri = aging + 1.0 / *kb;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, file: u32, kb: f64) -> Vec<u32> {
        if self.touch(file) {
            return Vec::new();
        }
        if kb > self.capacity_kb {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used_kb() + kb > self.capacity_kb {
            // Victim: minimum (priority bits, file id) — the exact key
            // order of the real heap, ties broken by lower file id.
            let i = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, &(f, _, pri))| (pri.to_bits(), f))
                .map(|(i, _)| i)
                .expect("used > 0 implies a victim");
            let (victim, _, pri) = self.entries.swap_remove(i);
            self.aging = self.aging.max(pri);
            evicted.push(victim);
        }
        self.entries.push((file, kb, self.aging + 1.0 / kb));
        evicted
    }
}

/// Deterministic per-file size so re-inserts always agree with the
/// original size (the equivalence below does not model resizing).
fn file_kb(file: u32) -> f64 {
    1.0 + (file % 23) as f64 * 3.25
}

proptest! {
    /// The cache never exceeds capacity, never double-counts a file, and
    /// hit/miss statistics tally with lookups.
    #[test]
    fn lru_accounting_invariants(
        capacity in 10.0f64..500.0,
        ops in prop::collection::vec((0u32..200, 0.5f64..60.0, 0u8..3), 1..500),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut lookups = 0u64;
        for (file, kb, op) in ops {
            match op {
                0 => {
                    cache.touch(file);
                    lookups += 1;
                }
                1 => {
                    cache.insert(file, kb);
                }
                _ => {
                    cache.remove(file);
                }
            }
            prop_assert!(cache.used_kb() <= capacity + 1e-9);
            let listed: f64 = cache.iter_mru().map(|(_, s)| s).sum();
            prop_assert!((listed - cache.used_kb()).abs() < 1e-6);
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, lookups);
        }
    }

    /// MRU iteration yields each resident file exactly once.
    #[test]
    fn lru_iteration_is_a_set(ops in prop::collection::vec((0u32..50, 1.0f64..10.0), 1..300)) {
        let mut cache = LruCache::new(120.0);
        for (file, kb) in ops {
            cache.insert(file, kb);
        }
        let files: Vec<_> = cache.iter_mru().map(|(f, _)| f).collect();
        let mut dedup = files.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), files.len(), "duplicate in MRU list");
        for f in files {
            prop_assert!(cache.contains(f));
        }
    }

    /// The dense-index LRU evicts exactly what a naive MRU-vector LRU
    /// evicts, in the same order, across random touch/insert workloads.
    #[test]
    fn lru_matches_naive_reference_evictions(
        capacity in 20.0f64..400.0,
        ops in prop::collection::vec((0u32..80, prop::bool::ANY), 1..600),
    ) {
        let mut real = LruCache::new(capacity);
        let mut naive = NaiveLru::new(capacity);
        for (file, is_touch) in ops {
            if is_touch {
                prop_assert_eq!(real.touch(file), naive.touch(file));
            } else {
                let kb = file_kb(file);
                let got: Vec<FileId> = real.insert(file, kb).to_vec();
                let want: Vec<FileId> =
                    naive.insert(file, kb).into_iter().map(FileId::from_raw).collect();
                prop_assert_eq!(got, want, "eviction sequences diverged");
            }
            prop_assert!((real.used_kb() - naive.used_kb()).abs() < 1e-6);
            prop_assert_eq!(real.len(), naive.entries.len());
        }
    }

    /// The lazy-invalidation GDS heap evicts exactly what a naive
    /// scan-for-minimum GDS evicts, in the same order, and tracks the
    /// same aging baseline bit-for-bit.
    #[test]
    fn gds_matches_naive_reference_evictions(
        capacity in 20.0f64..400.0,
        ops in prop::collection::vec((0u32..80, prop::bool::ANY), 1..600),
    ) {
        let mut real = GdsCache::new(capacity);
        let mut naive = NaiveGds::new(capacity);
        for (file, is_touch) in ops {
            if is_touch {
                prop_assert_eq!(real.touch(file), naive.touch(file));
            } else {
                let kb = file_kb(file);
                let got: Vec<FileId> = real.insert(file, kb).to_vec();
                let want: Vec<FileId> =
                    naive.insert(file, kb).into_iter().map(FileId::from_raw).collect();
                prop_assert_eq!(got, want, "eviction sequences diverged");
            }
            prop_assert_eq!(
                real.aging().to_bits(),
                naive.aging.to_bits(),
                "aging baselines diverged"
            );
            prop_assert!((real.used_kb() - naive.used_kb()).abs() < 1e-6);
            prop_assert_eq!(real.len(), naive.entries.len());
        }
    }

    /// Every cost formula is non-negative and monotone in transfer size.
    #[test]
    fn costs_monotone_in_size(a in 0.1f64..1_000.0, b in 0.1f64..1_000.0) {
        let costs = NodeCosts::default();
        let (small, large) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(costs.mem_reply(small) <= costs.mem_reply(large));
        prop_assert!(costs.disk_read(small) <= costs.disk_read(large));
        prop_assert!(costs.ni_out(small) <= costs.ni_out(large));
        prop_assert!(costs.disk_read(small).as_nanos() > 0);
    }
}
