//! Input-generation strategies: the [`Strategy`] trait and the concrete
//! generators used by the workspace's property suites.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use crate::runner::Rng;

/// A value generator. The shim keeps only the generation half of upstream
/// proptest's `Strategy` (there is no shrinking tree).
pub trait Strategy {
    /// The type of generated values; `Debug` so failures can print the
    /// offending inputs.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`, mirroring
    /// `proptest::strategy::Strategy::prop_map`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut Rng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut Rng) -> $t {
                debug_assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.below(span);
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        debug_assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace uses.
pub trait Arbitrary: Debug + Sized {
    /// Draws an unconstrained value of the type.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        // Finite values spanning many magnitudes; property tests that need
        // NaN/inf construct them explicitly.
        let magnitude = (rng.unit_f64() * 600.0) - 300.0;
        let sign = if rng.bool() { 1.0 } else { -1.0 };
        sign * magnitude.exp2() * rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniformly random booleans (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut Rng) -> bool {
        rng.bool()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector whose elements come from `element` and whose length is drawn
/// from `len`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl Strategy for &str {
    type Value = String;

    /// Interprets the pattern as a character-class regex the way the
    /// workspace uses it: `\PC{m,n}` (printable characters, length in
    /// `[m, n]`). Unrecognized patterns fall back to ASCII alphanumerics of
    /// length 0..=32.
    fn sample(&self, rng: &mut Rng) -> String {
        let (lo, hi) = parse_len_range(self).unwrap_or((0, 32));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        let printable = self.starts_with("\\PC");
        (0..n)
            .map(|_| {
                if printable {
                    sample_printable_char(rng)
                } else {
                    sample_alnum_char(rng)
                }
            })
            .collect()
    }
}

fn parse_len_range(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Non-control characters: mostly printable ASCII, with an occasional
/// multi-byte code point to exercise UTF-8 handling in parsers.
fn sample_printable_char(rng: &mut Rng) -> char {
    const EXOTIC: [char; 8] = ['é', 'λ', 'Ж', '中', '√', '€', 'ß', 'ñ'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        char::from(0x20 + rng.below(0x5F) as u8) // ' ' ..= '~'
    }
}

fn sample_alnum_char(rng: &mut Rng) -> char {
    const ALNUM: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    char::from(ALNUM[rng.below(ALNUM.len() as u64) as usize])
}
