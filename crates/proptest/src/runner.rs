//! Test-case execution support: the per-test RNG, configuration, and the
//! error type threaded through `prop_assert!` / `prop_assume!`.

/// Per-test configuration, mirroring `proptest::test_runner::Config` in the
/// one field the workspace uses.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// The shim default is 48 cases — smaller than upstream proptest's 256
    /// so the full workspace property suite stays fast, while still large
    /// enough to exercise the generators' tails.
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated; carries a human-readable explanation.
    Fail(String),
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result type for property bodies that use `?` on fallible helpers.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The harness generator: xoshiro256++ seeded from the test's name via
/// FNV-1a and SplitMix64, so every property test has a fixed, independent,
/// platform-stable input stream.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds a generator from an arbitrary name (typically
    /// `module_path!() + "::" + test_name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable 64-bit digest.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Rng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift; the tiny modulo bias is irrelevant for test-input
        // generation.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform boolean.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
