//! Minimal, fully deterministic property-testing harness.
//!
//! The workspace's test suites were written against the `proptest` crate,
//! but this build environment has no route to a crates.io registry, so this
//! in-tree shim provides the subset of the `proptest` API the suites use:
//! the [`proptest!`] macro (including `#![proptest_config(..)]`), range /
//! tuple / collection / `prop_map` strategies, `any::<T>()`, and the
//! `prop_assert!` family.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the exact inputs that failed;
//!   it does not search for a smaller counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully qualified name, so runs are byte-for-byte reproducible across
//!   machines and invocations — in keeping with the repository's
//!   determinism rules (there is deliberately no entropy source here).
//! - **String "regex" strategies** support only the printable-character
//!   class used in this workspace (`\PC{m,n}`); anything else falls back to
//!   bounded ASCII.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod runner;
pub mod strategy;

pub use runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use strategy::{any, Any, Arbitrary, Just, Map, Strategy, VecStrategy};

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::AnyBool;
        /// Uniformly random booleans.
        pub const ANY: AnyBool = AnyBool;
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over sampled inputs.
///
/// Mirrors `proptest::proptest!`: each `fn name(pat in strategy, ..)` item
/// becomes a `#[test]` (the attribute is written explicitly by the caller)
/// that samples its arguments `cases` times and runs the body on each
/// sample. An optional leading `#![proptest_config(expr)]` overrides the
/// per-test case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one!($cfg; $(#[$attr])* fn $name($($p in $s),+) $body);)*
    };
    ($($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $($crate::__proptest_one!($crate::ProptestConfig::default();
            $(#[$attr])* fn $name($($p in $s),+) $body);)*
    };
}

/// Implementation detail of [`proptest!`]: expands one property function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($cfg:expr; $(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+) $body:block) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::runner::Rng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(256);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                let vals = ($($crate::Strategy::sample(&$s, &mut rng),)+);
                let desc = format!("{:?}", &vals);
                let outcome = {
                    let ($($p,)+) = vals;
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        {
                            $body
                        }
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "property '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                            stringify!($name),
                            accepted,
                            desc,
                            msg
                        );
                    }
                }
            }
            ::std::assert!(
                accepted > 0,
                "property '{}' rejected every generated input ({} attempts)",
                stringify!($name),
                attempts
            );
        }
    };
}

/// Fails the current test case (returns `TestCaseError::Fail`) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Fails the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current test case (does not count toward the case budget)
/// when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1usize..4, 10u64..20),
            mapped in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert_eq!(mapped % 2, 0);
        }

        #[test]
        fn assume_discards_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn printable_strings_have_bounded_len(s in "\\PC{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_override_is_accepted(x in 0u8..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn same_test_name_gives_same_stream() {
        let mut a = crate::runner::Rng::from_name("mod::case");
        let mut b = crate::runner::Rng::from_name("mod::case");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_test_names_diverge() {
        let mut a = crate::runner::Rng::from_name("mod::case_a");
        let mut b = crate::runner::Rng::from_name("mod::case_b");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
