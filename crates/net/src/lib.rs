//! The cluster's shared network fabric.
//!
//! Figure 1 of the paper: the nodes hang off a switched 1 Gbit/s network
//! that also connects, through a bridge/**router**, to the Internet. The
//! paper models the router as a contended resource (a Cisco 7576 moving
//! ~4 Gbit/s) but explicitly does *not* model contention inside the
//! switch fabric ("since we are simulating a very fast switched
//! network") — the switch is a pure 1 µs delay.
//!
//! Per-node network-interface and CPU messaging costs live with the node
//! hardware (`l2s-cluster`); this crate owns the *shared* pieces:
//!
//! * [`Fabric`] — the router (FIFO, with a finite admission buffer: the
//!   paper injects new client requests only while "the router and
//!   network interface buffers would accept them") plus the switch
//!   delay.
//! * [`NetConfig`] — bandwidth/latency knobs, scalable for the
//!   sensitivity study (E15 in DESIGN.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use l2s_devs::{DelayStation, FifoResource};
use l2s_util::{SimDuration, SimTime};

/// Shared-network parameters. Defaults are the paper's.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Router throughput in KB/s (default 500 000 ≈ 4 Gbit/s).
    pub router_kb_per_s: f64,
    /// Switch traversal latency in seconds (default 1 µs).
    pub switch_s: f64,
    /// Router admission buffer, in messages (client requests waiting to
    /// enter the cluster).
    pub router_buffer: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            router_kb_per_s: 500_000.0,
            switch_s: 0.000_001,
            router_buffer: 64,
        }
    }
}

impl NetConfig {
    /// Scales link/router bandwidth by `factor` (sensitivity study).
    /// Errors unless `factor` is finite and positive — library code must
    /// not abort on bad caller input.
    pub fn scale_bandwidth(mut self, factor: f64) -> Result<Self, String> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(format!(
                "bandwidth scale factor must be positive, got {factor}"
            ));
        }
        self.router_kb_per_s *= factor;
        Ok(self)
    }

    /// Scales switch latency by `factor` (sensitivity study). Errors
    /// unless `factor` is finite and positive.
    pub fn scale_latency(mut self, factor: f64) -> Result<Self, String> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(format!(
                "latency scale factor must be positive, got {factor}"
            ));
        }
        self.switch_s *= factor;
        Ok(self)
    }

    /// Router service time for `kb` KB.
    #[inline]
    pub fn router_service(&self, kb: f64) -> SimDuration {
        SimDuration::from_secs_f64(kb / self.router_kb_per_s)
    }
}

/// The shared fabric: router with contention and admission buffer, plus
/// the contention-free switch.
#[derive(Clone, Debug)]
pub struct Fabric {
    config: NetConfig,
    router: FifoResource,
    switch: DelayStation,
}

impl Fabric {
    /// Builds the fabric from a configuration.
    pub fn new(config: NetConfig) -> Self {
        Fabric {
            router: FifoResource::with_capacity(config.router_buffer),
            switch: DelayStation::new(SimDuration::from_secs_f64(config.switch_s)),
            config,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Whether the router would accept one more inbound message at `now`
    /// (the admission gate for new client requests). Pure query.
    pub fn would_accept(&self, now: SimTime) -> bool {
        self.router.would_accept(now)
    }

    /// Earliest time the router could admit another inbound message, as
    /// a cacheable lower bound; `None` when it would accept one at
    /// `now`. See [`FifoResource::next_admission`] for why the bound
    /// survives later router traffic.
    pub fn next_admission(&self, now: SimTime) -> Option<SimTime> {
        self.router.next_admission(now)
    }

    /// Pushes `kb` KB through the router at `now`; returns the time the
    /// transfer clears the router, under FIFO contention. Used for both
    /// inbound requests and outbound replies (the same box carries both
    /// directions, as in the paper's single `µr` station).
    pub fn router_transit(&mut self, now: SimTime, kb: f64) -> SimTime {
        self.router.schedule(now, self.config.router_service(kb))
    }

    /// [`Fabric::router_transit`] with a precomputed service time (the
    /// simulator caches per-file router times; the value must equal
    /// `config.router_service(kb)` for the transfer's size).
    #[inline]
    pub fn router_transit_service(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        self.router.schedule(now, service)
    }

    /// Inbound admission-checked variant of [`Fabric::router_transit`]:
    /// `None` when the buffer is full.
    pub fn try_router_transit(&mut self, now: SimTime, kb: f64) -> Option<SimTime> {
        self.router
            .try_schedule(now, self.config.router_service(kb))
    }

    /// Crosses the switch at `now` (pure delay, no contention).
    #[inline]
    pub fn switch_transit(&self, now: SimTime) -> SimTime {
        self.switch.traverse(now)
    }

    /// Router utilization over a measurement window.
    pub fn router_utilization(&self, window: SimDuration) -> f64 {
        self.router.utilization(window)
    }

    /// Messages the router carried since the last stats reset.
    pub fn router_served(&self) -> u64 {
        self.router.served()
    }

    /// Zeroes router statistics (after warm-up).
    pub fn reset_stats(&mut self) {
        self.router.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn default_config_matches_paper() {
        let c = NetConfig::default();
        assert_eq!(c.router_kb_per_s, 500_000.0);
        assert_eq!(c.switch_s, 0.000_001);
        // 500 KB through the router takes 1 ms.
        assert_eq!(c.router_service(500.0).as_nanos(), 1_000_000);
    }

    #[test]
    fn switch_adds_exactly_one_microsecond() {
        let f = Fabric::new(NetConfig::default());
        assert_eq!(f.switch_transit(t(500)), t(1_500));
    }

    #[test]
    fn router_contends_fifo() {
        let mut f = Fabric::new(NetConfig::default());
        // Two 500 KB replies at once: second waits for the first.
        let first = f.router_transit(SimTime::ZERO, 500.0);
        let second = f.router_transit(SimTime::ZERO, 500.0);
        assert_eq!(first.as_nanos(), 1_000_000);
        assert_eq!(second.as_nanos(), 2_000_000);
    }

    #[test]
    fn admission_buffer_fills_and_drains() {
        let cfg = NetConfig {
            router_buffer: 2,
            ..NetConfig::default()
        };
        let mut f = Fabric::new(cfg);
        assert!(f.try_router_transit(SimTime::ZERO, 500.0).is_some());
        assert!(f.try_router_transit(SimTime::ZERO, 500.0).is_some());
        assert!(f.try_router_transit(SimTime::ZERO, 500.0).is_none());
        assert!(!f.would_accept(SimTime::ZERO));
        // After the first transfer clears, there is room again.
        let later = SimTime::from_nanos(1_000_000);
        assert!(f.would_accept(later));
        assert!(f.try_router_transit(later, 500.0).is_some());
    }

    #[test]
    fn bandwidth_scaling_speeds_the_router() {
        let c = NetConfig::default().scale_bandwidth(2.0).unwrap();
        assert_eq!(c.router_service(500.0).as_nanos(), 500_000);
    }

    #[test]
    fn latency_scaling_slows_the_switch() {
        let c = NetConfig::default().scale_latency(10.0).unwrap();
        let f = Fabric::new(c);
        assert_eq!(f.switch_transit(SimTime::ZERO), t(10_000));
    }

    #[test]
    fn scaling_rejects_bad_factors() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(NetConfig::default().scale_bandwidth(bad).is_err());
            assert!(NetConfig::default().scale_latency(bad).is_err());
        }
    }

    #[test]
    fn would_accept_is_a_pure_query() {
        let mut f = Fabric::new(NetConfig {
            router_buffer: 1,
            ..NetConfig::default()
        });
        f.router_transit(SimTime::ZERO, 500.0); // clears at 1 ms
        let shared: &Fabric = &f;
        // Asking never mutates: repeated queries at the same instant agree.
        assert!(!shared.would_accept(t(500)));
        assert!(!shared.would_accept(t(500)));
        assert!(shared.would_accept(t(1_000_000)));
        assert!(!shared.would_accept(t(500)), "query left state untouched");
    }

    #[test]
    fn utilization_accounting() {
        let mut f = Fabric::new(NetConfig::default());
        f.router_transit(SimTime::ZERO, 500.0); // 1 ms busy
        let util = f.router_utilization(SimDuration::from_millis(4));
        assert!((util - 0.25).abs() < 1e-9);
        assert_eq!(f.router_served(), 1);
        f.reset_stats();
        assert_eq!(f.router_served(), 0);
    }
}
