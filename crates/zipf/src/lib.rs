//! Zipf-like popularity distributions.
//!
//! The paper (following Breslau et al., INFOCOM'99) models WWW file
//! popularity as a Zipf-like distribution: the probability of a request
//! for the `i`'th most popular of `F` files is proportional to `1 / i^α`
//! with `α` typically below 1. Everything the model needs reduces to the
//! accumulated probability of the `n` hottest files,
//!
//! ```text
//! z(n, F) = H(n, α) / H(F, α)
//! ```
//!
//! where `H` is the generalized harmonic number. The model also needs the
//! *inverse* problem (given a hit rate and a cache size in files, recover
//! the implied file population `f`), and the simulator needs fast sampling.
//! This crate provides all three:
//!
//! * [`harmonic`] — a continuous, smooth extension of `H(n, α)` so cache
//!   sizes measured in fractional files are meaningful,
//! * [`ZipfLaw`] — `z(n, F)` plus [`ZipfLaw::invert_population`],
//! * [`ZipfSampler`] — CDF-table sampling of ranks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use l2s_util::{cast, DetRng};

/// Euler–Mascheroni constant, used by tests and the `α = 1` fast path.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Number of leading terms summed exactly before switching to the
/// Euler–Maclaurin tail expansion.
const EXACT_TERMS: usize = 64;

/// Continuous generalized harmonic number `H(n, α) = Σ_{i=1..n} i^{-α}`,
/// extended smoothly to real `n ≥ 0` by Euler–Maclaurin so that cache
/// capacities measured in fractional files interpolate sensibly.
///
/// Monotone non-decreasing in `n`; `harmonic(0.0, α) == 0`.
pub fn harmonic(n: f64, alpha: f64) -> f64 {
    l2s_util::invariant!(alpha >= 0.0, "negative Zipf exponents are not meaningful");
    if n <= 0.0 {
        return 0.0;
    }
    if n <= cast::len_f64(EXACT_TERMS) {
        // Exact sum of the integer part plus a linear fraction of the next
        // term keeps the function continuous and monotone for small n.
        let whole = cast::floor_index(n.floor());
        let mut sum = 0.0;
        for i in 1..=whole {
            sum += cast::len_f64(i).powf(-alpha);
        }
        let frac = n - cast::len_f64(whole);
        if frac > 0.0 {
            sum += frac * cast::len_f64(whole + 1).powf(-alpha);
        }
        return sum;
    }
    let m = cast::len_f64(EXACT_TERMS);
    let mut head = 0.0;
    for i in 1..=EXACT_TERMS {
        head += cast::len_f64(i).powf(-alpha);
    }
    // Euler–Maclaurin: Σ_{m+1..n} f(i) ≈ ∫_m^n f + (f(n) - f(m))/2
    //                  + (f'(n) - f'(m))/12, with f(x) = x^{-α}.
    let integral = if (alpha - 1.0).abs() < 1e-12 {
        (n / m).ln()
    } else {
        (n.powf(1.0 - alpha) - m.powf(1.0 - alpha)) / (1.0 - alpha)
    };
    let boundary = 0.5 * (n.powf(-alpha) - m.powf(-alpha));
    let first = (alpha / 12.0) * (m.powf(-alpha - 1.0) - n.powf(-alpha - 1.0));
    // Next Euler–Maclaurin term (B4 = -1/30), using the third derivative
    // of x^{-alpha}.
    let third = (alpha * (alpha + 1.0) * (alpha + 2.0) / 720.0)
        * (n.powf(-alpha - 3.0) - m.powf(-alpha - 3.0));
    head + integral + boundary + first + third
}

/// A Zipf-like popularity law over `files` ranked files with exponent
/// `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZipfLaw {
    files: f64,
    alpha: f64,
    total: f64,
}

impl ZipfLaw {
    /// Creates a law over a (possibly fractional) population of `files`
    /// files. `files <= 0` or `alpha < 0` is rejected by `invariant!`.
    pub fn new(files: f64, alpha: f64) -> Self {
        l2s_util::invariant!(files > 0.0, "population must be positive");
        l2s_util::invariant!(alpha >= 0.0, "alpha must be non-negative");
        ZipfLaw {
            files,
            alpha,
            total: harmonic(files, alpha),
        }
    }

    /// The file population `F`.
    pub fn files(&self) -> f64 {
        self.files
    }

    /// The Zipf exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of a request hitting exactly rank `i` (1-based).
    pub fn rank_probability(&self, rank: u64) -> f64 {
        l2s_util::invariant!(rank >= 1, "ranks are 1-based");
        if cast::exact_f64(rank) > self.files {
            return 0.0;
        }
        cast::exact_f64(rank).powf(-self.alpha) / self.total
    }

    /// The paper's `z(n, F)`: accumulated probability of a request for
    /// one of the `n` most popular files. Clamps `n` into `[0, F]`.
    pub fn z(&self, n: f64) -> f64 {
        let n = n.clamp(0.0, self.files);
        harmonic(n, self.alpha) / self.total
    }

    /// Inverse of [`ZipfLaw::z`] in `n`: the number of hottest files that
    /// accumulate probability `p`. Clamps `p` into `[0, 1]`.
    pub fn inverse_z(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let target = p * self.total;
        // harmonic(n) is monotone in n: bisect on [0, F]. No early exit —
        // near n = 0 with large α the CDF is steep, so an absolute
        // tolerance in n leaves visible error in z; 200 halvings resolve
        // n to full f64 precision at negligible cost.
        let (mut lo, mut hi) = (0.0, self.files);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if harmonic(mid, self.alpha) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Solves the model's calibration problem: find the population `f`
    /// such that the `n` hottest files of a Zipf-`α` law over `f` files
    /// accumulate probability `hit` — i.e. `z(n, f) = hit`.
    ///
    /// `z(n, f)` is strictly decreasing in `f` (for fixed `n`), from 1 at
    /// `f = n` towards a limit as `f → ∞`. When `α ≤ 1` the harmonic sum
    /// diverges and every `hit ∈ (0, 1]` is attainable; when `α > 1` very
    /// small hit rates may be unattainable, in which case the population
    /// is clamped to [`ZipfLaw::MAX_POPULATION`].
    ///
    /// `n <= 0` or `hit` outside `(0, 1]` is rejected by `invariant!`.
    pub fn invert_population(n: f64, hit: f64, alpha: f64) -> f64 {
        l2s_util::invariant!(n > 0.0, "cache capacity in files must be positive");
        l2s_util::invariant!(hit > 0.0 && hit <= 1.0, "hit rate must be in (0, 1]");
        let hn = harmonic(n, alpha);
        let target = hn / hit; // we need harmonic(f) == target
        if target <= hn {
            return n;
        }
        let (mut lo, mut hi) = (n, n.max(1.0) * 2.0);
        while harmonic(hi, alpha) < target {
            hi *= 2.0;
            if hi >= Self::MAX_POPULATION {
                return Self::MAX_POPULATION;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if harmonic(mid, alpha) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-9 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Cap on populations returned by [`ZipfLaw::invert_population`] when
    /// the requested hit rate is unattainable (`α > 1` tail limit).
    pub const MAX_POPULATION: f64 = 1e15;

    /// Dense per-rank probability table `[P(1), …, P(n)]` — the form
    /// cache models integrate over. Ranks beyond the population get 0.
    pub fn probabilities(&self, n: usize) -> Vec<f64> {
        (1..=cast::len_u64(n))
            .map(|r| self.rank_probability(r))
            .collect()
    }
}

/// Samples ranks `1..=F` from a Zipf-like law via a precomputed CDF table
/// and binary search. Construction is `O(F)`, sampling `O(log F)`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `files ≥ 1` ranks with exponent `alpha`.
    pub fn new(files: usize, alpha: f64) -> Self {
        l2s_util::invariant!(files >= 1, "need at least one file");
        l2s_util::invariant!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(files);
        let mut acc = 0.0;
        for i in 1..=files {
            acc += cast::len_f64(i).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off leaving the last entry
        // fractionally below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn files(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a 1-based rank.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.f64();
        cast::len_u64((self.cdf.partition_point(|&c| c < u) + 1).min(self.cdf.len()))
    }

    /// Dense per-rank probability table recovered from the CDF —
    /// exactly the frequencies [`sample`](ZipfSampler::sample) draws
    /// with (the table normalization, not the smooth harmonic
    /// extension), so models validated against sampled streams carry
    /// no normalization skew.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cdf
            .iter()
            .map(|&c| {
                let p = c - prev;
                prev = c;
                p
            })
            .collect()
    }

    /// Probability of rank `i` (1-based), for tests and analysis.
    pub fn probability(&self, rank: u64) -> f64 {
        let i = cast::index_usize(rank);
        l2s_util::invariant!(i >= 1 && i <= self.cdf.len(), "rank {rank} out of range");
        if i == 1 {
            self.cdf[0]
        } else {
            self.cdf[i - 1] - self.cdf[i - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_harmonic(n: usize, alpha: f64) -> f64 {
        (1..=n).map(|i| (i as f64).powf(-alpha)).sum()
    }

    #[test]
    fn harmonic_matches_exact_sum_small_n() {
        for alpha in [0.0, 0.5, 0.78, 1.0, 1.08] {
            for n in 1..=32usize {
                let got = harmonic(n as f64, alpha);
                let want = exact_harmonic(n, alpha);
                assert!(
                    (got - want).abs() < 1e-12,
                    "n={n} alpha={alpha}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn harmonic_matches_exact_sum_large_n() {
        for alpha in [0.5, 0.78, 0.91, 1.0, 1.08] {
            for n in [100usize, 1_000, 50_000] {
                let got = harmonic(n as f64, alpha);
                let want = exact_harmonic(n, alpha);
                assert!(
                    (got / want - 1.0).abs() < 1e-9,
                    "n={n} alpha={alpha}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn harmonic_alpha_one_matches_log_approximation() {
        let n = 1_000_000.0;
        let got = harmonic(n, 1.0);
        let approx = n.ln() + EULER_GAMMA;
        assert!((got - approx).abs() < 1e-6, "{got} vs {approx}");
    }

    #[test]
    fn harmonic_is_monotone_and_continuous() {
        let alpha = 0.8;
        let mut prev = 0.0;
        let mut x = 0.0;
        while x < 100.0 {
            let h = harmonic(x, alpha);
            assert!(h >= prev - 1e-12, "harmonic dipped at {x}");
            prev = h;
            x += 0.37;
        }
        // Continuity across the exact/Euler–Maclaurin boundary.
        let below = harmonic(EXACT_TERMS as f64 - 1e-7, alpha);
        let above = harmonic(EXACT_TERMS as f64 + 1e-7, alpha);
        assert!((above - below).abs() < 1e-5, "{below} vs {above}");
    }

    #[test]
    fn z_endpoints() {
        let law = ZipfLaw::new(1000.0, 0.9);
        assert_eq!(law.z(0.0), 0.0);
        assert!((law.z(1000.0) - 1.0).abs() < 1e-12);
        assert!((law.z(5000.0) - 1.0).abs() < 1e-12, "clamped above F");
        assert_eq!(law.z(-5.0), 0.0, "clamped below 0");
    }

    #[test]
    fn z_is_concave_increasing() {
        let law = ZipfLaw::new(10_000.0, 0.78);
        let mut prev = 0.0;
        let mut prev_gain = f64::INFINITY;
        for k in 1..=100 {
            let n = k as f64 * 100.0;
            let z = law.z(n);
            let gain = z - prev;
            assert!(gain > 0.0, "z not increasing at n={n}");
            assert!(gain <= prev_gain + 1e-12, "z not concave at n={n}");
            prev = z;
            prev_gain = gain;
        }
    }

    #[test]
    fn inverse_z_round_trips() {
        let law = ZipfLaw::new(35_885.0, 0.78);
        for p in [0.05, 0.3, 0.72, 0.95] {
            let n = law.inverse_z(p);
            assert!((law.z(n) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn rank_probabilities_sum_to_one() {
        let law = ZipfLaw::new(500.0, 1.0);
        let sum: f64 = (1..=500).map(|i| law.rank_probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        assert_eq!(law.rank_probability(501), 0.0);
    }

    #[test]
    fn invert_population_round_trips() {
        for alpha in [0.78, 0.91, 1.0, 1.08] {
            for hit in [0.3, 0.6, 0.9, 0.99] {
                let n = 2_000.0;
                // For alpha > 1 the harmonic series converges, so very low
                // hit rates may be unattainable; skip those combinations
                // (covered by invert_population_unattainable_hit_clamps).
                let floor = harmonic(n, alpha) / harmonic(ZipfLaw::MAX_POPULATION, alpha);
                if hit <= floor {
                    continue;
                }
                let f = ZipfLaw::invert_population(n, hit, alpha);
                let law = ZipfLaw::new(f, alpha);
                assert!(
                    (law.z(n) - hit).abs() < 1e-6,
                    "alpha={alpha} hit={hit}: z={}",
                    law.z(n)
                );
            }
        }
    }

    #[test]
    fn invert_population_hit_one_means_everything_cached() {
        let f = ZipfLaw::invert_population(100.0, 1.0, 0.9);
        assert!((f - 100.0).abs() < 1e-9);
    }

    #[test]
    fn invert_population_unattainable_hit_clamps() {
        // alpha = 2: tail sums converge, tiny hit rates are unattainable.
        let f = ZipfLaw::invert_population(1.0, 0.01, 2.0);
        assert_eq!(f, ZipfLaw::MAX_POPULATION);
    }

    #[test]
    fn sampler_matches_law_frequencies() {
        let files = 200;
        let alpha = 0.91;
        let sampler = ZipfSampler::new(files, alpha);
        let law = ZipfLaw::new(files as f64, alpha);
        let mut rng = DetRng::new(99);
        let n = 400_000;
        let mut counts = vec![0u64; files];
        for _ in 0..n {
            let r = sampler.sample(&mut rng);
            counts[(r - 1) as usize] += 1;
        }
        // Check the head ranks, which have enough mass for a tight bound.
        for rank in 1..=10u64 {
            let observed = counts[(rank - 1) as usize] as f64 / n as f64;
            let expected = law.rank_probability(rank);
            assert!(
                (observed / expected - 1.0).abs() < 0.06,
                "rank {rank}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sampler_probability_matches_table() {
        let sampler = ZipfSampler::new(50, 0.7);
        let sum: f64 = (1..=50).map(|r| sampler.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(sampler.probability(1) > sampler.probability(2));
    }

    #[test]
    fn probability_tables_match_their_pointwise_forms() {
        let law = ZipfLaw::new(300.0, 0.85);
        let table = law.probabilities(300);
        for (i, &p) in table.iter().enumerate() {
            assert_eq!(p, law.rank_probability(i as u64 + 1));
        }
        let sampler = ZipfSampler::new(300, 0.85);
        let table = sampler.probabilities();
        assert_eq!(table.len(), 300);
        let sum: f64 = table.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for (i, &p) in table.iter().enumerate() {
            assert!((p - sampler.probability(i as u64 + 1)).abs() < 1e-15);
        }
    }

    #[test]
    fn sampler_single_file() {
        let sampler = ZipfSampler::new(1, 1.0);
        let mut rng = DetRng::new(5);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        for r in 1..=4 {
            assert!((sampler.probability(r) - 0.25).abs() < 1e-12);
        }
    }
}
