//! Property-based tests for the Zipf substrate.

use l2s_util::DetRng;
use l2s_zipf::{harmonic, ZipfLaw, ZipfSampler};
use proptest::prelude::*;

proptest! {
    /// Samples always fall in `1..=files`.
    #[test]
    fn sampler_in_range(files in 1usize..5_000, alpha in 0.0f64..1.5, seed in any::<u64>()) {
        let sampler = ZipfSampler::new(files, alpha);
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let r = sampler.sample(&mut rng);
            prop_assert!(r >= 1 && r as usize <= files);
        }
    }

    /// Sampler per-rank probabilities match the law's.
    #[test]
    fn sampler_matches_law(files in 2usize..500, alpha in 0.0f64..1.5) {
        let sampler = ZipfSampler::new(files, alpha);
        let law = ZipfLaw::new(files as f64, alpha);
        for rank in [1u64, (files / 2).max(1) as u64, files as u64] {
            let a = sampler.probability(rank);
            let b = law.rank_probability(rank);
            prop_assert!((a - b).abs() < 1e-9, "rank {}: {} vs {}", rank, a, b);
        }
    }

    /// Rank probabilities are non-increasing in rank.
    #[test]
    fn probabilities_decrease_with_rank(files in 2usize..1_000, alpha in 0.01f64..1.5) {
        let law = ZipfLaw::new(files as f64, alpha);
        let mut prev = f64::INFINITY;
        for rank in 1..=files.min(50) as u64 {
            let p = law.rank_probability(rank);
            prop_assert!(p <= prev + 1e-15);
            prev = p;
        }
    }

    /// inverse_z is a right inverse of z across the whole range.
    #[test]
    fn inverse_z_right_inverse(files in 10.0f64..100_000.0, alpha in 0.0f64..1.5, p in 0.01f64..0.999) {
        let law = ZipfLaw::new(files, alpha);
        let n = law.inverse_z(p);
        prop_assert!((law.z(n) - p).abs() < 1e-5, "z({n}) = {} vs {p}", law.z(n));
    }

    /// The harmonic extension agrees with the exact sum at integers.
    #[test]
    fn harmonic_matches_exact(n in 1usize..20_000, alpha in 0.0f64..1.5) {
        let exact: f64 = (1..=n).map(|i| (i as f64).powf(-alpha)).sum();
        let approx = harmonic(n as f64, alpha);
        prop_assert!(
            (approx / exact - 1.0).abs() < 1e-9,
            "n={n} alpha={alpha}: {approx} vs {exact}"
        );
    }

    /// invert_population really solves z(n, f) = hit when attainable.
    #[test]
    fn invert_population_solves(n in 1.0f64..10_000.0, hit in 0.05f64..1.0, alpha in 0.0f64..1.2) {
        let floor = harmonic(n, alpha) / harmonic(ZipfLaw::MAX_POPULATION, alpha);
        prop_assume!(hit > floor * 1.01);
        let f = ZipfLaw::invert_population(n, hit, alpha);
        let law = ZipfLaw::new(f, alpha);
        prop_assert!((law.z(n) - hit).abs() < 1e-5, "z = {}", law.z(n));
    }
}
