//! Fixed-point simulation time.
//!
//! All simulation timestamps are integer nanoseconds. Floating-point time
//! makes event ordering depend on accumulated rounding; integer ticks keep
//! the discrete-event kernel exactly reproducible. One nanosecond of
//! resolution is three orders of magnitude finer than the smallest latency
//! in the paper (the 1 µs switch traversal), so quantization error is
//! negligible for every modeled quantity.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second, as a float, for conversions.
const NANOS_PER_SEC: f64 = 1e9;

/// An absolute simulation timestamp (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable timestamp; used as an "infinitely far"
    /// sentinel for idle stations.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a timestamp from raw nanosecond ticks.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds a timestamp from (fractional) seconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero; non-finite
    /// inputs are rejected by `invariant!`.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Raw nanosecond ticks since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This timestamp as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Elapsed time since `earlier`. A future `earlier` is a causality
    /// bug — elapsed time computed against an end point that hasn't
    /// happened yet — so it is rejected by `invariant!` (debug builds
    /// and `strict-invariants`); release builds keep the historical
    /// saturate-to-zero behavior rather than wrapping.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        crate::invariant!(
            self.0 >= earlier.0,
            "time went backwards: elapsed since {earlier} asked at {self}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw nanosecond ticks.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from (fractional) seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero; non-finite inputs are
    /// rejected by `invariant!`.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Raw nanosecond ticks.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// True when the duration is zero ticks.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Converts fractional seconds to nanosecond ticks.
///
/// Non-finite input is rejected by `invariant!`: `NaN` fails both the
/// `<= 0` and `>= MAX` comparisons and `f64::round() as u64` maps it to
/// 0, so without the check an upstream divide-by-zero (e.g. a config
/// scale of 0) would silently become a zero-cost event instead of
/// aborting the run.
#[inline]
fn secs_to_nanos(secs: f64) -> u64 {
    crate::invariant!(
        secs.is_finite(),
        "non-finite duration ({secs}) — an upstream division produced NaN or infinity"
    );
    if secs <= 0.0 {
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that is possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_round_trip() {
        let t = SimTime::from_nanos(123_456_789);
        assert_eq!(t.as_nanos(), 123_456_789);
        assert!((t.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
    }

    #[test]
    fn from_secs_rounds_to_nearest() {
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-finite duration")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn nan_seconds_are_rejected_not_zero() {
        // Regression: NaN fails both range comparisons and
        // `f64::round() as u64` maps it to 0, which silently turned an
        // upstream divide-by-zero into a zero-cost event.
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite duration")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn positive_infinity_is_rejected() {
        let _ = SimDuration::from_secs_f64(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "non-finite duration")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn negative_infinity_is_rejected() {
        let _ = SimTime::from_secs_f64(f64::NEG_INFINITY);
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(SimTime::from_secs_f64(1e300), SimTime::MAX);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let t0 = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        let t1 = t0 + d;
        assert_eq!(t1.as_nanos(), 150);
        assert_eq!(t1 - t0, d);
        assert!(t1 > t0);
        assert_eq!(t1.saturating_since(t0), d);
        assert_eq!(t1.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn elapsed_time_against_the_future_is_rejected() {
        // Regression: this used to clamp silently to zero, which let
        // causality bugs (events processed before their cause) vanish
        // into zero-length measurement windows.
        let t0 = SimTime::from_nanos(100);
        let t1 = SimTime::from_nanos(150);
        let _ = t0.saturating_since(t1);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(3);
        assert_eq!((d * 4).as_nanos(), 12_000);
        assert_eq!((d / 3).as_nanos(), 1_000);
        let total: SimDuration = [d, d, d].into_iter().sum();
        assert_eq!(total.as_nanos(), 9_000);
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_nanos(10);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_units_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(14)), "14.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs_f64(2.0)), "2.000000s");
    }
}
