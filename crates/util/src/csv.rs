//! Minimal CSV output for experiment results.
//!
//! The harness emits simple numeric tables; a full CSV dependency is not
//! justified. Fields containing commas, quotes, or newlines are quoted per
//! RFC 4180 so the output stays loadable by standard tools.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// An in-memory CSV table flushed to disk with [`CsvTable::write_to`].
#[derive(Clone, Debug)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. A width differing from the header always indicates
    /// a harness bug and is rejected by `invariant!`.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, fields: I) {
        let row: Vec<String> = fields.into_iter().map(Into::into).collect();
        crate::invariant!(
            row.len() == self.header.len(),
            "CSV row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Appends a row of floats formatted with 6 decimal *places*
    /// (`{x:.6}`), the byte-stable format every golden result file is
    /// pinned to. Values ≥ 1e7 therefore carry more than 6 significant
    /// digits and values below 5e-7 print `0.000000`; when magnitudes
    /// vary that widely, format the fields with [`fmt_sig`] and use
    /// [`CsvTable::row`] instead.
    pub fn row_f64<I: IntoIterator<Item = f64>>(&mut self, fields: I) {
        self.row(fields.into_iter().map(|x| format!("{x:.6}")));
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a CSV string.
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        write_record(&mut out, &self.header);
        for row in &self.rows {
            write_record(&mut out, row);
        }
        out
    }

    /// Writes the table to `path`, creating parent directories as needed.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv_string())
    }
}

fn write_record(out: &mut String, fields: &[String]) {
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if field.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&field.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// Returns the directory experiment outputs should be written to:
/// `$L2S_RESULTS_DIR` if set, else `results/` under the current directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("L2S_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Formats `x` with `sig` significant digits in plain decimal notation,
/// rounding the value itself: `fmt_sig(12_345_678.0, 6)` is `"12345700"`,
/// not the 8-digit raw integer, and `fmt_sig(1.2345678e-5, 6)` is
/// `"0.0000123457"`, not `"0.000012"`. Zero prints as `"0"`; non-finite
/// values fall back to Rust's default float formatting. `sig == 0` is a
/// caller bug rejected by `invariant!` (one digit is used instead when
/// the invariant is compiled out).
pub fn fmt_sig(x: f64, sig: usize) -> String {
    crate::invariant!(sig > 0, "fmt_sig needs at least one significant digit");
    let sig = sig.max(1);
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".to_string();
    }
    // Round to `sig` digits first, then derive how many decimal places the
    // *rounded* value needs — rounding can carry into a new decade
    // (999.9996 at 6 digits becomes 1000.00).
    let exp = x.abs().log10().floor() as i32;
    let scale = 10f64.powi(exp + 1 - sig as i32);
    let rounded = (x / scale).round() * scale;
    if rounded == 0.0 {
        return "0".to_string();
    }
    let exp = rounded.abs().log10().floor() as i32;
    let decimals = (sig as i32 - 1 - exp).max(0) as usize;
    format!("{rounded:.decimals$}")
}

/// Formats a float compactly for human-facing tables (3 significant
/// decimals, dropping the fraction for large magnitudes).
pub fn fmt_compact(x: f64) -> String {
    let mut s = String::new();
    if x.abs() >= 1000.0 {
        let _ = write!(s, "{x:.0}");
    } else if x.abs() >= 10.0 {
        let _ = write!(s, "{x:.1}");
    } else {
        let _ = write!(s, "{x:.3}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row_f64([0.5, 1.25]);
        let s = t.to_csv_string();
        assert_eq!(s, "a,b\n1,2\n0.500000,1.250000\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn quotes_special_fields() {
        let mut t = CsvTable::new(["x"]);
        t.row(["has,comma"]);
        t.row(["has\"quote"]);
        let s = t.to_csv_string();
        assert!(s.contains("\"has,comma\""));
        assert!(s.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "CSV row width")]
    fn width_mismatch_panics() {
        let mut t = CsvTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("l2s-csv-test");
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(["v"]);
        t.row(["7"]);
        t.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "v\n7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn row_f64_is_fixed_decimal_places_not_significant_digits() {
        // Regression: the doc used to claim "6 significant digits" while
        // the code emitted 6 decimal places. The *format* is load-bearing
        // (golden CSVs are byte-pinned to it), so the doc was fixed and
        // this test pins the behavior for both extremes.
        let mut t = CsvTable::new(["big", "tiny"]);
        t.row_f64([12_345_678.0, 1e-8]);
        assert_eq!(t.to_csv_string(), "big,tiny\n12345678.000000,0.000000\n");
    }

    #[test]
    fn sig_digit_formatting_rounds_the_value() {
        assert_eq!(fmt_sig(12_345_678.0, 6), "12345700");
        assert_eq!(fmt_sig(-12_345_678.0, 6), "-12345700");
        assert_eq!(fmt_sig(1.2345678e-5, 6), "0.0000123457");
        assert_eq!(fmt_sig(1.0, 6), "1.00000");
        assert_eq!(fmt_sig(0.5, 6), "0.500000");
        assert_eq!(fmt_sig(0.0, 6), "0");
        assert_eq!(fmt_sig(-0.0, 6), "0");
        assert_eq!(fmt_sig(123.456, 3), "123");
        assert_eq!(fmt_sig(7.0, 1), "7");
    }

    #[test]
    fn sig_digit_rounding_can_carry_into_a_new_decade() {
        assert_eq!(fmt_sig(999.9996, 6), "1000.00");
        assert_eq!(fmt_sig(0.99999995, 6), "1.00000");
        assert_eq!(fmt_sig(9.99, 2), "10");
    }

    #[test]
    fn sig_digit_formatting_is_total() {
        assert_eq!(fmt_sig(f64::NAN, 6), "NaN");
        assert_eq!(fmt_sig(f64::INFINITY, 6), "inf");
        assert_eq!(fmt_sig(f64::NEG_INFINITY, 6), "-inf");
    }

    #[test]
    #[should_panic(expected = "at least one significant digit")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn sig_digit_zero_width_is_rejected() {
        let _ = fmt_sig(1.0, 0);
    }

    #[test]
    fn compact_formatting() {
        assert_eq!(fmt_compact(12345.6), "12346");
        assert_eq!(fmt_compact(12.34), "12.3");
        assert_eq!(fmt_compact(0.1234), "0.123");
    }
}
