//! Deterministic random number generation.
//!
//! Experiments must be exactly reproducible from a seed, across platforms
//! and across library releases, so the workspace carries its own
//! xoshiro256++ implementation (public domain algorithm by Blackman &
//! Vigna) seeded through SplitMix64, with no dependency on external RNG
//! crates. [`DetRng`] provides the distributions the simulator needs
//! directly (uniform, exponential, normal, lognormal, bounded Pareto).

/// A deterministic xoshiro256++ generator.
///
/// Streams derived with [`DetRng::fork`] are independent for practical
/// purposes (the child is seeded from the parent's SplitMix64 stream),
/// which lets one experiment seed derive per-component generators without
/// correlation between, say, arrival sampling and file-size sampling.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is
    /// valid; the state is expanded with SplitMix64 so close seeds give
    /// uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        DetRng { s }
    }

    /// Derives an independent child generator, advancing this generator.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[0, 1)` that is never exactly zero, for use in
    /// logarithms.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        loop {
            let x = self.f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// A uniform integer in `[0, bound)` using Lemire's unbiased method.
    /// `bound == 0` is rejected by `invariant!`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        crate::invariant!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform usize index in `[0, len)`. Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially distributed sample with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// A standard normal sample (Box–Muller; one value per call, the
    /// partner value is discarded to keep the state sequence simple).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A lognormal sample parameterized by the *underlying* normal's
    /// `mu` and `sigma` (so the sample mean is `exp(mu + sigma^2 / 2)`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// A bounded Pareto sample on `[lo, hi]` with shape `alpha`.
    /// Non-positive shape or a non-ascending positive range is rejected
    /// by `invariant!`.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        crate::invariant!(
            lo > 0.0 && hi > lo && alpha > 0.0,
            "bounded_pareto needs 0 < lo < hi and alpha > 0 (alpha={alpha}, lo={lo}, hi={hi})"
        );
        let u = self.f64_open();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills `dest` with pseudorandom bytes (little-endian u64 chunks).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = DetRng::new(11);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = DetRng::new(13);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let mut r = DetRng::new(17);
        let (mu, sigma) = (1.0, 0.5);
        let n = 200_000;
        let mean = (0..n).map(|_| r.lognormal(mu, sigma)).sum::<f64>() / n as f64;
        let expect = (mu + sigma * sigma / 2.0_f64).exp();
        assert!(
            (mean / expect - 1.0).abs() < 0.02,
            "mean = {mean}, expect = {expect}"
        );
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut r = DetRng::new(19);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(1.1, 1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn fork_produces_uncorrelated_stream() {
        let mut parent = DetRng::new(31);
        let mut child = parent.fork();
        let same = (0..100)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::new(37);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
