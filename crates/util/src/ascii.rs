//! Terminal rendering of the paper's figures.
//!
//! Every figure binary prints an ASCII rendition next to its CSV output so
//! the reproduction can be eyeballed without plotting tools: a multi-series
//! line chart for the throughput-vs-nodes figures (7–10) and a shaded heat
//! map for the model surfaces (Figures 3–6).

/// One named series of a line chart.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) points; x values should be shared across series.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new<S: Into<String>>(name: S, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Renders a multi-series line chart into a `width x height` character
/// grid with axis annotations. Series are drawn with distinct glyphs in
/// order: `*`, `o`, `+`, `x`, `#`, `@`.
pub fn line_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let (width, height) = (width.max(16), height.max(5));
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let x_min = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let x_max = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let y_min = 0.0f64.min(all.iter().map(|p| p.1).fold(f64::INFINITY, f64::min));
    let y_max = all.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let x_span = if x_max > x_min { x_max - x_min } else { 1.0 };
    let y_span = if y_max > y_min { y_max - y_min } else { 1.0 };

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max - (i as f64 / (height - 1) as f64) * y_span;
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{y_here:>10.1}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "{:>11}{:<w$.1}{:>8.1}\n",
        "",
        x_min,
        x_max,
        w = width - 7
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

/// Renders a heat map of `values[row][col]` using a density ramp, with
/// `row_labels` down the side. Rows print top-to-bottom in the order given.
pub fn heat_map(
    title: &str,
    values: &[Vec<f64>],
    row_labels: &[String],
    x_caption: &str,
) -> String {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let flat: Vec<f64> = values.iter().flatten().copied().collect();
    if flat.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let lo = flat.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = flat.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    for (r, row) in values.iter().enumerate() {
        let label = row_labels.get(r).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{label:>10} |"));
        for &v in row {
            let t = ((v - lo) / span * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[t.min(RAMP.len() - 1)]);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(values[0].len())));
    out.push_str(&format!("{:>12}{x_caption}\n", ""));
    out.push_str(&format!("  scale: min={lo:.3} max={hi:.3}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_series_glyphs_and_labels() {
        let s = vec![
            Series::new("alpha", vec![(0.0, 0.0), (1.0, 10.0)]),
            Series::new("beta", vec![(0.0, 5.0), (1.0, 2.0)]),
        ];
        let chart = line_chart("demo", &s, 40, 10);
        assert!(chart.contains("demo"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("alpha"));
        assert!(chart.contains("beta"));
    }

    #[test]
    fn line_chart_handles_empty() {
        let chart = line_chart("empty", &[], 40, 10);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn line_chart_handles_single_point() {
        let s = vec![Series::new("single", vec![(1.0, 1.0)])];
        let chart = line_chart("one", &s, 40, 10);
        assert!(chart.contains('*'));
    }

    #[test]
    fn heat_map_renders_extremes() {
        let values = vec![vec![0.0, 1.0], vec![0.5, 0.25]];
        let labels = vec!["low".to_string(), "mid".to_string()];
        let map = heat_map("hm", &values, &labels, "x axis");
        assert!(map.contains("hm"));
        assert!(map.contains('@')); // max cell
        assert!(map.contains("min=0.000"));
        assert!(map.contains("max=1.000"));
    }

    #[test]
    fn heat_map_handles_flat_surface() {
        let values = vec![vec![3.0, 3.0]];
        let labels = vec!["r".to_string()];
        let map = heat_map("flat", &values, &labels, "x");
        assert!(map.contains("min=3.000"));
    }
}
