//! Checked numeric conversions for library code.
//!
//! The `l2s-lint` `lossy-cast` rule flags bare numeric `as` casts in
//! library crates because they truncate and wrap silently — `u64 → f64`
//! loses integer precision above 2⁵³, `usize → u32` wraps, `f64 → usize`
//! saturates. Callers that *know* their values are in range route the
//! conversion through these helpers instead: each one states its
//! precondition, checks it with [`invariant!`](crate::invariant!) (a
//! `debug_assert!` normally, an unconditional abort under
//! `strict-invariants`), and then performs the exact same `as` conversion
//! — so release figures are bit-identical to the cast they replace while
//! the precondition is enforced everywhere tests and strict runs go.
//!
//! This module is the single sanctioned home of those casts and is
//! allowlisted as such in `lint-allow.txt`.

use crate::invariant;

/// Largest integer a `f64` represents exactly (2⁵³).
pub const MAX_EXACT_F64: u64 = 1 << 53;

/// Converts a counter to `f64` exactly. Precondition: `n ≤ 2⁵³`.
///
/// ```
/// assert_eq!(l2s_util::cast::exact_f64(3), 3.0);
/// ```
#[inline]
pub fn exact_f64(n: u64) -> f64 {
    invariant!(
        n <= MAX_EXACT_F64,
        "count {n} exceeds 2^53 and would round in f64"
    );
    n as f64
}

/// Converts a length or index to `f64` exactly. Precondition: `n ≤ 2⁵³`
/// (every in-memory collection length qualifies).
#[inline]
pub fn len_f64(n: usize) -> f64 {
    exact_f64(n as u64)
}

/// Widens a length or index to `u64` (lossless on every supported
/// platform; checked rather than assumed).
#[inline]
pub fn len_u64(n: usize) -> u64 {
    invariant!(
        u64::try_from(n).is_ok(),
        "usize {n} does not fit in u64 on this platform"
    );
    n as u64
}

/// Widens a `u32` to `usize` (lossless on every supported platform;
/// checked rather than assumed).
#[inline]
pub fn wide_usize(n: u32) -> usize {
    invariant!(
        usize::try_from(n).is_ok(),
        "u32 {n} does not fit in usize on this platform"
    );
    n as usize
}

/// Narrows a dense index to `u32`. Precondition: `i ≤ u32::MAX` — interned
/// id spaces (files, nodes, slots) are all far smaller.
#[inline]
pub fn index_u32(i: usize) -> u32 {
    invariant!(
        u32::try_from(i).is_ok(),
        "index {i} overflows the dense u32 id space"
    );
    i as u32
}

/// Narrows a `u64` to an in-memory index. Precondition: `i` fits `usize`
/// (always true for values derived from collection sizes).
#[inline]
pub fn index_usize(i: u64) -> usize {
    invariant!(
        usize::try_from(i).is_ok(),
        "value {i} does not fit a usize index on this platform"
    );
    i as usize
}

/// Narrows a small count to `i32` (for `powi`-style exponents).
/// Precondition: `n ≤ i32::MAX`.
#[inline]
pub fn small_i32(n: u64) -> i32 {
    invariant!(i32::try_from(n).is_ok(), "count {n} overflows i32");
    n as i32
}

/// Truncates a non-negative finite `f64` to a bucket/position index —
/// the checked spelling of `(x) as usize` in quantile and histogram
/// arithmetic. Precondition: `x` is finite and `x ≥ 0` (callers have
/// already range-checked the value).
#[inline]
pub fn floor_index(x: f64) -> usize {
    invariant!(
        x.is_finite() && x >= 0.0,
        "index computation produced {x}; caller must range-check first"
    );
    x as usize
}

/// Rounds a non-negative finite `f64` to the nearest `u64` — the checked
/// spelling of `x.round() as u64` where callers scale integer
/// quantities (nanosecond durations) through `f64` arithmetic.
/// Precondition: `x` is finite, `x ≥ 0`, and `x ≤ 2⁵³` (so the rounded
/// result is exact).
#[inline]
pub fn round_u64(x: f64) -> u64 {
    invariant!(
        x.is_finite() && x >= 0.0 && x <= MAX_EXACT_F64 as f64,
        "rounding produced {x}; caller must range-check first"
    );
    x.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_match_the_casts_they_replace() {
        assert_eq!(exact_f64(0), 0.0);
        assert_eq!(exact_f64(MAX_EXACT_F64), MAX_EXACT_F64 as f64);
        assert_eq!(len_f64(12345), 12345.0);
        assert_eq!(len_u64(7), 7);
        assert_eq!(wide_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(index_u32(41), 41);
        assert_eq!(index_usize(99), 99);
        assert_eq!(small_i32(12), 12);
        assert_eq!(floor_index(3.999), 3);
        assert_eq!(floor_index(0.0), 0);
        assert_eq!(round_u64(2.4), 2);
        assert_eq!(round_u64(2.5), 3);
        assert_eq!(round_u64(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "caller must range-check")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn round_u64_rejects_negative_values() {
        round_u64(-1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds 2^53")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn exact_f64_rejects_imprecise_counts() {
        exact_f64(MAX_EXACT_F64 + 1);
    }

    #[test]
    #[should_panic(expected = "overflows the dense u32 id space")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn index_u32_rejects_overflow() {
        index_u32(usize::MAX);
    }

    #[test]
    #[should_panic(expected = "caller must range-check")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn floor_index_rejects_nan() {
        floor_index(f64::NAN);
    }
}
