//! Shared substrate for the `cluster-server-eval` workspace.
//!
//! This crate deliberately has no knowledge of queueing theory, traces, or
//! request distribution. It provides the low-level pieces every other crate
//! needs:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point simulation time in integer
//!   nanoseconds, so event ordering is exact and platform independent.
//! * [`rng::DetRng`] — a deterministic, seedable xoshiro256++ generator plus
//!   the handful of distributions the simulator and trace generators need.
//! * [`invariant!`](crate::invariant!) — simulation-correctness checks that
//!   are `debug_assert!`s normally and always-on checks under the
//!   `strict-invariants` feature.
//! * [`stats`] — online summary statistics, percentiles, and histograms.
//! * [`csv`] — a minimal CSV writer used by the experiment harness.
//! * [`ascii`] — terminal line charts and heat maps so every figure binary
//!   can render the paper's plots without a plotting dependency.
//! * [`pool`] — a std-only scoped thread pool whose results come back in
//!   submission order, so parallel sweeps stay bit-for-bit deterministic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ascii;
pub mod cast;
pub mod csv;
pub mod invariant;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
