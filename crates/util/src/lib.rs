//! Shared substrate for the `cluster-server-eval` workspace.
//!
//! This crate deliberately has no knowledge of queueing theory, traces, or
//! request distribution. It provides the low-level pieces every other crate
//! needs:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point simulation time in integer
//!   nanoseconds, so event ordering is exact and platform independent.
//! * [`rng::DetRng`] — a deterministic, seedable xoshiro256++ generator (also
//!   usable through the `rand` traits) plus the handful of distributions the
//!   simulator and trace generators need.
//! * [`stats`] — online summary statistics, percentiles, and histograms.
//! * [`csv`] — a minimal CSV writer used by the experiment harness.
//! * [`ascii`] — terminal line charts and heat maps so every figure binary
//!   can render the paper's plots without a plotting dependency.

#![warn(missing_docs)]

pub mod ascii;
pub mod csv;
pub mod rng;
pub mod stats;
pub mod time;

pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
