//! Summary statistics for simulation measurements.

use crate::cast;
use std::fmt;

/// Numerically stable online mean/variance accumulator (Welford's method),
/// also tracking min and max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / cast::exact_f64(self.count);
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = cast::exact_f64(self.count);
        let n2 = cast::exact_f64(other.count);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / cast::exact_f64(self.count)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or +inf if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -inf if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * cast::exact_f64(self.count)
    }

    /// Freezes into an immutable [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

/// An immutable snapshot of summary statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `sorted` using linear
/// interpolation. `sorted` must be ascending; returns `None` when empty.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * cast::len_f64(sorted.len() - 1);
    let lo = cast::floor_index(pos.floor());
    let hi = cast::floor_index(pos.ceil());
    let frac = pos - cast::len_f64(lo);
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    non_finite: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    /// Errors if `buckets == 0` or the bounds are not an ascending finite
    /// pair — library code must not abort on bad caller input.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self, String> {
        if buckets == 0 {
            return Err("histogram needs at least one bucket".into());
        }
        if !(lo.is_finite() && hi.is_finite() && hi > lo) {
            return Err(format!("invalid histogram bounds [{lo}, {hi})"));
        }
        Ok(Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            non_finite: 0,
        })
    }

    /// Records one observation. Non-finite observations are rejected by
    /// `invariant!` (they indicate an upstream arithmetic bug) and, in
    /// plain release builds where the invariant is compiled out, counted
    /// in [`Histogram::non_finite`] instead of being filed into bucket 0:
    /// `NaN` fails both the `< lo` and `>= hi` comparisons and
    /// `(NaN / width) as usize == 0`, so it used to corrupt the lowest
    /// bucket silently.
    pub fn record(&mut self, x: f64) {
        crate::invariant!(
            x.is_finite(),
            "non-finite histogram observation ({x}) — an upstream computation produced NaN or infinity"
        );
        if !x.is_finite() {
            self.non_finite += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / cast::len_f64(self.buckets.len());
            let idx = cast::floor_index((x - self.lo) / width);
            // Guard against floating point landing exactly on `hi`.
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the histogram has recorded no observations at all
    /// (in-range, underflow, or overflow). Buckets are allocated at
    /// construction, so this is about *observations*, not capacity —
    /// the bucket count is always at least 1.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Total recorded observations, including out-of-range and rejected
    /// non-finite ones.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow + self.non_finite
    }

    /// Non-finite observations rejected by [`Histogram::record`]. Always 0
    /// in builds where `invariant!` aborts instead.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Inclusive-exclusive bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / cast::len_f64(self.buckets.len());
        (
            self.lo + cast::len_f64(i) * width,
            self.lo + cast::len_f64(i + 1) * width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let summary = s.summary();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.min, 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_clamps_q() {
        let v = [1.0, 2.0];
        assert_eq!(quantile(&v, -1.0), Some(1.0));
        assert_eq!(quantile(&v, 2.0), Some(2.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!(h.is_empty(), "no observations recorded yet");
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 55.0] {
            h.record(x);
        }
        assert!(!h.is_empty(), "observations were recorded");
        assert_eq!(h.bucket(0), 2); // 0.0, 1.9
        assert_eq!(h.bucket(1), 1); // 2.0
        assert_eq!(h.bucket(4), 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2); // 10.0 and 55.0
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket_bounds(1), (2.0, 4.0));
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(10.0, 10.0, 4).is_err());
        assert!(Histogram::new(10.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "non-finite histogram observation")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn histogram_rejects_nan_observations() {
        // Regression: NaN fails both range comparisons and
        // `(NaN / width) as usize == 0`, so it was silently filed into
        // bucket 0, corrupting the distribution.
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(f64::NAN);
    }

    #[test]
    #[cfg(not(any(debug_assertions, feature = "strict-invariants")))]
    fn histogram_counts_non_finite_separately_in_release() {
        // In plain release builds the invariant is compiled out; the
        // observation must land in the dedicated counter, not bucket 0.
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        h.record(1.0);
        assert_eq!(h.non_finite(), 3);
        assert_eq!(h.bucket(0), 1, "only the finite 1.0 lands in bucket 0");
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_is_empty_tracks_out_of_range_observations() {
        // Regression: is_empty() used to check the bucket *capacity*
        // (allocated in new, so never empty) instead of observations.
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert!(h.is_empty());
        h.record(55.0); // overflow only — still an observation
        assert!(!h.is_empty());
        assert_eq!(h.len(), 2);
    }
}
