//! Deterministic scoped fan-out: a minimal std-only thread pool.
//!
//! The figure suite is embarrassingly parallel — every sweep cell
//! (policy × cluster size × arrival rate × seed) is an independent
//! simulation — but the outputs must stay bit-for-bit reproducible.
//! [`run_indexed`] provides exactly that contract: jobs are identified
//! by their submission index, workers claim indices from a shared
//! counter, and every result is stored in the slot of its *index*, never
//! appended in completion order. The returned vector is therefore
//! identical for any worker count, including 1 (which runs inline on the
//! calling thread with no pool at all).
//!
//! Threads are scoped (`std::thread::scope`), so jobs may borrow from
//! the caller's stack; a panicking job is re-raised on the calling
//! thread after the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available to this process (at least 1).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The workspace-wide worker-count knob: `$L2S_WORKERS` when set to a
/// positive integer (unparsable or zero values are ignored), otherwise
/// [`available_workers`]. Results never depend on this value — the pool
/// orders by job index — so it only trades wall-clock for cores.
/// `L2S_WORKERS=1` pins every sweep to the sequential inline path, which
/// is what the perf baseline uses to keep its measurements comparable.
///
/// The value is capped at [`available_workers`]: threads beyond the
/// core count cannot add throughput to CPU-bound simulation cells, they
/// only add context-switch overhead (measured at a few percent of suite
/// wall-clock when 4 workers land on 1 core). Callers that really want
/// oversubscription can pass an explicit count to [`run_indexed`].
pub fn workers_from_env() -> usize {
    std::env::var("L2S_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .map(|n| n.min(available_workers()))
        .unwrap_or_else(available_workers)
}

/// Runs `count` jobs — `job(0)`, `job(1)`, ... — across at most
/// `workers` scoped threads and returns their results **ordered by job
/// index**, regardless of completion order.
///
/// `workers` is clamped to `[1, count]`. With one worker the jobs run
/// inline on the calling thread, so a single-worker invocation is
/// *exactly* the sequential loop (no spawn, no synchronization). If any
/// job panics, the panic is propagated to the caller after all workers
/// have joined.
pub fn run_indexed<T, F>(workers: usize, count: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, count);
    if workers == 1 {
        return (0..count).map(job).collect();
    }

    // One slot per job, filled under its own (uncontended) mutex: each
    // index is claimed by exactly one worker, so every lock is taken
    // exactly twice — once to store, once to drain.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                // Guided self-scheduling: each claim takes a shrinking
                // chunk of the remaining indices (1/(4·workers) of what's
                // left, at least 1) instead of one index per atomic op.
                // Early claims are large — fewer counter round-trips,
                // better cache locality across neighboring cells — while
                // the chunks taper to single jobs near the end, so the
                // last stragglers still balance across workers.
                scope.spawn(|| loop {
                    let claimed = next.load(Ordering::Relaxed);
                    if claimed >= count {
                        break;
                    }
                    let chunk = ((count - claimed) / (4 * workers)).max(1);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    for i in start..(start + chunk).min(count) {
                        let value = job(i);
                        let mut slot = slots[i].lock().unwrap_or_else(|e| e.into_inner());
                        *slot = Some(value);
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut out = Vec::with_capacity(count);
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(value) => out.push(value),
            // Unreachable once every worker joined cleanly: each index
            // below `count` is claimed and stored exactly once.
            None => crate::invariant::invariant_failed(format_args!(
                "pool job {i} of {count} produced no result"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_come_back_in_submission_order_under_adversarial_delays() {
        // Later-submitted jobs finish first: job i sleeps inversely to
        // its index, so completion order is (roughly) the reverse of
        // submission order. The output must still be index-ordered.
        let count = 16;
        let out = run_indexed(4, count, |i| {
            std::thread::sleep(Duration::from_millis(2 * (count - i) as u64));
            i * 10
        });
        let expect: Vec<usize> = (0..count).map(|i| i * 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_counts_do_not_change_results() {
        let sequential = run_indexed(1, 20, |i| i * i);
        for workers in [2, 3, 4, 7, 20, 64] {
            assert_eq!(run_indexed(workers, 20, |i| i * i), sequential);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let out = run_indexed(8, 100, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<u32> = run_indexed(4, 0, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let inputs: Vec<u64> = (0..10).map(|i| i * 3).collect();
        let out = run_indexed(3, inputs.len(), |i| inputs[i] + 1);
        assert_eq!(out, vec![1, 4, 7, 10, 13, 16, 19, 22, 25, 28]);
    }

    #[test]
    #[should_panic(expected = "job seven failed")]
    fn worker_panics_propagate_to_the_caller() {
        let _ = run_indexed(4, 10, |i| {
            if i == 7 {
                // lint-allow: test-only panic exercising propagation.
                panic!("job seven failed");
            }
            i
        });
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }

    #[test]
    fn chunked_claiming_covers_awkward_counts() {
        // Counts around chunking boundaries (primes, one more than a
        // multiple of 4·workers, tiny counts vs many workers): every
        // index must run exactly once and land in its own slot.
        for count in [1, 2, 3, 7, 17, 33, 97, 128] {
            for workers in [2, 3, 5, 8] {
                let runs = AtomicUsize::new(0);
                let out = run_indexed(workers, count, |i| {
                    runs.fetch_add(1, Ordering::Relaxed);
                    i
                });
                assert_eq!(runs.load(Ordering::Relaxed), count);
                assert_eq!(out, (0..count).collect::<Vec<_>>());
            }
        }
    }
}
