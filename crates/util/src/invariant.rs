//! Checked runtime invariants for the simulation kernel.
//!
//! The simulator's correctness arguments (event-queue monotonicity, cache
//! byte-accounting conservation, per-node load conservation, clean drains)
//! were previously encoded as ad-hoc `debug_assert!`s, which vanish in the
//! `--release` builds that produce every figure. The [`invariant!`] macro
//! gives those checks two modes:
//!
//! - **default**: compiled as `debug_assert!` — zero release-mode cost;
//! - **`strict-invariants` feature**: compiled as an unconditional check in
//!   *every* profile, so release experiment runs abort loudly the moment an
//!   accounting rule is violated instead of silently producing corrupt
//!   figures.
//!
//! Because `cfg!(feature = ...)` resolves against the crate *expanding* the
//! macro, each crate that uses `invariant!` declares its own
//! `strict-invariants` feature (normally forwarding to its dependencies);
//! the workspace root feature turns them all on at once.

/// Asserts a simulation invariant.
///
/// Usage matches `assert!`: a condition plus an optional format message.
/// Under `--features strict-invariants` the check is performed in all build
/// profiles; otherwise it is a `debug_assert!`.
///
/// ```
/// use l2s_util::invariant;
/// let (completed, issued) = (3_u64, 3_u64);
/// invariant!(completed <= issued, "completed {completed} of {issued}");
/// ```
#[macro_export]
macro_rules! invariant {
    ($cond:expr $(,)?) => {
        $crate::invariant!($cond, "invariant violated: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if cfg!(feature = "strict-invariants") {
            if !$cond {
                $crate::invariant::invariant_failed(::core::format_args!($($fmt)+));
            }
        } else {
            debug_assert!($cond, $($fmt)+);
        }
    };
}

/// Aborts the simulation with a diagnostic; the out-of-line cold path of
/// [`invariant!`], kept separate so the check itself inlines to a compare
/// and a jump.
#[cold]
#[inline(never)]
#[track_caller]
pub fn invariant_failed(message: std::fmt::Arguments<'_>) -> ! {
    // lint-allow panic: this is the single sanctioned abort point for
    // failed simulation invariants.
    panic!("{message}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_invariant_is_silent() {
        invariant!(1 + 1 == 2);
        invariant!(true, "never printed {}", 42);
    }

    #[test]
    #[should_panic(expected = "three is not four")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn failing_invariant_panics_with_message() {
        invariant!(3 == 4, "three is not four");
    }

    #[test]
    #[should_panic(expected = "invariant violated: false")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn bare_invariant_reports_the_condition() {
        invariant!(false);
    }
}
