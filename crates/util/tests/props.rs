//! Property-based tests for the util substrate.

use l2s_util::stats::quantile;
use l2s_util::{DetRng, OnlineStats, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Time arithmetic round-trips through nanoseconds exactly.
    #[test]
    fn time_nanos_round_trip(ns in 0u64..u64::MAX / 2) {
        let t = SimTime::from_nanos(ns);
        prop_assert_eq!(t.as_nanos(), ns);
        let d = SimDuration::from_nanos(ns);
        prop_assert_eq!(d.as_nanos(), ns);
    }

    /// `t + d - t == d` whenever the sum does not saturate.
    #[test]
    fn time_add_sub_inverse(t in 0u64..1u64 << 40, d in 0u64..1u64 << 40) {
        let base = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur).saturating_since(base), dur);
    }

    /// Seconds conversion stays within one nanosecond of the input for
    /// representable magnitudes.
    #[test]
    fn seconds_round_trip(us in 0u64..1u64 << 40) {
        let secs = us as f64 * 1e-6;
        let t = SimTime::from_secs_f64(secs);
        prop_assert!((t.as_secs_f64() - secs).abs() < 1e-6);
    }

    /// Welford merging is order-insensitive (associativity within
    /// floating-point tolerance).
    #[test]
    fn stats_merge_any_split(
        data in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 0usize..200,
    ) {
        let split = split % data.len();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }

    /// Quantiles of a sorted vector are bounded by its extremes and
    /// monotone in q.
    #[test]
    fn quantile_bounds_and_monotonicity(mut data in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        data.sort_by(f64::total_cmp);
        let lo = data[0];
        let hi = *data.last().unwrap();
        let mut prev = lo;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&data, q).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    /// Merging a two-way split reproduces the sequential accumulator to
    /// 1e-9 relative tolerance on mean/m2 and *exactly* on count/min/max —
    /// including the splits the looser test above never exercises: an
    /// empty left side, an empty right side, and single-element sides.
    #[test]
    fn stats_merge_split_matches_sequential_tightly(
        data in prop::collection::vec(-1e3f64..1e3, 1..64),
        split_sel in 0usize..66,
    ) {
        // Bias the split toward the edges so empty and single-element
        // sides come up every run, not once in a blue moon.
        let split = match split_sel {
            0 => 0,
            1 => data.len(),
            2 => 1.min(data.len()),
            3 => data.len() - 1,
            s => s % (data.len() + 1),
        };
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.min().to_bits(), whole.min().to_bits());
        prop_assert_eq!(a.max().to_bits(), whole.max().to_bits());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-9 * (1.0 + whole.mean().abs()));
        // m2 = population variance * count; compare it through the only
        // public accessor.
        let m2_merged = a.variance() * a.count() as f64;
        let m2_whole = whole.variance() * whole.count() as f64;
        prop_assert!((m2_merged - m2_whole).abs() <= 1e-9 * (1.0 + m2_whole.abs()));
    }

    /// Two-element quantiles interpolate linearly between the endpoints.
    #[test]
    fn quantile_two_elements_interpolates(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
        q in 0.0f64..1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let v = quantile(&[lo, hi], q).unwrap();
        let expect = lo + (hi - lo) * q;
        prop_assert!((v - expect).abs() <= 1e-9 * (1.0 + expect.abs()));
        prop_assert_eq!(quantile(&[lo, hi], 0.0), Some(lo));
        prop_assert_eq!(quantile(&[lo, hi], 1.0), Some(hi));
        prop_assert!((quantile(&[lo, hi], 0.5).unwrap() - (lo + hi) / 2.0).abs() <= 1e-9 * (1.0 + (lo + hi).abs()));
    }

    /// Every quantile of an all-equal vector is that value exactly.
    #[test]
    fn quantile_all_equal_is_constant(
        x in -1e6f64..1e6,
        n in 1usize..50,
        q in 0.0f64..1.0,
    ) {
        let v = vec![x; n];
        prop_assert_eq!(quantile(&v, q).unwrap().to_bits(), x.to_bits());
    }

    /// A q that lands exactly on a knot (`i / (n-1)`) returns that sorted
    /// element, with no interpolation leakage from the neighbors.
    #[test]
    fn quantile_on_knot_returns_the_element(
        mut data in prop::collection::vec(-1e6f64..1e6, 2..50),
    ) {
        data.sort_by(f64::total_cmp);
        let n = data.len();
        for i in 0..n {
            let q = i as f64 / (n - 1) as f64;
            let v = quantile(&data, q).unwrap();
            prop_assert!((v - data[i]).abs() <= 1e-9 * (1.0 + data[i].abs()));
        }
    }

    /// `below(bound)` stays in range for arbitrary seeds and bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Forked streams never mirror their parent.
    #[test]
    fn rng_fork_differs(seed in any::<u64>()) {
        let mut parent = DetRng::new(seed);
        let mut child = parent.fork();
        let matches = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(matches < 4);
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in prop::collection::vec(0u32..1000, 0..100)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}
