//! Property-based tests for the util substrate.

use l2s_util::stats::quantile;
use l2s_util::{DetRng, OnlineStats, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Time arithmetic round-trips through nanoseconds exactly.
    #[test]
    fn time_nanos_round_trip(ns in 0u64..u64::MAX / 2) {
        let t = SimTime::from_nanos(ns);
        prop_assert_eq!(t.as_nanos(), ns);
        let d = SimDuration::from_nanos(ns);
        prop_assert_eq!(d.as_nanos(), ns);
    }

    /// `t + d - t == d` whenever the sum does not saturate.
    #[test]
    fn time_add_sub_inverse(t in 0u64..1u64 << 40, d in 0u64..1u64 << 40) {
        let base = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((base + dur) - base, dur);
        prop_assert_eq!((base + dur).saturating_since(base), dur);
    }

    /// Seconds conversion stays within one nanosecond of the input for
    /// representable magnitudes.
    #[test]
    fn seconds_round_trip(us in 0u64..1u64 << 40) {
        let secs = us as f64 * 1e-6;
        let t = SimTime::from_secs_f64(secs);
        prop_assert!((t.as_secs_f64() - secs).abs() < 1e-6);
    }

    /// Welford merging is order-insensitive (associativity within
    /// floating-point tolerance).
    #[test]
    fn stats_merge_any_split(
        data in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 0usize..200,
    ) {
        let split = split % data.len();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..split] {
            a.push(x);
        }
        for &x in &data[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }

    /// Quantiles of a sorted vector are bounded by its extremes and
    /// monotone in q.
    #[test]
    fn quantile_bounds_and_monotonicity(mut data in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        data.sort_by(f64::total_cmp);
        let lo = data[0];
        let hi = *data.last().unwrap();
        let mut prev = lo;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let v = quantile(&data, q).unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prop_assert!(v >= prev - 1e-9);
            prev = v;
        }
    }

    /// `below(bound)` stays in range for arbitrary seeds and bounds.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Forked streams never mirror their parent.
    #[test]
    fn rng_fork_differs(seed in any::<u64>()) {
        let mut parent = DetRng::new(seed);
        let mut child = parent.fork();
        let matches = (0..64).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(matches < 4);
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in prop::collection::vec(0u32..1000, 0..100)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}
