//! Simulation configuration.

use crate::FaultPlan;
use l2s::{L2sConfig, LardConfig};
use l2s_cluster::{CachePolicy, HeteroSpec, NodeCosts};
use l2s_net::NetConfig;
use l2s_workload::WorkloadMod;

/// How client requests enter the cluster.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalMode {
    /// The paper's throughput methodology: trace timing is discarded and
    /// requests are injected as fast as the admission window and router
    /// buffer allow.
    ClosedLoop,
    /// Open-loop Poisson arrivals at a fixed rate (requests/s), for
    /// response-time studies against the analytic M/M/1 model. The
    /// admission window is not applied; offered load beyond capacity
    /// grows queues without bound, as in any open system.
    Poisson {
        /// Total arrival rate in requests per second.
        rate_rps: f64,
    },
}

/// Everything a simulation run needs besides the trace and the policy
/// kind. [`SimConfig::paper_default`] reproduces the Section 5.1 setup.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Main-memory cache per node, in KB (paper default: 32 MB, chosen so
    /// the traces' working sets are significant relative to cache size).
    pub cache_kb: f64,
    /// Inbound request-message size in KB (a typical HTTP/1.0 GET).
    pub request_kb: f64,
    /// Per-operation node costs (Table 1).
    pub costs: NodeCosts,
    /// Shared network fabric parameters.
    pub net: NetConfig,
    /// Per-node open-connection window: new client requests are admitted
    /// while the whole cluster holds fewer than `nodes * window`
    /// outstanding requests (the paper's "as fast as the buffers accept"
    /// closed loop). The default (16) sits between L2S's `t = 10` and
    /// `T = 20` thresholds, the operating point the paper's parameter
    /// choices imply: nodes hover just below overload, and hot nodes
    /// trip the threshold and shed load.
    pub window: usize,
    /// Per-node inbound-NI buffer in messages. Sizing only: client
    /// admission is governed by `window` (plus the router buffer), so
    /// in-cluster traffic — hand-offs, control messages — is never
    /// dropped at the NI.
    pub ni_buffer: usize,
    /// How requests arrive (default: the paper's closed loop).
    pub arrivals: ArrivalMode,
    /// Seed for the simulator's own randomness (Poisson interarrivals,
    /// persistent-connection lengths). Runs are deterministic per seed.
    pub seed: u64,
    /// Mean requests per client connection (default 1 = HTTP/1.0, each
    /// request its own connection). Values above 1 model persistent
    /// (HTTP/1.1) connections, which the paper's Section 4 discusses:
    /// after a request completes, the next request of the same
    /// connection arrives at the node currently holding it, which acts
    /// as the initial node. Connection lengths are geometric.
    pub persistent_mean: f64,
    /// When true, misses fetch files through a distributed file system:
    /// each file has a *home* disk (hash-placed) and remote misses pay a
    /// network round trip plus the home node's disk and NI. When false
    /// (default, matching the paper's single `µd` charge), every node
    /// reads missed files from its local disk.
    pub dfs_remote: bool,
    /// Cache replacement policy on every node (default LRU, the paper's;
    /// GreedyDual-Size available as an ablation).
    pub cache_policy: CachePolicy,
    /// CPU scheduling quantum in seconds (default 500 µs): reply
    /// processing (the `µm` cost, up to several ms for large files) is
    /// charged in chunks of this size so short operations (parse,
    /// forward, message handling) interleave with long sends the way a
    /// time-shared CPU sending TCP segments actually behaves. Without
    /// it, a run-to-completion FIFO CPU makes every 160 µs parse wait
    /// behind whole multi-ms replies — head-of-line blocking no real
    /// server exhibits.
    pub cpu_quantum_s: f64,
    /// Whether to warm caches by simulating the trace once before the
    /// measured run (Section 5.1 does; tests may disable it for speed).
    pub warmup: bool,
    /// Optional cap on the number of trace requests used (both warm-up
    /// and measurement), for quick runs.
    pub max_requests: Option<usize>,
    /// L2S policy parameters (`T = 20`, `t = 10`, broadcast delta 4).
    pub l2s: L2sConfig,
    /// LARD policy parameters (`T_low = 25`, `T_high = 65`, batch 4).
    pub lard: LardConfig,
    /// Node crash/recovery schedule applied to the *measured* pass
    /// (the warm-up pass always runs healthy). The default — the empty
    /// plan — reproduces a healthy run byte-for-byte. Fault events
    /// scheduled past the last request extend the measurement window
    /// until they fire.
    pub faults: FaultPlan,
    /// How many times a request aborted by a crash is retried (as a
    /// fresh arrival through the router) before it is counted as
    /// failed. Default 1.
    pub fault_retries: u32,
    /// Client-side delay before a crash-aborted request retries,
    /// modeling connection-timeout detection. Default 0.5 s.
    pub retry_delay_s: f64,
    /// When true (the default), every response time is recorded
    /// individually so the report's p99 is exact. Scaling sweeps over
    /// 10⁸+ requests disable this: the report then carries a streaming
    /// mean (identical workload, O(1) memory) and no p99.
    pub response_samples: bool,
    /// Optional heterogeneous hardware mix. `None` (the default) builds
    /// the paper's identical nodes and is byte-for-byte the historical
    /// behavior; `Some(spec)` expands the spec into per-node CPU speeds,
    /// cache sizes, and NI buffers (scaling `cache_kb` / `ni_buffer` as
    /// the baseline).
    pub hetero: Option<HeteroSpec>,
    /// Number of nodes JSQ(d) samples per arrival (default 2, the
    /// power-of-two-choices operating point). Ignored by other policies.
    pub jsq_d: u32,
    /// Non-stationary workload modulation: an optional arrival-rate
    /// schedule (which overrides Poisson timing when present), flash
    /// crowds, and working-set drift, applied over whatever request
    /// source drives the run. The default — [`WorkloadMod::none`] —
    /// reproduces the stationary run byte for byte.
    pub workload_mod: WorkloadMod,
}

impl SimConfig {
    /// The paper's Section 5.1 configuration for an `n`-node cluster.
    pub fn paper_default(n: usize) -> Self {
        SimConfig {
            nodes: n,
            cache_kb: 32.0 * 1024.0,
            request_kb: 0.3,
            costs: NodeCosts::default(),
            net: NetConfig::default(),
            window: 16,
            ni_buffer: 64,
            arrivals: ArrivalMode::ClosedLoop,
            seed: 0x10ad_ba1e,
            persistent_mean: 1.0,
            dfs_remote: false,
            cache_policy: CachePolicy::Lru,
            cpu_quantum_s: 0.0005,
            warmup: true,
            max_requests: None,
            l2s: L2sConfig::default(),
            lard: LardConfig::default(),
            faults: FaultPlan::none(),
            fault_retries: 1,
            retry_delay_s: 0.5,
            response_samples: true,
            hetero: None,
            jsq_d: 2,
            workload_mod: WorkloadMod::none(),
        }
    }

    /// A fast variant for tests and examples: smaller caches scale with
    /// whatever scaled-down trace is in use, no warm-up pass by default.
    pub fn quick(n: usize, cache_kb: f64) -> Self {
        SimConfig {
            cache_kb,
            warmup: false,
            ..Self::paper_default(n)
        }
    }

    /// Total outstanding-request admission window.
    pub fn total_window(&self) -> usize {
        self.nodes * self.window
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be >= 1".into());
        }
        if self.cache_kb <= 0.0 || !self.cache_kb.is_finite() {
            return Err("cache_kb must be positive".into());
        }
        if self.request_kb <= 0.0 || !self.request_kb.is_finite() {
            return Err("request_kb must be positive".into());
        }
        if self.window == 0 {
            return Err("window must be >= 1".into());
        }
        if self.ni_buffer == 0 {
            return Err("ni_buffer must be >= 1".into());
        }
        if self.cpu_quantum_s <= 0.0 || !self.cpu_quantum_s.is_finite() {
            return Err("cpu_quantum_s must be positive".into());
        }
        if self.persistent_mean < 1.0 || !self.persistent_mean.is_finite() {
            return Err("persistent_mean must be >= 1".into());
        }
        if let ArrivalMode::Poisson { rate_rps } = self.arrivals {
            if rate_rps <= 0.0 || !rate_rps.is_finite() {
                return Err("Poisson rate must be positive".into());
            }
        }
        if self.retry_delay_s < 0.0 || !self.retry_delay_s.is_finite() {
            return Err("retry_delay_s must be finite and non-negative".into());
        }
        if self.jsq_d == 0 {
            return Err("jsq_d must be >= 1".into());
        }
        if let Some(hetero) = &self.hetero {
            // Construction already validated the classes; re-validating
            // here catches specs mutated through Clone + field access.
            HeteroSpec::new(hetero.classes().to_vec())?;
        }
        self.faults.validate(self.nodes)?;
        self.workload_mod.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let c = SimConfig::paper_default(16);
        assert_eq!(c.nodes, 16);
        assert_eq!(c.cache_kb, 32.0 * 1024.0);
        assert!(c.warmup);
        assert_eq!(c.l2s.t_high, 20);
        assert_eq!(c.l2s.t_low, 10);
        assert_eq!(c.lard.t_low, 25);
        assert_eq!(c.lard.t_high, 65);
        c.validate().unwrap();
    }

    #[test]
    fn quick_disables_warmup() {
        let c = SimConfig::quick(4, 1024.0);
        assert!(!c.warmup);
        assert_eq!(c.cache_kb, 1024.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut c = SimConfig::paper_default(0);
        assert!(c.validate().is_err());
        c.nodes = 2;
        c.window = 0;
        assert!(c.validate().is_err());
        c.window = 8;
        c.cache_kb = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn arrival_and_persistence_validation() {
        let mut c = SimConfig::paper_default(2);
        assert_eq!(c.arrivals, ArrivalMode::ClosedLoop);
        assert_eq!(c.persistent_mean, 1.0);
        assert!(!c.dfs_remote);
        c.persistent_mean = 0.5;
        assert!(c.validate().is_err());
        c.persistent_mean = 4.0;
        c.arrivals = ArrivalMode::Poisson { rate_rps: -1.0 };
        assert!(c.validate().is_err());
        c.arrivals = ArrivalMode::Poisson { rate_rps: 100.0 };
        c.validate().unwrap();
    }

    #[test]
    fn fault_config_is_validated() {
        let mut c = SimConfig::paper_default(4);
        assert!(c.faults.is_empty(), "default plan is healthy");
        c.validate().unwrap();
        c.faults = crate::FaultPlan::crash_recover(2, 1.0, 3.0);
        c.validate().unwrap();
        c.faults = crate::FaultPlan::crash_recover(9, 1.0, 3.0);
        assert!(c.validate().is_err(), "plan must fit the cluster");
        c.faults = crate::FaultPlan::none();
        c.retry_delay_s = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hetero_and_jsq_knobs_are_validated() {
        let mut c = SimConfig::paper_default(8);
        assert!(c.hetero.is_none(), "default cluster is homogeneous");
        assert_eq!(c.jsq_d, 2, "power-of-two choices by default");
        c.hetero = Some(HeteroSpec::extreme());
        c.validate().unwrap();
        c.jsq_d = 0;
        assert!(c.validate().is_err(), "JSQ(0) samples nothing");
    }

    #[test]
    fn workload_mod_is_validated() {
        let mut c = SimConfig::paper_default(4);
        assert!(c.workload_mod.is_none(), "default run is stationary");
        c.validate().unwrap();
        c.workload_mod.drift = Some(l2s_workload::DriftSpec {
            period_s: 0.0,
            step: 1,
        });
        assert!(c.validate().is_err(), "zero drift period is nonsense");
        c.workload_mod.drift = Some(l2s_workload::DriftSpec {
            period_s: 60.0,
            step: 3,
        });
        c.validate().unwrap();
    }

    #[test]
    fn total_window_scales_with_nodes() {
        let c = SimConfig::paper_default(8);
        assert_eq!(c.total_window(), 8 * c.window);
    }
}
