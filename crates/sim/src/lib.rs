//! The trace-driven cluster-server simulator (Section 5 of the paper).
//!
//! Wires the request-distribution policies (`l2s` crate) into the
//! discrete-event kernel (`l2s-devs`), node hardware (`l2s-cluster`),
//! and shared fabric (`l2s-net`), and replays a WWW trace through the
//! full request lifecycle:
//!
//! ```text
//! client -> router -> switch -> NI_in -> CPU parse -> policy decision
//!        [-> CPU forward -> NI_out -> switch -> NI_in -> CPU recv]
//!        -> cache hit? CPU reply : disk read then CPU reply
//!        -> NI_out -> switch -> router -> client
//! ```
//!
//! Following Section 5.1:
//! * trace timing is disregarded — new requests are injected "as soon as
//!   the router and network interface buffers would accept them"
//!   (closed-loop admission, bounded per-node connection windows);
//! * every form of contention is simulated (CPU, disk, both NI
//!   directions, router) except inside the switch fabric;
//! * cluster messages cost 3 µs CPU + 6 µs NI per side plus 1 µs of
//!   switch (19 µs one-way for a 4-byte message, the M-VIA figure);
//! * caches are warmed by simulating the whole trace once before
//!   measurement starts.
//!
//! The entry point is [`simulate`]; [`SimReport`] carries every metric
//! the paper's evaluation discusses (throughput, cache miss rate, CPU
//! idle time, forwarded fraction, control-message traffic).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod clock;
mod config;
mod engine;
mod faults;
mod report;
mod workload;

pub use clock::{Clock, VirtualClock, WallClock};
pub use config::{ArrivalMode, SimConfig};
pub use engine::{
    simulate, simulate_observed, simulate_workload, simulate_workload_observed, PlacementObserver,
    PlacementRecord,
};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use report::{NodeReport, SimReport};
pub use workload::{ModulatedWorkload, SynthWorkload, TraceWorkload, Workload};
// Re-export the modulation spec types so callers can build a
// `SimConfig::workload_mod` without naming the workload crate.
pub use l2s_workload::{DriftSpec, FlashCrowd, Modulator, RateSchedule, Segment, WorkloadMod};

// Compile-time Send/Sync audit: the parallel sweep executor in
// `l2s-bench` shares configs across worker threads by reference and
// moves reports back from them, so these bounds are part of the crate's
// public contract. A field change that introduces `Rc`, `RefCell`, or a
// raw pointer fails here, at the definition site, instead of inside the
// executor's generic machinery.
#[allow(dead_code)]
fn engine_inputs_and_outputs_cross_threads() {
    fn send_and_sync<T: Send + Sync>() {}
    send_and_sync::<SimConfig>();
    send_and_sync::<SimReport>();
    send_and_sync::<NodeReport>();
    send_and_sync::<ArrivalMode>();
    send_and_sync::<FaultPlan>();
    send_and_sync::<WorkloadMod>();
}
