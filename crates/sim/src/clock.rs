//! Wall-or-virtual clocks for driving policies outside the DES.
//!
//! The engine's time is the event queue; a *live* driver (the
//! `l2s-replay` front-end) needs an injectable notion of "now" instead,
//! so the same replay loop can run against real time, scaled time, or a
//! purely virtual clock that jumps between trace timestamps
//! (`--as-fast-as-possible`). All times are nanoseconds from the
//! clock's epoch — the same fixed-point base as
//! [`SimTime`](l2s_util::SimTime), but deliberately a bare `u64` so the
//! policy-facing API stays free of engine types.

use std::time::{Duration, Instant};

/// A source of "now" plus the ability to wait for a deadline.
///
/// `now_ns` is monotone non-decreasing. `wait_until_ns` returns once
/// `now_ns() >= deadline_ns`: a wall clock sleeps the calling thread,
/// a virtual clock jumps instantly.
pub trait Clock {
    /// Nanoseconds elapsed since the clock's epoch.
    fn now_ns(&self) -> u64;

    /// Blocks (or jumps) until the clock reaches `deadline_ns`.
    fn wait_until_ns(&mut self, deadline_ns: u64);
}

/// A virtual clock: time is whatever it was last told, and waiting is
/// free. Drives infinite-speed replay and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A virtual clock at its epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns
    }

    fn wait_until_ns(&mut self, deadline_ns: u64) {
        self.now_ns = self.now_ns.max(deadline_ns);
    }
}

/// A wall clock running at `speed` virtual seconds per real second
/// (1.0 = real time, 60.0 = a minute of trace per second). `now_ns`
/// reports *virtual* time, so callers never convert.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
    speed: f64,
}

impl WallClock {
    /// A wall clock whose epoch is now. `speed` must be positive and
    /// finite.
    pub fn new(speed: f64) -> Self {
        l2s_util::invariant!(
            speed.is_finite() && speed > 0.0,
            "clock speed must be positive and finite, got {speed}"
        );
        WallClock {
            start: Instant::now(),
            speed,
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        let real_ns = self.start.elapsed().as_nanos() as f64;
        (real_ns * self.speed) as u64
    }

    fn wait_until_ns(&mut self, deadline_ns: u64) {
        let real_target_ns = deadline_ns as f64 / self.speed;
        let elapsed_ns = self.start.elapsed().as_nanos() as f64;
        if real_target_ns > elapsed_ns {
            std::thread::sleep(Duration::from_nanos((real_target_ns - elapsed_ns) as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_jumps_and_never_rewinds() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.wait_until_ns(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.wait_until_ns(500);
        assert_eq!(c.now_ns(), 1_000, "deadline in the past is a no-op");
    }

    #[test]
    fn wall_clock_scales_real_time() {
        // At speed 1e9 a microsecond of real time is ~a second of
        // virtual time; the exact figure is scheduling-dependent, so
        // only monotonicity and the past-deadline fast path are pinned.
        let mut c = WallClock::new(1e9);
        let a = c.now_ns();
        c.wait_until_ns(0); // already past: returns immediately
        let b = c.now_ns();
        assert!(b >= a);
    }
}
