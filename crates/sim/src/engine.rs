//! The event-driven simulation engine.

use crate::arena::{Flow, ReqArena, ReqId, Route, Timing};
use crate::workload::{ModulatedWorkload, TraceWorkload, Workload};
use crate::{ArrivalMode, FaultKind, NodeReport, SimConfig, SimReport};
use l2s::{
    Distributor, Jiq, Jsq, L2s, Lard, NodeId, PolicyKind, PureLocality, RoundRobin, Sita,
    Traditional,
};
use l2s_cluster::{build_nodes, build_nodes_profiled, FileId, NodeHardware};
use l2s_devs::EventQueue;
use l2s_net::Fabric;
use l2s_trace::{FileSet, Trace};
use l2s_util::stats::quantile;
use l2s_util::{cast, invariant, DetRng, OnlineStats, SimDuration, SimTime};

/// Lifecycle events. Each event marks a request's *arrival* at a
/// contended station, so every FIFO queue sees jobs in true arrival
/// order.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Reached the initial node's inbound NI (after router + switch).
    NicIn(ReqId),
    /// Reached the initial node's CPU for parsing.
    Parse(ReqId),
    /// Parse finished; run the distribution policy.
    Decide(ReqId),
    /// Hand-off message entered the initial node's outbound NI.
    HandoffOut(ReqId),
    /// Hand-off message reached the service node's inbound NI.
    HandoffIn(ReqId),
    /// Ready on the service node: cache lookup, then memory or disk.
    Serve(ReqId),
    /// Disk read finished; the reply runs on the CPU.
    ReplyReady(ReqId),
    /// One CPU quantum of reply processing finished; more remains.
    ReplyChunk(ReqId),
    /// Reply entered the service node's outbound NI.
    NicOut(ReqId),
    /// Reply reached the router.
    RouterOut(ReqId),
    /// Reply left the cluster; the connection closes (or issues its next
    /// request, if persistent).
    Done(ReqId),
    /// Open-loop mode: the next Poisson client arrival.
    ClientArrival,
    /// DFS fetch request arrived at the file's home node.
    DfsRead(ReqId),
    /// DFS home disk read finished; ship the file back.
    DfsTransfer(ReqId),
    /// DFS file arrived back at the requesting node's NI.
    DfsBack(ReqId),
    /// A scheduled fault fires on a node (`true` = recovery). The node
    /// id is stored narrow so `Ev` stays 8 bytes — the queue moves
    /// every event through its lanes several times, and halving the
    /// payload halves that traffic.
    Fault(u32, bool),
    /// A crash-aborted request re-enters the cluster after the client's
    /// timeout-and-retry delay.
    Retry(ReqId),
}

/// Cluster phases for degraded-mode bookkeeping: before the first
/// crash, while at least one node is down, after the last recovery.
const PHASE_HEALTHY: usize = 0;
/// At least one node is currently down.
const PHASE_DEGRADED: usize = 1;
/// Every node is back up after at least one crash.
const PHASE_RECOVERED: usize = 2;

/// Measurement accumulators (reset between warm-up and measurement).
#[derive(Default)]
struct Measure {
    started_at: SimTime,
    completed: u64,
    forwarded: u64,
    decided: u64,
    control_msgs: u64,
    response_s: Vec<f64>,
    /// Streaming response-time moments for runs that disable
    /// per-request samples (`SimConfig::response_samples = false`).
    resp_stats: OnlineStats,
    seg_ingress: OnlineStats,
    seg_handoff: OnlineStats,
    seg_service: OnlineStats,
    /// Requests terminally lost to crashes.
    failed: u64,
    /// Crash-aborted requests re-injected as fresh arrivals.
    retried: u64,
    /// Accumulated per-node downtime (summed over nodes).
    down_time: SimDuration,
    /// Current cluster phase (`PHASE_*`).
    phase: usize,
    /// When the current phase began.
    phase_started: SimTime,
    /// Simulated seconds spent in each phase.
    phase_s: [f64; 3],
    /// Requests completed in each phase.
    phase_completed: [u64; 3],
}

impl Measure {
    /// Closes the current phase at `now` and enters `phase`.
    fn roll_phase(&mut self, now: SimTime, phase: usize) {
        self.phase_s[self.phase] += now.saturating_since(self.phase_started).as_secs_f64();
        self.phase_started = now;
        self.phase = phase;
    }
}

/// Service times precomputed once per run so the event loop never
/// re-derives a `SimDuration` from `f64` seconds on the hot path. The
/// cached values are produced by the exact same conversions the
/// `NodeCosts`/`NetConfig` helpers perform per call, so every scheduled
/// duration is bit-identical to computing it on demand.
struct CostCache {
    ni_in: SimDuration,
    parse: SimDuration,
    forward: SimDuration,
    msg_cpu: SimDuration,
    msg_ni: SimDuration,
    quantum: SimDuration,
    /// Router service time for one inbound client request.
    router_request: SimDuration,
    /// Size-dependent service times, indexed by interned file id.
    per_file: Vec<FileCost>,
}

/// Per-file size and service times (dense by interned file id).
struct FileCost {
    kb: f64,
    mem_reply: SimDuration,
    disk_read: SimDuration,
    ni_out: SimDuration,
    router: SimDuration,
}

impl CostCache {
    fn new(config: &SimConfig, files: &FileSet) -> Self {
        let costs = &config.costs;
        let per_file = files
            .iter()
            .map(|(_, kb)| FileCost {
                kb,
                mem_reply: costs.mem_reply(kb),
                disk_read: costs.disk_read(kb),
                ni_out: costs.ni_out(kb),
                router: config.net.router_service(kb),
            })
            .collect();
        CostCache {
            ni_in: costs.ni_in(),
            parse: costs.parse(),
            forward: costs.forward(),
            msg_cpu: costs.msg_cpu(),
            msg_ni: costs.msg_ni(),
            quantum: SimDuration::from_secs_f64(config.cpu_quantum_s),
            router_request: config.net.router_service(config.request_kb),
            per_file,
        }
    }

    #[inline]
    fn file(&self, file: FileId) -> &FileCost {
        &self.per_file[file.index()]
    }
}

/// One distribution decision, in the order the engine made them — the
/// placement stream `simulate_observed` feeds to its observer and the
/// byte-compared artifact of the replay-parity tests. Records every
/// decision of the run, warm-up pass included (replay runs disable
/// warm-up, so the streams line up one-to-one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacementRecord {
    /// Zero-based decision index over the whole run.
    pub seq: u64,
    /// The file requested.
    pub file: FileId,
    /// The node the client connection landed on.
    pub initial: NodeId,
    /// The node chosen to service the request.
    pub service: NodeId,
    /// Whether the request was handed off (`service != initial`).
    pub forwarded: bool,
    /// Simulated time of the decision.
    pub at: SimTime,
}

/// Observer callback for [`simulate_observed`].
pub type PlacementObserver<'o> = dyn FnMut(PlacementRecord) + 'o;

struct Engine<'t> {
    config: SimConfig,
    workload: &'t mut dyn Workload,
    limit: usize,
    policy: Box<dyn Distributor>,
    nodes: Vec<NodeHardware>,
    /// Per-node CPU speed multiplier (all 1.0 on a homogeneous cluster).
    /// The stations keep wall-clock time; the engine divides CPU service
    /// demands by the node's speed when it schedules them.
    cpu_speed: Vec<f64>,
    fabric: Fabric,
    queue: EventQueue<Ev>,
    arena: ReqArena,
    next_request: usize,
    outstanding: usize,
    /// Cached lower bound on the next router admission: while the clock
    /// is below this, `try_inject` skips the per-event admission query
    /// entirely. Valid because the bound only ever moves later — see
    /// [`Fabric::next_admission`].
    router_gate: SimTime,
    measure: Measure,
    msg_buf: Vec<(NodeId, NodeId)>,
    cc: CostCache,
    rng: DetRng,
    /// Events processed over the whole run (warm-up included).
    events_handled: u64,
    /// Deepest the future-event list ever grew.
    peak_fel: usize,
    /// Per-node liveness under the fault plan (all true when healthy).
    alive: Vec<bool>,
    /// Bumped on every crash; pending events carry the epoch they were
    /// scheduled under, so work lost in a crash aborts when it fires.
    node_epoch: Vec<u32>,
    /// When each currently-down node crashed (valid while `!alive`).
    down_since: Vec<SimTime>,
    /// How many nodes are currently down.
    down_count: usize,
    /// Queue time at the start of the current pass. Workload-supplied
    /// arrival times are relative to the pass start (the source rewinds
    /// between warm-up and measurement while the queue clock keeps
    /// running), so the injector offsets them by this base.
    pass_base_s: f64,
    /// `SimConfig::retry_delay_s` converted once at setup so the retry
    /// paths stay in integer nanoseconds.
    retry_delay: SimDuration,
    /// Callback invoked on every distribution decision (see
    /// [`PlacementRecord`]); `None` on the historical paths.
    observer: Option<&'t mut PlacementObserver<'t>>,
    /// Decisions observed so far (feeds [`PlacementRecord::seq`]; never
    /// reset, unlike the per-pass measurement counters).
    observed_seq: u64,
}

/// Home node of `file` under the hash-placed distributed file system
/// (Fibonacci hashing, matching the pure-locality baseline's spread).
fn dfs_home(file: FileId, nodes: usize) -> NodeId {
    let h = (file.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h % nodes as u64) as NodeId
}

/// Builds the policy for `kind` with the run's parameters.
fn build_policy(kind: PolicyKind, config: &SimConfig) -> Box<dyn Distributor> {
    let n = config.nodes;
    match kind {
        PolicyKind::Traditional => Box::new(Traditional::new(n)),
        PolicyKind::RoundRobin => Box::new(RoundRobin::new(n)),
        PolicyKind::PureLocality => Box::new(PureLocality::new(n)),
        PolicyKind::Lard => Box::new(Lard::new(n, config.lard)),
        PolicyKind::LardBasic => Box::new(Lard::basic(n, config.lard)),
        PolicyKind::LardDispatcher => Box::new(Lard::dispatcher(n, config.lard)),
        PolicyKind::L2s => Box::new(L2s::new(n, config.l2s)),
        PolicyKind::Jsq => Box::new(Jsq::new(n, cast::wide_usize(config.jsq_d), config.seed)),
        PolicyKind::Jiq => Box::new(Jiq::new(n)),
        // On a heterogeneous cluster SITA widens fast nodes' size bands
        // in proportion to their CPU speed.
        PolicyKind::Sita => match &config.hetero {
            Some(h) => Box::new(Sita::weighted(n, h.speeds(n))),
            None => Box::new(Sita::new(n)),
        },
    }
}

/// Runs one simulation of `trace` under `policy_kind` and returns the
/// measured report. See the crate docs for the modeled lifecycle.
pub fn simulate(config: &SimConfig, policy_kind: PolicyKind, trace: &Trace) -> SimReport {
    let mut workload = TraceWorkload::new(trace);
    simulate_workload(config, policy_kind, &mut workload)
}

/// [`simulate`] with a placement observer: `observer` is invoked once
/// per distribution decision, in decision order, with the same
/// [`PlacementRecord`] stream a live replay of the same trace and seed
/// must reproduce. The observer is pure instrumentation — reports are
/// byte-identical to the unobserved run.
pub fn simulate_observed(
    config: &SimConfig,
    policy_kind: PolicyKind,
    trace: &Trace,
    observer: &mut PlacementObserver<'_>,
) -> SimReport {
    let mut workload = TraceWorkload::new(trace);
    // Fresh closure so the trait object's lifetime narrows to the local
    // workload borrow (a `&mut dyn` is invariant in its inner lifetime).
    let mut forward = |r: PlacementRecord| observer(r);
    simulate_workload_observed(config, policy_kind, &mut workload, &mut forward)
}

/// Runs one simulation drawing requests from `workload` — the
/// trace-free entry point scaling sweeps use with a streaming
/// [`SynthWorkload`](crate::SynthWorkload), where memory stays flat in
/// the request count. [`simulate`] is this function over a
/// [`TraceWorkload`] and produces identical reports for the same
/// request sequence.
pub fn simulate_workload(
    config: &SimConfig,
    policy_kind: PolicyKind,
    workload: &mut dyn Workload,
) -> SimReport {
    run_maybe_modulated(config, policy_kind, workload, None)
}

/// [`simulate_workload`] with a placement observer (see
/// [`simulate_observed`]).
pub fn simulate_workload_observed<'t>(
    config: &SimConfig,
    policy_kind: PolicyKind,
    workload: &'t mut dyn Workload,
    observer: &'t mut PlacementObserver<'t>,
) -> SimReport {
    run_maybe_modulated(config, policy_kind, workload, Some(observer))
}

/// Applies the configured workload modulation, if any, then runs.
fn run_maybe_modulated<'t>(
    config: &SimConfig,
    policy_kind: PolicyKind,
    workload: &'t mut dyn Workload,
    observer: Option<&'t mut PlacementObserver<'t>>,
) -> SimReport {
    if config.workload_mod.is_none() {
        // The identity spec takes the historical path with no wrapper in
        // the loop at all — stationary runs stay byte-identical.
        return run_simulation(config, policy_kind, workload, observer);
    }
    let mut modulated = ModulatedWorkload::new(workload, config.workload_mod.clone(), config.seed);
    match observer {
        Some(observer) => {
            // Fresh closure: the modulated wrapper is a local borrow, so
            // the observer's trait-object lifetime must narrow with it.
            let mut forward = |r: PlacementRecord| observer(r);
            run_simulation(config, policy_kind, &mut modulated, Some(&mut forward))
        }
        None => run_simulation(config, policy_kind, &mut modulated, None),
    }
}

/// The engine proper, over whatever (possibly wrapped) source
/// `run_maybe_modulated` settled on.
fn run_simulation<'t>(
    config: &SimConfig,
    policy_kind: PolicyKind,
    workload: &'t mut dyn Workload,
    observer: Option<&'t mut PlacementObserver<'t>>,
) -> SimReport {
    config.validate().expect("invalid simulation configuration");
    l2s_util::invariant!(!workload.is_empty(), "cannot simulate an empty workload");
    let limit = config
        .max_requests
        .map(|m| m.min(workload.len()))
        .unwrap_or(workload.len());
    l2s_util::invariant!(limit > 0, "max_requests must leave at least one request");

    let mut policy = build_policy(policy_kind, config);
    // Files are interned densely, so policies can size their per-file
    // tables once instead of growing them request by request.
    policy.hint_files(workload.files().len());
    if policy_kind == PolicyKind::Sita {
        // SITA splits by size: hand it the file population up front so
        // its bands cover the run's actual byte distribution.
        let sizes: Vec<f64> = workload.files().iter().map(|(_, kb)| kb).collect();
        policy.hint_file_sizes(&sizes);
    }
    // A heterogeneous mix expands into per-node profiles; `None` takes
    // the historical identical-nodes path byte for byte.
    let profiles = config
        .hetero
        .as_ref()
        .map(|h| h.profiles(config.nodes, config.cache_kb, config.ni_buffer));
    let window = config.total_window();
    let cc = CostCache::new(config, workload.files());
    // Per-request samples are the default; scaling sweeps run lean and
    // keep O(1) response statistics instead.
    let sample_cap = if config.response_samples { limit } else { 0 };
    let warmup = config.warmup;
    let mut engine = Engine {
        config: config.clone(),
        workload,
        limit,
        policy,
        nodes: match &profiles {
            Some(p) => build_nodes_profiled(p, config.cache_policy),
            None => build_nodes(
                config.nodes,
                config.cache_policy,
                config.cache_kb,
                config.ni_buffer,
            ),
        },
        cpu_speed: profiles
            .as_ref()
            .map(|p| p.iter().map(|q| q.cpu_speed).collect())
            .unwrap_or_else(|| vec![1.0; config.nodes]),
        fabric: Fabric::new(config.net),
        // Every in-flight request holds at most one pending event, plus
        // one slot for the open-loop arrival timer.
        queue: EventQueue::with_capacity(window + 1),
        arena: ReqArena::with_capacity(window),
        next_request: 0,
        outstanding: 0,
        router_gate: SimTime::ZERO,
        measure: Measure {
            response_s: Vec::with_capacity(sample_cap),
            ..Measure::default()
        },
        msg_buf: Vec::with_capacity(64),
        cc,
        rng: DetRng::new(config.seed),
        events_handled: 0,
        peak_fel: 0,
        alive: vec![true; config.nodes],
        node_epoch: vec![0; config.nodes],
        down_since: vec![SimTime::ZERO; config.nodes],
        down_count: 0,
        pass_base_s: 0.0,
        retry_delay: SimDuration::from_secs_f64(config.retry_delay_s),
        observer,
        observed_seq: 0,
    };

    if warmup {
        engine.run_pass();
        engine.reset_measurement();
        engine.workload.rewind();
        engine.next_request = 0;
    }
    // Faults apply to the measured pass only, at offsets from its start.
    engine.arm_faults();
    engine.run_pass();
    engine.report(policy_kind)
}

impl<'t> Engine<'t> {
    /// Drives one full pass over the (possibly capped) workload: injects
    /// as arrivals dictate and drains every event.
    fn run_pass(&mut self) {
        match self.config.arrivals {
            ArrivalMode::ClosedLoop => {
                self.try_inject();
                while let Some((now, ev)) = self.queue.pop() {
                    self.events_handled += 1;
                    self.peak_fel = self.peak_fel.max(self.queue.len() + 1);
                    self.handle(now, ev);
                    self.try_inject();
                }
            }
            ArrivalMode::Poisson { .. } => {
                self.pass_base_s = self.queue.now().as_secs_f64();
                self.schedule_next_arrival();
                while let Some((now, ev)) = self.queue.pop() {
                    self.events_handled += 1;
                    self.peak_fel = self.peak_fel.max(self.queue.len() + 1);
                    self.handle(now, ev);
                }
            }
        }
        invariant!(
            self.outstanding == 0,
            "drain invariant violated: {n} request(s) left in flight",
            n = self.outstanding
        );
    }

    /// Open-loop mode: schedules the next client arrival, if the
    /// workload has requests left.
    ///
    /// A workload carrying its own clock (a rate-modulated source)
    /// dictates the arrival time; otherwise the engine draws the
    /// configured homogeneous-Poisson gap. Both paths share the single
    /// seconds→duration conversion below.
    fn schedule_next_arrival(&mut self) {
        let ArrivalMode::Poisson { rate_rps } = self.config.arrivals else {
            return;
        };
        if self.next_request >= self.limit {
            return;
        }
        let gap_s = match self.workload.next_arrival_s() {
            Some(t) => (self.pass_base_s + t - self.queue.now().as_secs_f64()).max(0.0),
            None => self.rng.exponential(1.0 / rate_rps),
        };
        let gap = SimDuration::from_secs_f64(gap_s);
        self.queue.schedule_after(gap, Ev::ClientArrival);
    }

    /// Draws a persistent-connection length (geometric with the
    /// configured mean; 1 when persistence is off).
    fn draw_connection_len(&mut self) -> u32 {
        let mean = self.config.persistent_mean;
        if mean <= 1.0 {
            return 1;
        }
        // Geometric on {1, 2, ...} with success probability 1/mean.
        let p = 1.0 / mean;
        let u = self.rng.f64_open();
        let k = 1.0 + (u.ln() / (1.0 - p).ln()).floor();
        k.clamp(1.0, 10_000.0) as u32
    }

    /// Draws the next request's file from the workload. `None` means the
    /// source ran dry — possibly before its advertised `len` — in which
    /// case the pass's request budget is clamped to what was actually
    /// drawn, so every injection loop winds down instead of fabricating
    /// requests for a default file.
    fn next_workload_file(&mut self) -> Option<FileId> {
        let file = self.workload.next_file();
        if file.is_none() {
            self.limit = self.next_request;
        }
        file
    }

    /// Injects one request for `file` at `initial`, entering through the
    /// router. Returns the request id.
    fn launch_request(
        &mut self,
        now: SimTime,
        initial: NodeId,
        conn_remaining: u32,
        continuation: bool,
        file: FileId,
    ) -> ReqId {
        self.next_request += 1;
        let id = self.arena.alloc(
            Route::new(file, initial, self.node_epoch[initial]),
            Timing::at(now),
            Flow::fresh(conn_remaining, continuation, self.config.fault_retries),
        );
        let cleared = self
            .fabric
            .router_transit_service(now, self.cc.router_request);
        let at_node = self.fabric.switch_transit(cleared);
        self.queue.schedule(at_node, Ev::NicIn(id));
        self.outstanding += 1;
        id
    }

    /// Zeroes all statistics after the warm-up pass; cache contents,
    /// policy state, and the clock carry over.
    fn reset_measurement(&mut self) {
        for node in &mut self.nodes {
            node.reset_stats();
        }
        self.fabric.reset_stats();
        // Keep the response-time buffer's allocation across the reset.
        let mut response_s = std::mem::take(&mut self.measure.response_s);
        response_s.clear();
        self.measure = Measure {
            started_at: self.queue.now(),
            phase: PHASE_HEALTHY,
            phase_started: self.queue.now(),
            response_s,
            ..Measure::default()
        };
    }

    /// Schedules the fault plan's events, at their offsets from the
    /// measurement start. The empty plan schedules nothing, so a
    /// healthy run's event stream is untouched.
    fn arm_faults(&mut self) {
        let base = self.queue.now();
        let Engine { config, queue, .. } = self;
        for e in config.faults.events() {
            let up = e.kind == FaultKind::Recover;
            queue.schedule(base + e.at, Ev::Fault(cast::index_u32(e.node), up));
        }
    }

    /// Injects new requests while the workload has them, the
    /// cluster-wide connection window has room, and the router accepts
    /// (the paper's "as soon as the router and network interface buffers
    /// would accept them" closed loop).
    fn try_inject(&mut self) {
        let now = self.queue.now();
        // Below the cached admission bound the router is provably still
        // full — skip the (binary-search) admission query entirely. The
        // bound only moves later between checks, so this refuses exactly
        // the injections `would_accept` would refuse.
        if now < self.router_gate {
            return;
        }
        while self.next_request < self.limit && self.outstanding < self.config.total_window() {
            if let Some(gate) = self.fabric.next_admission(now) {
                self.router_gate = gate;
                return;
            }
            let Some(file) = self.next_workload_file() else {
                return;
            };
            let Some(initial) = self.policy.arrival_node() else {
                // No node can accept the connection (every candidate is
                // down): the request is consumed and counted failed —
                // it must not silently resurrect node 0.
                self.reject_arrival();
                continue;
            };
            let conn = self.draw_connection_len() - 1;
            self.launch_request(now, initial, conn, false, file);
        }
    }

    /// Counts a request whose connection attempt found no live node: it
    /// is consumed from the workload and recorded as failed without ever
    /// entering the router.
    fn reject_arrival(&mut self) {
        self.next_request += 1;
        self.measure.failed += 1;
    }

    /// The node a request-lifecycle event executes on, if any. Events
    /// on the shared fabric (router legs, completion delivery) and the
    /// engine's own timers have no node and survive crashes.
    fn event_target(&self, ev: Ev) -> Option<(ReqId, NodeId)> {
        match ev {
            Ev::NicIn(id) | Ev::Parse(id) | Ev::Decide(id) | Ev::HandoffOut(id) => {
                Some((id, self.arena.route(id).initial()))
            }
            Ev::HandoffIn(id)
            | Ev::Serve(id)
            | Ev::ReplyReady(id)
            | Ev::ReplyChunk(id)
            | Ev::NicOut(id)
            | Ev::DfsBack(id) => Some((id, self.arena.route(id).service())),
            Ev::DfsRead(id) | Ev::DfsTransfer(id) => {
                Some((id, dfs_home(self.arena.route(id).file, self.config.nodes)))
            }
            Ev::RouterOut(_) | Ev::Done(_) | Ev::ClientArrival | Ev::Fault(..) | Ev::Retry(_) => {
                None
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        // Liveness gate: an event whose node is down, or whose node
        // crashed (and possibly rebooted) since the event was
        // scheduled, finds its work gone — the request aborts here, at
        // the time the lost operation would have completed.
        if let Some((id, node)) = self.event_target(ev) {
            if !self.alive[node] || self.arena.route(id).epoch != self.node_epoch[node] {
                self.fail_request(now, id);
                return;
            }
        }
        match ev {
            Ev::NicIn(id) => {
                let node = self.arena.route(id).initial();
                let done = self.nodes[node].ni_in.schedule(now, self.cc.ni_in);
                self.queue.schedule(done, Ev::Parse(id));
            }
            Ev::Parse(id) => {
                let node = self.arena.route(id).initial();
                let svc = self.cpu_time(node, self.cc.parse);
                let done = self.nodes[node].cpu.schedule(now, svc);
                self.queue.schedule(done, Ev::Decide(id));
            }
            Ev::Decide(id) => {
                let (initial, file) = {
                    let r = self.arena.route(id);
                    (r.initial(), r.file)
                };
                let continuation = self.arena.flow(id).continuation;
                let assignment = if continuation {
                    self.policy.assign_continuation(now, initial, file)
                } else {
                    self.policy.assign(now, initial, file)
                };
                self.charge_messages(now);
                self.measure.decided += 1;
                self.measure.control_msgs += u64::from(assignment.control_msgs);
                if let Some(observer) = self.observer.as_deref_mut() {
                    observer(PlacementRecord {
                        seq: self.observed_seq,
                        file,
                        initial,
                        service: assignment.service,
                        forwarded: assignment.forwarded,
                        at: now,
                    });
                    self.observed_seq += 1;
                }
                self.arena.route_mut(id).set_service(assignment.service);
                self.arena.timing_mut(id).decided = now;
                {
                    let flow = self.arena.flow_mut(id);
                    flow.forwarded = assignment.forwarded;
                    flow.assigned = true;
                }
                if assignment.forwarded {
                    self.measure.forwarded += 1;
                    let svc = self.cpu_time(initial, self.cc.forward);
                    let done = self.nodes[initial].cpu.schedule(now, svc);
                    self.queue.schedule(done, Ev::HandoffOut(id));
                } else {
                    self.queue.schedule(now, Ev::Serve(id));
                }
            }
            Ev::HandoffOut(id) => {
                let node = self.arena.route(id).initial();
                let done = self.nodes[node].ni_out.schedule(now, self.cc.msg_ni);
                let arrived = self.fabric.switch_transit(done);
                // The pending event moves to the service node: track its
                // epoch from here on (the hand-off is on the wire, so the
                // initial node's fate no longer matters).
                let service = self.arena.route(id).service();
                self.arena.route_mut(id).epoch = self.node_epoch[service];
                self.queue.schedule(arrived, Ev::HandoffIn(id));
            }
            Ev::HandoffIn(id) => {
                let node = self.arena.route(id).service();
                let done = self.nodes[node].ni_in.schedule(now, self.cc.msg_ni);
                self.queue.schedule(done, Ev::Serve(id));
            }
            Ev::Serve(id) => {
                self.arena.timing_mut(id).served = now;
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                let forwarded = self.arena.flow(id).forwarded;
                let hit = self.nodes[node].access_file(file, self.cc.file(file).kb);
                if hit {
                    self.arena.flow_mut(id).reply_remaining =
                        self.reply_cpu_time(node, file, forwarded);
                    self.schedule_reply_chunk(id, now);
                } else {
                    let home = dfs_home(file, self.config.nodes);
                    if self.config.dfs_remote && home != node {
                        // Remote miss: ask the home node's disk through
                        // the cluster network.
                        let svc = self.cpu_time(node, self.cc.msg_cpu);
                        let sent = self.nodes[node].cpu.schedule(now, svc);
                        let on_wire = self.nodes[node].ni_out.schedule(sent, self.cc.msg_ni);
                        let arrived = self.fabric.switch_transit(on_wire);
                        self.arena.route_mut(id).epoch = self.node_epoch[home];
                        self.queue.schedule(arrived, Ev::DfsRead(id));
                    } else {
                        let done = self.nodes[node]
                            .disk
                            .schedule(now, self.cc.file(file).disk_read);
                        self.queue.schedule(done, Ev::ReplyReady(id));
                    }
                }
            }
            Ev::ReplyReady(id) => {
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                let forwarded = self.arena.flow(id).forwarded;
                self.arena.flow_mut(id).reply_remaining =
                    self.reply_cpu_time(node, file, forwarded);
                self.schedule_reply_chunk(id, now);
            }
            Ev::ReplyChunk(id) => {
                self.schedule_reply_chunk(id, now);
            }
            Ev::NicOut(id) => {
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                let done = self.nodes[node]
                    .ni_out
                    .schedule(now, self.cc.file(file).ni_out);
                let at_router = self.fabric.switch_transit(done);
                self.queue.schedule(at_router, Ev::RouterOut(id));
            }
            Ev::RouterOut(id) => {
                let file = self.arena.route(id).file;
                let done = self
                    .fabric
                    .router_transit_service(now, self.cc.file(file).router);
                self.queue.schedule(done, Ev::Done(id));
            }
            Ev::ClientArrival => {
                if let Some(file) = self.next_workload_file() {
                    match self.policy.arrival_node() {
                        Some(initial) => {
                            let conn = self.draw_connection_len() - 1;
                            self.launch_request(now, initial, conn, false, file);
                        }
                        None => {
                            // Connection refused everywhere: the request
                            // fails at the client, but the arrival
                            // process keeps ticking.
                            self.reject_arrival();
                        }
                    }
                    self.schedule_next_arrival();
                }
            }
            Ev::DfsRead(id) => {
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                let home = dfs_home(file, self.config.nodes);
                invariant!(
                    home != node,
                    "DFS miss routed to its own home: node {node} fetching locally"
                );
                let done = self.nodes[home]
                    .disk
                    .schedule(now, self.cc.file(file).disk_read);
                self.queue.schedule(done, Ev::DfsTransfer(id));
            }
            Ev::DfsTransfer(id) => {
                let file = self.arena.route(id).file;
                let home = dfs_home(file, self.config.nodes);
                let done = self.nodes[home]
                    .ni_out
                    .schedule(now, self.cc.file(file).ni_out);
                let arrived = self.fabric.switch_transit(done);
                // The file is on the wire back to the service node.
                let service = self.arena.route(id).service();
                self.arena.route_mut(id).epoch = self.node_epoch[service];
                self.queue.schedule(arrived, Ev::DfsBack(id));
            }
            Ev::DfsBack(id) => {
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                // Receiving the file costs the NI the same as sending it.
                let done = self.nodes[node]
                    .ni_in
                    .schedule(now, self.cc.file(file).ni_out);
                self.queue.schedule(done, Ev::ReplyReady(id));
            }
            Ev::Done(id) => {
                let (node, file) = {
                    let r = self.arena.route(id);
                    (r.service(), r.file)
                };
                let injected = {
                    let t = self.arena.timing(id);
                    self.measure
                        .seg_ingress
                        .push(t.decided.saturating_since(t.injected).as_secs_f64());
                    self.measure
                        .seg_handoff
                        .push(t.served.saturating_since(t.decided).as_secs_f64());
                    self.measure
                        .seg_service
                        .push(now.saturating_since(t.served).as_secs_f64());
                    t.injected
                };
                let msgs = self.policy.complete(now, node, file);
                self.charge_messages(now);
                self.measure.control_msgs += u64::from(msgs);
                self.nodes[node].completed += 1;
                self.measure.completed += 1;
                self.measure.phase_completed[self.measure.phase] += 1;
                let response = now.saturating_since(injected).as_secs_f64();
                if self.config.response_samples {
                    self.measure.response_s.push(response);
                } else {
                    self.measure.resp_stats.push(response);
                }
                let conn_remaining = self.arena.flow(id).conn_remaining;
                invariant!(
                    self.outstanding > 0,
                    "request accounting underflow: completion with none outstanding"
                );
                self.outstanding -= 1;
                self.arena.release(id);
                if conn_remaining > 0 && self.next_request < self.limit {
                    if let Some(file) = self.next_workload_file() {
                        // Persistent connection: the next request of this
                        // connection arrives at the node that just served —
                        // it holds the connection and acts as initial node.
                        self.policy.arrival_continuation(node);
                        self.launch_request(now, node, conn_remaining - 1, true, file);
                    }
                }
            }
            Ev::Fault(node, up) => {
                let node = cast::wide_usize(node);
                if up {
                    self.node_recover(now, node);
                } else {
                    self.node_crash(now, node);
                }
            }
            Ev::Retry(id) => {
                // The client's retry is a fresh connection: it enters
                // through the router and may land on any live node.
                let Some(initial) = self.policy.arrival_node() else {
                    // Still nowhere to connect. The policy accounting was
                    // already settled by `fail_request` before this retry
                    // was scheduled, so no abort hooks here: either burn
                    // another retry and keep waiting, or give up.
                    let retries_left = self.arena.flow(id).retries_left;
                    if retries_left > 0 {
                        self.arena.flow_mut(id).retries_left -= 1;
                        self.measure.retried += 1;
                        self.queue.schedule_after(self.retry_delay, Ev::Retry(id));
                    } else {
                        self.measure.failed += 1;
                        invariant!(
                            self.outstanding > 0,
                            "request accounting underflow: failure with none outstanding"
                        );
                        self.outstanding -= 1;
                        self.arena.release(id);
                    }
                    return;
                };
                let epoch = self.node_epoch[initial];
                {
                    let r = self.arena.route_mut(id);
                    r.set_initial(initial);
                    r.set_service(initial);
                    r.epoch = epoch;
                }
                {
                    let f = self.arena.flow_mut(id);
                    f.forwarded = false;
                    f.continuation = false;
                    f.reply_remaining = SimDuration::ZERO;
                }
                {
                    // `injected` is kept: response time spans the whole
                    // client experience, retries included.
                    let t = self.arena.timing_mut(id);
                    t.decided = now;
                    t.served = now;
                }
                let cleared = self
                    .fabric
                    .router_transit_service(now, self.cc.router_request);
                let at_node = self.fabric.switch_transit(cleared);
                self.queue.schedule(at_node, Ev::NicIn(id));
            }
        }
    }

    /// Aborts a request whose pending work died with a node: the
    /// policy's load accounting is settled through the matching abort
    /// hook, then the request either retries as a fresh arrival after
    /// the client's timeout or is counted as failed.
    fn fail_request(&mut self, now: SimTime, id: ReqId) {
        let (service, initial, file) = {
            let r = self.arena.route(id);
            (r.service(), r.initial(), r.file)
        };
        let (assigned, retries_left) = {
            let f = self.arena.flow(id);
            (f.assigned, f.retries_left)
        };
        if assigned {
            let msgs = self.policy.abort_assigned(now, service, file);
            self.charge_messages(now);
            self.measure.control_msgs += u64::from(msgs);
        } else {
            self.policy.abort_undecided(now, initial);
        }
        if retries_left > 0 {
            {
                let f = self.arena.flow_mut(id);
                f.retries_left -= 1;
                f.assigned = false;
            }
            self.measure.retried += 1;
            self.queue.schedule_after(self.retry_delay, Ev::Retry(id));
        } else {
            self.measure.failed += 1;
            invariant!(
                self.outstanding > 0,
                "request accounting underflow: failure with none outstanding"
            );
            self.outstanding -= 1;
            self.arena.release(id);
        }
    }

    /// A node crashes: epoch bumps (orphaning every pending event that
    /// targets it), hardware wipes, and the policy excludes it.
    fn node_crash(&mut self, now: SimTime, node: NodeId) {
        invariant!(self.alive[node], "fault plan crashes node {node} twice");
        self.alive[node] = false;
        self.node_epoch[node] += 1;
        self.down_since[node] = now;
        if self.down_count == 0 {
            self.measure.roll_phase(now, PHASE_DEGRADED);
        }
        self.down_count += 1;
        self.nodes[node].crash(now);
        self.policy.node_down(now, node);
    }

    /// A node recovers: idle and cold, it rejoins the policy's
    /// candidate sets.
    fn node_recover(&mut self, now: SimTime, node: NodeId) {
        invariant!(
            !self.alive[node],
            "fault plan recovers node {node} while it is up"
        );
        self.alive[node] = true;
        self.measure.down_time += now.saturating_since(self.down_since[node]);
        invariant!(self.down_count > 0, "recovery without a crash");
        self.down_count -= 1;
        if self.down_count == 0 {
            self.measure.roll_phase(now, PHASE_RECOVERED);
        }
        self.policy.node_up(now, node);
    }

    /// Scales a CPU service demand by `node`'s speed multiplier: a 2×
    /// node finishes the same work in half the wall-clock time. The
    /// homogeneous case (speed 1.0, the default) returns `base`
    /// untouched, keeping those runs bit-identical to the pre-hetero
    /// engine. Only CPU demands scale — disk, NI, and router times are
    /// hardware the speed multiplier does not model.
    #[inline]
    fn cpu_time(&self, node: NodeId, base: SimDuration) -> SimDuration {
        let speed = self.cpu_speed[node];
        if speed == 1.0 {
            base
        } else {
            SimDuration::from_nanos(cast::round_u64(cast::exact_f64(base.as_nanos()) / speed))
        }
    }

    /// CPU time for a reply on `node`: the µm cost plus, for handed-off
    /// requests, the small-message receive cost, scaled by the node's
    /// speed. (The scheduling quantum stays in wall-clock units — a fast
    /// CPU drains more reply work per 500 µs slice, not shorter slices.)
    fn reply_cpu_time(&self, node: NodeId, file: FileId, forwarded: bool) -> SimDuration {
        let mut t = self.cc.file(file).mem_reply;
        if forwarded {
            t += self.cc.msg_cpu;
        }
        self.cpu_time(node, t)
    }

    /// Charges the next quantum of a reply's CPU work; re-queues itself
    /// until the work is exhausted, then emits the reply onto the NI.
    /// Because each chunk re-enters the CPU's FIFO at its own arrival
    /// time, long replies interleave with short operations exactly like
    /// time-shared segment processing.
    fn schedule_reply_chunk(&mut self, id: ReqId, now: SimTime) {
        let quantum = self.cc.quantum;
        let node = self.arena.route(id).service();
        let remaining = self.arena.flow(id).reply_remaining;
        let chunk = remaining.min(quantum);
        let left = remaining - chunk;
        self.arena.flow_mut(id).reply_remaining = left;
        let done = self.nodes[node].cpu.schedule(now, chunk);
        if left.is_zero() {
            self.queue.schedule(done, Ev::NicOut(id));
        } else {
            self.queue.schedule(done, Ev::ReplyChunk(id));
        }
    }

    /// Charges every control message the policy just emitted: 3 µs CPU +
    /// 6 µs NI on the sender, and 6 µs NI + 3 µs CPU on the receiver.
    ///
    /// All four legs are charged at the current event time. Charging a
    /// leg at its downstream arrival time would violate the FIFO
    /// stations' in-arrival-order scheduling discipline (a job submitted
    /// for a *future* arrival advances `free_at` past jobs that arrive
    /// sooner, idling the station artificially). The cost of the
    /// simplification is that a receiver pays its ~9 µs of message
    /// handling up to one message latency (~19 µs) early — far below the
    /// fidelity of interest.
    fn charge_messages(&mut self, now: SimTime) {
        let mut buf = std::mem::take(&mut self.msg_buf);
        self.policy.drain_messages(&mut buf);
        for &(from, to) in &buf {
            // A dead endpoint's legs are skipped: the policies suppress
            // messages involving down nodes, but a node can die between
            // a message being emitted and this charge. Work must never
            // accrue on a crashed node's stations.
            if self.alive[from] {
                let svc = self.cpu_time(from, self.cc.msg_cpu);
                self.nodes[from].cpu.schedule(now, svc);
                self.nodes[from].ni_out.schedule(now, self.cc.msg_ni);
            }
            if self.alive[to] {
                self.nodes[to].ni_in.schedule(now, self.cc.msg_ni);
                let svc = self.cpu_time(to, self.cc.msg_cpu);
                self.nodes[to].cpu.schedule(now, svc);
            }
        }
        buf.clear();
        self.msg_buf = buf;
    }

    fn report(&mut self, kind: PolicyKind) -> SimReport {
        let now = self.queue.now();
        let elapsed = now.saturating_since(self.measure.started_at);
        let elapsed_s = elapsed.as_secs_f64();
        let serving: Vec<NodeId> = self.policy.serving_nodes();

        // Close the current phase and tally downtime for nodes the
        // plan left dead at the end of the run.
        self.measure.phase_s[self.measure.phase] += now
            .saturating_since(self.measure.phase_started)
            .as_secs_f64();
        self.measure.phase_started = now;
        let mut down_time = self.measure.down_time;
        for (node, &alive) in self.alive.iter().enumerate() {
            if !alive {
                down_time += now.saturating_since(self.down_since[node]);
            }
        }
        let unavailability = if elapsed_s > 0.0 {
            (down_time.as_secs_f64() / (elapsed_s * self.config.nodes as f64)).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut phase_rps = [0.0f64; 3];
        for p in 0..3 {
            if self.measure.phase_s[p] > 0.0 {
                phase_rps[p] = self.measure.phase_completed[p] as f64 / self.measure.phase_s[p];
            }
        }

        let per_node: Vec<NodeReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeReport {
                node: i,
                cpu_utilization: n.cpu.utilization(elapsed),
                disk_utilization: n.disk.utilization(elapsed),
                completed: n.completed,
                cache_hits: n.cache.stats().hits,
                cache_misses: n.cache.stats().misses,
            })
            .collect();

        let (hits, misses) = per_node.iter().fold((0u64, 0u64), |(h, m), n| {
            (h + n.cache_hits, m + n.cache_misses)
        });
        let lookups = hits + misses;

        let idle: f64 = if serving.is_empty() {
            0.0
        } else {
            serving
                .iter()
                .map(|&i| 1.0 - per_node[i].cpu_utilization)
                .sum::<f64>()
                / serving.len() as f64
        };

        let mut sorted = std::mem::take(&mut self.measure.response_s);
        sorted.sort_unstable_by(f64::total_cmp);
        // With per-request samples the mean is the exact sorted sum (the
        // float-order-stable path every golden figure was pinned under);
        // lean runs fall back to the streaming moments. p99 needs the
        // samples and reports `None` without them.
        let mean_response = if !sorted.is_empty() {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        } else {
            self.measure.resp_stats.mean()
        };

        SimReport {
            policy: kind.name(),
            nodes: self.config.nodes,
            completed: self.measure.completed,
            elapsed,
            throughput_rps: if elapsed_s > 0.0 {
                self.measure.completed as f64 / elapsed_s
            } else {
                0.0
            },
            miss_rate: if lookups == 0 {
                0.0
            } else {
                misses as f64 / lookups as f64
            },
            forwarded_fraction: if self.measure.decided == 0 {
                0.0
            } else {
                self.measure.forwarded as f64 / self.measure.decided as f64
            },
            cpu_idle: idle,
            router_utilization: self.fabric.router_utilization(elapsed),
            control_msgs_per_request: if self.measure.completed == 0 {
                0.0
            } else {
                self.measure.control_msgs as f64 / self.measure.completed as f64
            },
            mean_response_s: mean_response,
            p99_response_s: quantile(&sorted, 0.99),
            segment_means_s: [
                self.measure.seg_ingress.mean(),
                self.measure.seg_handoff.mean(),
                self.measure.seg_service.mean(),
            ],
            failed: self.measure.failed,
            retried: self.measure.retried,
            unavailability,
            phase_rps,
            events_handled: self.events_handled,
            peak_fel_depth: self.peak_fel,
            fel_ops: self.queue.stats(),
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::SynthWorkload;
    use l2s_trace::TraceSpec;

    fn small_trace(seed: u64) -> Trace {
        TraceSpec::clarknet().scaled(400, 20_000).generate(seed)
    }

    /// A cache sized so that roughly half the scaled working set fits on
    /// one node.
    fn small_config(n: usize) -> SimConfig {
        SimConfig::quick(n, 2_000.0)
    }

    #[test]
    fn every_policy_completes_all_requests() {
        let trace = small_trace(1);
        for kind in PolicyKind::all() {
            let report = simulate(&small_config(4), kind, &trace);
            assert_eq!(
                report.completed,
                trace.len() as u64,
                "{} lost requests",
                kind.name()
            );
            assert!(report.throughput_rps > 0.0);
            assert!(report.elapsed.as_secs_f64() > 0.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = small_trace(2);
        let a = simulate(&small_config(4), PolicyKind::L2s, &trace);
        let b = simulate(&small_config(4), PolicyKind::L2s, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_workload_reproduces_the_materialized_run_exactly() {
        // The scale-out path: simulate_workload over a SynthWorkload
        // must yield the same report as materializing the trace first —
        // with warm-up on, so the rewind path is exercised too.
        let spec = TraceSpec::clarknet().scaled(400, 20_000);
        let trace = spec.generate(2);
        let mut cfg = small_config(4);
        cfg.warmup = true;
        let materialized = simulate(&cfg, PolicyKind::L2s, &trace);
        let mut synth = SynthWorkload::new(&spec, 2);
        let streamed = simulate_workload(&cfg, PolicyKind::L2s, &mut synth);
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn rate_scheduled_open_loop_completes_and_is_deterministic() {
        // A diurnal schedule drives arrival timing through the workload
        // clock instead of the engine's own exponential draws; the run
        // must still complete every request, deterministically.
        let trace = small_trace(3);
        let mut cfg = small_config(4);
        cfg.arrivals = ArrivalMode::Poisson { rate_rps: 500.0 };
        cfg.workload_mod.rate = Some(crate::RateSchedule::diurnal(500.0, 0.7, 10.0).unwrap());
        let a = simulate(&cfg, PolicyKind::Lard, &trace);
        let b = simulate(&cfg, PolicyKind::Lard, &trace);
        assert_eq!(a, b);
        assert_eq!(a.completed, trace.len() as u64);
        // The modulated clock really is in charge: a wildly different
        // nominal rate changes nothing, because the schedule overrides it.
        cfg.arrivals = ArrivalMode::Poisson { rate_rps: 7.0 };
        let c = simulate(&cfg, PolicyKind::Lard, &trace);
        assert_eq!(a.throughput_rps, c.throughput_rps);
    }

    #[test]
    fn inert_modulation_reproduces_the_plain_run() {
        // A spec whose layers are all configured-but-inert takes the
        // wrapped path (`is_none()` is false) yet must reproduce the
        // stationary report exactly, warm-up rewind included.
        let trace = small_trace(4);
        let mut cfg = small_config(4);
        cfg.warmup = true;
        let plain = simulate(&cfg, PolicyKind::L2s, &trace);
        cfg.workload_mod.drift = Some(crate::DriftSpec {
            period_s: 5.0,
            step: 0,
        });
        let wrapped = simulate(&cfg, PolicyKind::L2s, &trace);
        assert_eq!(plain, wrapped);
    }

    #[test]
    fn flash_crowd_shifts_the_miss_rate() {
        // A strong persistent crowd concentrates requests on a handful
        // of files, so the cluster-wide miss rate must drop relative to
        // the stationary run. Caches are kept small enough that capacity
        // misses dominate — with the whole working set resident, a
        // popularity shift has nothing to improve.
        let trace = small_trace(5);
        let mut cfg = SimConfig::quick(4, 200.0);
        let plain = simulate(&cfg, PolicyKind::Lard, &trace);
        cfg.workload_mod.flash = vec![crate::FlashCrowd {
            start_s: 0.0,
            ramp_s: 0.0,
            hold_s: 1e9,
            decay_s: 0.0,
            peak_weight: 0.8,
            hot_files: 4,
            first_id: 0,
        }];
        let crowded = simulate(&cfg, PolicyKind::Lard, &trace);
        assert!(
            crowded.miss_rate < plain.miss_rate,
            "crowd {c} should beat stationary {p}",
            c = crowded.miss_rate,
            p = plain.miss_rate
        );
    }

    #[test]
    fn lean_metrics_change_only_the_response_report() {
        let trace = small_trace(18);
        let full_cfg = small_config(4);
        let mut lean_cfg = full_cfg.clone();
        lean_cfg.response_samples = false;
        let full = simulate(&full_cfg, PolicyKind::L2s, &trace);
        let lean = simulate(&lean_cfg, PolicyKind::L2s, &trace);
        assert_eq!(full.completed, lean.completed);
        assert_eq!(full.events_handled, lean.events_handled);
        assert_eq!(full.throughput_rps, lean.throughput_rps);
        assert_eq!(full.miss_rate, lean.miss_rate);
        // The streaming mean accumulates in arrival order rather than
        // sorted order, so it agrees to float tolerance, not bits.
        assert!(
            (full.mean_response_s - lean.mean_response_s).abs() < 1e-9,
            "streaming mean {} drifted from exact {}",
            lean.mean_response_s,
            full.mean_response_s
        );
        assert_eq!(lean.p99_response_s, None, "p99 needs samples");
        assert!(full.p99_response_s.expect("sampled run has a p99") > 0.0);
    }

    #[test]
    fn l2s_beats_traditional_on_cache_bound_workload() {
        let trace = small_trace(3);
        let cfg = small_config(8);
        let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
        let trad = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert!(
            l2s.throughput_rps > trad.throughput_rps,
            "l2s {} !> trad {}",
            l2s.throughput_rps,
            trad.throughput_rps
        );
        assert!(
            l2s.miss_rate < trad.miss_rate,
            "l2s miss {} !< trad miss {}",
            l2s.miss_rate,
            trad.miss_rate
        );
    }

    #[test]
    fn lard_forwards_everything_l2s_less() {
        let trace = small_trace(4);
        let cfg = small_config(4);
        let lard = simulate(&cfg, PolicyKind::Lard, &trace);
        assert!(
            lard.forwarded_fraction > 0.999,
            "lard forwards all: {}",
            lard.forwarded_fraction
        );
        let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
        assert!(
            l2s.forwarded_fraction < lard.forwarded_fraction,
            "l2s {} !< lard {}",
            l2s.forwarded_fraction,
            lard.forwarded_fraction
        );
    }

    #[test]
    fn traditional_never_forwards() {
        let trace = small_trace(5);
        let report = simulate(&small_config(4), PolicyKind::Traditional, &trace);
        assert_eq!(report.forwarded_fraction, 0.0);
        assert_eq!(report.control_msgs_per_request, 0.0);
    }

    #[test]
    fn warmup_lowers_miss_rate() {
        let trace = small_trace(6);
        let mut cold = small_config(4);
        cold.warmup = false;
        let mut warm = cold.clone();
        warm.warmup = true;
        let cold_report = simulate(&cold, PolicyKind::Traditional, &trace);
        let warm_report = simulate(&warm, PolicyKind::Traditional, &trace);
        assert!(
            warm_report.miss_rate <= cold_report.miss_rate,
            "warm {} !<= cold {}",
            warm_report.miss_rate,
            cold_report.miss_rate
        );
    }

    #[test]
    fn lard_front_end_serves_nothing() {
        let trace = small_trace(7);
        let report = simulate(&small_config(4), PolicyKind::Lard, &trace);
        assert_eq!(report.per_node[0].completed, 0, "front-end served requests");
        assert!(report.per_node[1].completed > 0);
    }

    #[test]
    fn max_requests_caps_the_run() {
        let trace = small_trace(8);
        let mut cfg = small_config(2);
        cfg.max_requests = Some(500);
        let report = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert_eq!(report.completed, 500);
    }

    #[test]
    fn bigger_cluster_is_faster() {
        let trace = small_trace(9);
        let small = simulate(&small_config(2), PolicyKind::L2s, &trace);
        let big = simulate(&small_config(8), PolicyKind::L2s, &trace);
        assert!(
            big.throughput_rps > small.throughput_rps * 1.5,
            "8 nodes {} !>> 2 nodes {}",
            big.throughput_rps,
            small.throughput_rps
        );
    }

    #[test]
    fn poisson_arrivals_follow_offered_load() {
        let trace = small_trace(20);
        let mut cfg = small_config(4);
        // Offered load well below capacity: throughput tracks the rate.
        cfg.arrivals = crate::ArrivalMode::Poisson { rate_rps: 400.0 };
        let r = simulate(&cfg, PolicyKind::L2s, &trace);
        assert_eq!(r.completed, trace.len() as u64);
        assert!(
            (r.throughput_rps / 400.0 - 1.0).abs() < 0.1,
            "throughput {} should track the 400 r/s offered load",
            r.throughput_rps
        );
    }

    #[test]
    fn poisson_response_grows_with_load() {
        let trace = small_trace(21);
        let mut light = small_config(4);
        light.arrivals = crate::ArrivalMode::Poisson { rate_rps: 200.0 };
        let mut heavy = light.clone();
        heavy.arrivals = crate::ArrivalMode::Poisson { rate_rps: 1_500.0 };
        let lr = simulate(&light, PolicyKind::Traditional, &trace);
        let hr = simulate(&heavy, PolicyKind::Traditional, &trace);
        assert!(
            hr.mean_response_s > lr.mean_response_s,
            "heavy {} !> light {}",
            hr.mean_response_s,
            lr.mean_response_s
        );
    }

    #[test]
    fn persistent_connections_conserve_requests_and_locality() {
        let trace = small_trace(22);
        let base = small_config(4);
        let mut persistent = base.clone();
        persistent.persistent_mean = 8.0;
        let single = simulate(&base, PolicyKind::L2s, &trace);
        let multi = simulate(&persistent, PolicyKind::L2s, &trace);
        assert_eq!(multi.completed, trace.len() as u64, "requests conserved");
        // The conservative affinity rule must not blow up the miss rate
        // (the failure mode of serve-anywhere affinity).
        assert!(
            multi.miss_rate < single.miss_rate + 0.05,
            "persistent miss {} vs single {}",
            multi.miss_rate,
            single.miss_rate
        );
    }

    #[test]
    fn persistent_connections_bypass_lards_front_end() {
        // Aron et al. '99: with P-HTTP, back-ends forward amongst
        // themselves and the front-end stops being the per-request
        // bottleneck. Use a cache-friendly workload so the front-end is
        // the binding constraint in HTTP/1.0 mode.
        let trace = small_trace(25);
        // Enough back-ends and window depth that the per-request
        // front-end is deeply saturated in HTTP/1.0 mode.
        let mut base = small_config(12);
        base.cache_kb = 8_000.0;
        base.window = 32;
        let mut persistent = base.clone();
        persistent.persistent_mean = 8.0;
        let single = simulate(&base, PolicyKind::Lard, &trace);
        let multi = simulate(&persistent, PolicyKind::Lard, &trace);
        assert!(
            multi.throughput_rps > single.throughput_rps * 1.2,
            "persistent {} should beat per-request front-end {}",
            multi.throughput_rps,
            single.throughput_rps
        );
    }

    #[test]
    fn dfs_remote_misses_cost_more() {
        let trace = small_trace(23);
        let mut local = small_config(4);
        local.cache_kb = 500.0; // force a high miss rate
        let mut remote = local.clone();
        remote.dfs_remote = true;
        let lr = simulate(&local, PolicyKind::Traditional, &trace);
        let rr = simulate(&remote, PolicyKind::Traditional, &trace);
        assert_eq!(rr.completed, trace.len() as u64);
        assert!(
            rr.throughput_rps < lr.throughput_rps,
            "remote DFS {} should cost throughput vs local {}",
            rr.throughput_rps,
            lr.throughput_rps
        );
    }

    #[test]
    fn cache_policy_is_selectable() {
        let trace = small_trace(24);
        let mut cfg = small_config(4);
        cfg.cache_policy = l2s_cluster::CachePolicy::GreedyDualSize;
        let gds = simulate(&cfg, PolicyKind::Traditional, &trace);
        cfg.cache_policy = l2s_cluster::CachePolicy::Lru;
        let lru = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert_eq!(gds.completed, lru.completed);
        assert_ne!(
            gds.miss_rate, lru.miss_rate,
            "policies should behave differently on a size-skewed workload"
        );
    }

    #[test]
    fn response_times_are_sane() {
        let trace = small_trace(10);
        let report = simulate(&small_config(4), PolicyKind::L2s, &trace);
        assert!(report.mean_response_s > 0.0);
        let p99 = report.p99_response_s.expect("sampled run has a p99");
        assert!(p99 >= report.mean_response_s * 0.5);
        // Nothing should take longer than a few seconds of simulated time.
        assert!(p99 < 10.0, "p99 = {p99}");
    }

    /// A workload that advertises more requests than its backing trace
    /// holds — the shape of the regression where an exhausted stream
    /// silently became an endless run of requests for file 0.
    struct Lying<'t> {
        inner: TraceWorkload<'t>,
        claimed: usize,
    }

    impl Workload for Lying<'_> {
        fn files(&self) -> &FileSet {
            self.inner.files()
        }
        fn len(&self) -> usize {
            self.claimed
        }
        fn next_file(&mut self) -> Option<FileId> {
            self.inner.next_file()
        }
        fn rewind(&mut self) {
            self.inner.rewind();
        }
    }

    #[test]
    fn a_workload_that_runs_dry_ends_the_run_instead_of_serving_file_zero() {
        let trace = small_trace(32);
        let mut lying = Lying {
            inner: TraceWorkload::new(&trace),
            claimed: trace.len() * 2,
        };
        let r = simulate_workload(&small_config(4), PolicyKind::Traditional, &mut lying);
        assert_eq!(
            r.completed,
            trace.len() as u64,
            "only real requests are served"
        );
        assert_eq!(r.failed, 0);
    }

    #[test]
    fn a_dry_open_loop_workload_also_winds_down() {
        let trace = small_trace(33);
        let mut lying = Lying {
            inner: TraceWorkload::new(&trace),
            claimed: trace.len() * 2,
        };
        let mut cfg = small_config(4);
        cfg.arrivals = crate::ArrivalMode::Poisson { rate_rps: 400.0 };
        let r = simulate_workload(&cfg, PolicyKind::Traditional, &mut lying);
        assert_eq!(r.completed, trace.len() as u64);
    }

    #[test]
    fn hetero_uniform_matches_the_homogeneous_run_exactly() {
        let trace = small_trace(30);
        let base = small_config(4);
        let mut uni = base.clone();
        uni.hetero = Some(l2s_cluster::HeteroSpec::uniform());
        for kind in [PolicyKind::L2s, PolicyKind::Jsq, PolicyKind::Sita] {
            let a = simulate(&base, kind, &trace);
            let b = simulate(&uni, kind, &trace);
            assert_eq!(a, b, "{} diverged under the uniform spec", kind.name());
        }
    }

    #[test]
    fn hetero_fast_nodes_absorb_more_load_under_jsq() {
        let trace = small_trace(31);
        let mut cfg = small_config(8);
        cfg.hetero = Some(l2s_cluster::HeteroSpec::extreme());
        let r = simulate(&cfg, PolicyKind::Jsq, &trace);
        assert_eq!(r.completed, trace.len() as u64);
        // The extreme mix puts two 4× nodes in front of six 0.5× ones;
        // least-loaded sampling should complete more per fast node.
        let fast: u64 = r.per_node[..2].iter().map(|n| n.completed).sum();
        let slow: u64 = r.per_node[2..].iter().map(|n| n.completed).sum();
        assert!(
            fast * 6 > slow * 2,
            "per-node: fast {fast}/2 !> slow {slow}/6"
        );
    }

    #[test]
    fn new_dispatchers_run_deterministically() {
        let trace = small_trace(34);
        let cfg = small_config(4);
        for kind in [PolicyKind::Jsq, PolicyKind::Jiq, PolicyKind::Sita] {
            let a = simulate(&cfg, kind, &trace);
            let b = simulate(&cfg, kind, &trace);
            assert_eq!(a, b, "{} is not deterministic", kind.name());
            assert_eq!(a.completed, trace.len() as u64, "{}", kind.name());
        }
    }

    #[test]
    fn jsq_d_widens_the_choice_set() {
        let trace = small_trace(35);
        let mut d1 = small_config(8);
        d1.jsq_d = 1;
        let mut d4 = d1.clone();
        d4.jsq_d = 4;
        let r1 = simulate(&d1, PolicyKind::Jsq, &trace);
        let r4 = simulate(&d4, PolicyKind::Jsq, &trace);
        assert_eq!(r1.completed, r4.completed);
        // d = 1 is random placement, d = 4 samples four nodes: the knob
        // must actually reach the policy and change the placements. (The
        // closed loop's admission window already bounds imbalance, so
        // per-node counts are not a useful discriminator here.)
        let counts_1: Vec<u64> = r1.per_node.iter().map(|n| n.completed).collect();
        let counts_4: Vec<u64> = r4.per_node.iter().map(|n| n.completed).collect();
        assert_ne!(counts_1, counts_4, "jsq_d is not reaching the policy");
    }

    /// A crash/recovery pair sized to `kind`'s healthy run: `node` dies
    /// at 25% of the healthy elapsed time and reboots at 55%, so the
    /// run passes through all three phases.
    fn mid_run_fault(
        cfg: &SimConfig,
        kind: PolicyKind,
        trace: &Trace,
        node: usize,
    ) -> crate::FaultPlan {
        let healthy = simulate(cfg, kind, trace);
        let e = healthy.elapsed.as_secs_f64();
        crate::FaultPlan::crash_recover(node, 0.25 * e, 0.55 * e)
    }

    #[test]
    fn healthy_runs_report_no_fault_activity() {
        let trace = small_trace(11);
        let r = simulate(&small_config(4), PolicyKind::L2s, &trace);
        assert_eq!(r.failed, 0);
        assert_eq!(r.retried, 0);
        assert_eq!(r.unavailability, 0.0);
        assert!(r.phase_rps[0] > 0.0, "all completions are healthy-phase");
        assert_eq!(r.phase_rps[1], 0.0);
        assert_eq!(r.phase_rps[2], 0.0);
    }

    #[test]
    fn every_policy_survives_a_crash_and_conserves_requests() {
        let trace = small_trace(12);
        let base = small_config(4);
        for kind in PolicyKind::all() {
            let mut cfg = base.clone();
            cfg.faults = mid_run_fault(&base, kind, &trace, 2);
            let r = simulate(&cfg, kind, &trace);
            assert_eq!(
                r.completed + r.failed,
                trace.len() as u64,
                "{}: every request must complete or terminally fail",
                kind.name()
            );
            assert!(
                r.unavailability > 0.0 && r.unavailability < 1.0,
                "{}: unavailability {} out of range",
                kind.name(),
                r.unavailability
            );
            assert!(
                r.phase_rps[1] > 0.0,
                "{}: no degraded-phase completions",
                kind.name()
            );
            assert!(
                r.phase_rps[2] > 0.0,
                "{}: no recovered-phase completions",
                kind.name()
            );
        }
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let trace = small_trace(13);
        let mut cfg = small_config(4);
        cfg.faults = mid_run_fault(&cfg, PolicyKind::L2s, &trace, 1);
        let a = simulate(&cfg, PolicyKind::L2s, &trace);
        let b = simulate(&cfg, PolicyKind::L2s, &trace);
        assert_eq!(a, b);
        assert!(a.retried > 0, "the crash should strand some requests");
    }

    #[test]
    fn retries_rescue_requests_that_a_crash_aborts() {
        let trace = small_trace(14);
        let mut cfg = small_config(4);
        cfg.faults = mid_run_fault(&cfg, PolicyKind::Traditional, &trace, 2);
        cfg.fault_retries = 4;
        let r = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert!(r.retried > 0, "the crash should strand some requests");
        assert_eq!(
            r.failed, 0,
            "with live nodes available and retries enabled, nothing is lost"
        );
        assert_eq!(r.completed, trace.len() as u64);
    }

    #[test]
    fn disabling_retries_turns_aborts_into_failures() {
        let trace = small_trace(15);
        let mut cfg = small_config(4);
        cfg.faults = mid_run_fault(&cfg, PolicyKind::Traditional, &trace, 2);
        cfg.fault_retries = 0;
        let r = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert_eq!(r.retried, 0);
        assert!(r.failed > 0, "aborted requests must surface as failures");
        assert_eq!(r.completed + r.failed, trace.len() as u64);
    }

    #[test]
    fn degraded_cluster_loses_throughput() {
        let trace = small_trace(16);
        let mut cfg = small_config(4);
        cfg.faults = mid_run_fault(&cfg, PolicyKind::Traditional, &trace, 3);
        let r = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert!(
            r.phase_rps[1] < r.phase_rps[0],
            "3 nodes ({} r/s) should be slower than 4 ({} r/s)",
            r.phase_rps[1],
            r.phase_rps[0]
        );
    }

    #[test]
    fn all_down_cluster_fails_every_request_and_places_none() {
        // Regression for the silent-zero family: an `unwrap_or(0)` in
        // the selection path used to route arrivals to node 0 even with
        // the whole cluster down. With Option-based selection a total
        // outage must reject everything — no request may reach node 0
        // (or any node) and every injected request counts as failed.
        let trace = small_trace(23);
        let mut cfg = small_config(4);
        cfg.faults = crate::FaultPlan::scheduled(
            (0..4)
                .map(|node| crate::FaultEvent {
                    at: SimDuration::ZERO,
                    node,
                    kind: FaultKind::Crash,
                })
                .collect(),
        );
        cfg.fault_retries = 3;
        for kind in [PolicyKind::L2s, PolicyKind::Lard, PolicyKind::Jsq] {
            let mut placements = Vec::new();
            let mut observer = |r: PlacementRecord| placements.push(r);
            let r = simulate_observed(&cfg, kind, &trace, &mut observer);
            assert_eq!(
                r.failed,
                trace.len() as u64,
                "{}: every injected request must fail during a total outage",
                kind.name()
            );
            assert_eq!(r.completed, 0, "{}: nothing can complete", kind.name());
            assert!(
                placements.is_empty(),
                "{}: {} placements reached nodes of an all-down cluster \
                 (first: node {:?})",
                kind.name(),
                placements.len(),
                placements.first().map(|p| p.service)
            );
            assert_eq!(
                r.per_node.iter().map(|n| n.completed).sum::<u64>(),
                0,
                "{}: per-node counters must agree",
                kind.name()
            );
        }
    }

    #[test]
    fn lard_front_end_crash_is_survivable() {
        // LARD's front-end is a single point of failure for *state*, but
        // the simulated cluster detects the crash, fails over arrivals,
        // and rebuilds the mapping on recovery.
        let trace = small_trace(17);
        let mut cfg = small_config(4);
        cfg.faults = mid_run_fault(&cfg, PolicyKind::Lard, &trace, 0);
        cfg.fault_retries = 8;
        let r = simulate(&cfg, PolicyKind::Lard, &trace);
        assert_eq!(r.completed + r.failed, trace.len() as u64);
        assert!(r.completed > 0);
    }
}
