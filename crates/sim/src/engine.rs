//! The event-driven simulation engine.

use crate::{ArrivalMode, NodeReport, SimConfig, SimReport};
use l2s::{Distributor, L2s, Lard, NodeId, PolicyKind, PureLocality, RoundRobin, Traditional};
use l2s_cluster::{build_nodes, FileId, NodeHardware};
use l2s_devs::EventQueue;
use l2s_net::Fabric;
use l2s_trace::Trace;
use l2s_util::stats::quantile;
use l2s_util::{invariant, DetRng, OnlineStats, SimDuration, SimTime};

/// Index into the in-flight request slab.
type ReqId = u32;

/// In-flight request state.
#[derive(Clone, Debug)]
struct Req {
    file: FileId,
    kb: f64,
    initial: NodeId,
    service: NodeId,
    injected: SimTime,
    decided: SimTime,
    served: SimTime,
    forwarded: bool,
    /// Reply CPU work not yet charged (chunked into scheduling quanta).
    reply_remaining: SimDuration,
    /// Further requests this client connection will issue after the
    /// current one (persistent-connection mode).
    conn_remaining: u32,
    /// Whether this request continues an existing persistent connection.
    continuation: bool,
}

/// Lifecycle events. Each event marks a request's *arrival* at a
/// contended station, so every FIFO queue sees jobs in true arrival
/// order.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Reached the initial node's inbound NI (after router + switch).
    NicIn(ReqId),
    /// Reached the initial node's CPU for parsing.
    Parse(ReqId),
    /// Parse finished; run the distribution policy.
    Decide(ReqId),
    /// Hand-off message entered the initial node's outbound NI.
    HandoffOut(ReqId),
    /// Hand-off message reached the service node's inbound NI.
    HandoffIn(ReqId),
    /// Ready on the service node: cache lookup, then memory or disk.
    Serve(ReqId),
    /// Disk read finished; the reply runs on the CPU.
    ReplyReady(ReqId),
    /// One CPU quantum of reply processing finished; more remains.
    ReplyChunk(ReqId),
    /// Reply entered the service node's outbound NI.
    NicOut(ReqId),
    /// Reply reached the router.
    RouterOut(ReqId),
    /// Reply left the cluster; the connection closes (or issues its next
    /// request, if persistent).
    Done(ReqId),
    /// Open-loop mode: the next Poisson client arrival.
    ClientArrival,
    /// DFS fetch request arrived at the file's home node.
    DfsRead(ReqId),
    /// DFS home disk read finished; ship the file back.
    DfsTransfer(ReqId),
    /// DFS file arrived back at the requesting node's NI.
    DfsBack(ReqId),
}

/// Measurement accumulators (reset between warm-up and measurement).
#[derive(Default)]
struct Measure {
    started_at: SimTime,
    completed: u64,
    forwarded: u64,
    decided: u64,
    control_msgs: u64,
    response_s: Vec<f64>,
    seg_ingress: OnlineStats,
    seg_handoff: OnlineStats,
    seg_service: OnlineStats,
}

/// Service times precomputed once per run so the event loop never
/// re-derives a `SimDuration` from `f64` seconds on the hot path. The
/// cached values are produced by the exact same conversions the
/// `NodeCosts`/`NetConfig` helpers perform per call, so every scheduled
/// duration is bit-identical to computing it on demand.
struct CostCache {
    ni_in: SimDuration,
    parse: SimDuration,
    forward: SimDuration,
    msg_cpu: SimDuration,
    msg_ni: SimDuration,
    quantum: SimDuration,
    /// Router service time for one inbound client request.
    router_request: SimDuration,
    /// Size-dependent service times, indexed by interned file id.
    per_file: Vec<FileCost>,
}

/// Per-file service times (dense by interned file id).
struct FileCost {
    mem_reply: SimDuration,
    disk_read: SimDuration,
    ni_out: SimDuration,
    router: SimDuration,
}

impl CostCache {
    fn new(config: &SimConfig, trace: &Trace) -> Self {
        let costs = &config.costs;
        let files = trace.files();
        let per_file = files
            .iter()
            .map(|(_, kb)| FileCost {
                mem_reply: costs.mem_reply(kb),
                disk_read: costs.disk_read(kb),
                ni_out: costs.ni_out(kb),
                router: config.net.router_service(kb),
            })
            .collect();
        CostCache {
            ni_in: costs.ni_in(),
            parse: costs.parse(),
            forward: costs.forward(),
            msg_cpu: costs.msg_cpu(),
            msg_ni: costs.msg_ni(),
            quantum: SimDuration::from_secs_f64(config.cpu_quantum_s),
            router_request: config.net.router_service(config.request_kb),
            per_file,
        }
    }

    #[inline]
    fn file(&self, file: FileId) -> &FileCost {
        &self.per_file[file.index()]
    }
}

struct Engine<'t> {
    config: SimConfig,
    trace: &'t Trace,
    limit: usize,
    policy: Box<dyn Distributor>,
    nodes: Vec<NodeHardware>,
    fabric: Fabric,
    queue: EventQueue<Ev>,
    slab: Vec<Req>,
    free: Vec<ReqId>,
    next_request: usize,
    outstanding: usize,
    measure: Measure,
    msg_buf: Vec<(NodeId, NodeId)>,
    cc: CostCache,
    rng: DetRng,
    /// Events processed over the whole run (warm-up included).
    events_handled: u64,
    /// Deepest the future-event list ever grew.
    peak_fel: usize,
}

/// Home node of `file` under the hash-placed distributed file system
/// (Fibonacci hashing, matching the pure-locality baseline's spread).
fn dfs_home(file: FileId, nodes: usize) -> NodeId {
    let h = (file.raw() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h % nodes as u64) as NodeId
}

/// Builds the policy for `kind` with the run's parameters.
fn build_policy(kind: PolicyKind, config: &SimConfig) -> Box<dyn Distributor> {
    let n = config.nodes;
    match kind {
        PolicyKind::Traditional => Box::new(Traditional::new(n)),
        PolicyKind::RoundRobin => Box::new(RoundRobin::new(n)),
        PolicyKind::PureLocality => Box::new(PureLocality::new(n)),
        PolicyKind::Lard => Box::new(Lard::new(n, config.lard)),
        PolicyKind::LardBasic => Box::new(Lard::basic(n, config.lard)),
        PolicyKind::LardDispatcher => Box::new(Lard::dispatcher(n, config.lard)),
        PolicyKind::L2s => Box::new(L2s::new(n, config.l2s)),
    }
}

/// Runs one simulation of `trace` under `policy_kind` and returns the
/// measured report. See the crate docs for the modeled lifecycle.
pub fn simulate(config: &SimConfig, policy_kind: PolicyKind, trace: &Trace) -> SimReport {
    config.validate().expect("invalid simulation configuration");
    l2s_util::invariant!(!trace.is_empty(), "cannot simulate an empty trace");
    let limit = config
        .max_requests
        .map(|m| m.min(trace.len()))
        .unwrap_or(trace.len());
    l2s_util::invariant!(limit > 0, "max_requests must leave at least one request");

    let mut policy = build_policy(policy_kind, config);
    // Files are interned densely, so policies can size their per-file
    // tables once instead of growing them request by request.
    policy.hint_files(trace.files().len());
    let window = config.total_window();
    let mut engine = Engine {
        config: *config,
        trace,
        limit,
        policy,
        nodes: build_nodes(
            config.nodes,
            config.cache_policy,
            config.cache_kb,
            config.ni_buffer,
        ),
        fabric: Fabric::new(config.net),
        // Every in-flight request holds at most one pending event, plus
        // one slot for the open-loop arrival timer.
        queue: EventQueue::with_capacity(window + 1),
        slab: Vec::with_capacity(window),
        free: Vec::with_capacity(window),
        next_request: 0,
        outstanding: 0,
        measure: Measure {
            response_s: Vec::with_capacity(limit),
            ..Measure::default()
        },
        msg_buf: Vec::with_capacity(64),
        cc: CostCache::new(config, trace),
        rng: DetRng::new(config.seed),
        events_handled: 0,
        peak_fel: 0,
    };

    if config.warmup {
        engine.run_pass();
        engine.reset_measurement();
        engine.next_request = 0;
    }
    engine.run_pass();
    engine.report(policy_kind)
}

impl<'t> Engine<'t> {
    /// Drives one full pass over the (possibly capped) trace: injects as
    /// arrivals dictate and drains every event.
    fn run_pass(&mut self) {
        match self.config.arrivals {
            ArrivalMode::ClosedLoop => {
                self.try_inject();
                while let Some((now, ev)) = self.queue.pop() {
                    self.events_handled += 1;
                    self.peak_fel = self.peak_fel.max(self.queue.len() + 1);
                    self.handle(now, ev);
                    self.try_inject();
                }
            }
            ArrivalMode::Poisson { .. } => {
                self.schedule_next_arrival();
                while let Some((now, ev)) = self.queue.pop() {
                    self.events_handled += 1;
                    self.peak_fel = self.peak_fel.max(self.queue.len() + 1);
                    self.handle(now, ev);
                }
            }
        }
        invariant!(
            self.outstanding == 0,
            "drain invariant violated: {n} request(s) left in flight",
            n = self.outstanding
        );
    }

    /// Open-loop mode: schedules the next client arrival, if the trace
    /// has requests left.
    fn schedule_next_arrival(&mut self) {
        let ArrivalMode::Poisson { rate_rps } = self.config.arrivals else {
            return;
        };
        if self.next_request >= self.limit {
            return;
        }
        let gap = SimDuration::from_secs_f64(self.rng.exponential(1.0 / rate_rps));
        self.queue.schedule_after(gap, Ev::ClientArrival);
    }

    /// Draws a persistent-connection length (geometric with the
    /// configured mean; 1 when persistence is off).
    fn draw_connection_len(&mut self) -> u32 {
        let mean = self.config.persistent_mean;
        if mean <= 1.0 {
            return 1;
        }
        // Geometric on {1, 2, ...} with success probability 1/mean.
        let p = 1.0 / mean;
        let u = self.rng.f64_open();
        let k = 1.0 + (u.ln() / (1.0 - p).ln()).floor();
        k.clamp(1.0, 10_000.0) as u32
    }

    /// Injects one request at `initial`, entering through the router.
    /// Returns the request id.
    fn launch_request(
        &mut self,
        now: SimTime,
        initial: NodeId,
        conn_remaining: u32,
        continuation: bool,
    ) -> ReqId {
        let file = self.trace.requests()[self.next_request];
        self.next_request += 1;
        let kb = self.trace.files().size_kb(file);
        let id = self.alloc(Req {
            file,
            kb,
            initial,
            service: initial,
            injected: now,
            decided: now,
            served: now,
            forwarded: false,
            reply_remaining: SimDuration::ZERO,
            conn_remaining,
            continuation,
        });
        let cleared = self
            .fabric
            .router_transit_service(now, self.cc.router_request);
        let at_node = self.fabric.switch_transit(cleared);
        self.queue.schedule(at_node, Ev::NicIn(id));
        self.outstanding += 1;
        id
    }

    /// Zeroes all statistics after the warm-up pass; cache contents,
    /// policy state, and the clock carry over.
    fn reset_measurement(&mut self) {
        for node in &mut self.nodes {
            node.reset_stats();
        }
        self.fabric.reset_stats();
        // Keep the response-time buffer's allocation across the reset.
        let mut response_s = std::mem::take(&mut self.measure.response_s);
        response_s.clear();
        self.measure = Measure {
            started_at: self.queue.now(),
            response_s,
            ..Measure::default()
        };
    }

    /// Injects new requests while the trace has them, the cluster-wide
    /// connection window has room, and the router accepts (the paper's
    /// "as soon as the router and network interface buffers would accept
    /// them" closed loop).
    fn try_inject(&mut self) {
        let now = self.queue.now();
        while self.next_request < self.limit
            && self.outstanding < self.config.total_window()
            && self.fabric.would_accept(now)
        {
            let initial = self.policy.arrival_node();
            let conn = self.draw_connection_len() - 1;
            self.launch_request(now, initial, conn, false);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::NicIn(id) => {
                let node = self.slab[id as usize].initial;
                let done = self.nodes[node].ni_in.schedule(now, self.cc.ni_in);
                self.queue.schedule(done, Ev::Parse(id));
            }
            Ev::Parse(id) => {
                let node = self.slab[id as usize].initial;
                let done = self.nodes[node].cpu.schedule(now, self.cc.parse);
                self.queue.schedule(done, Ev::Decide(id));
            }
            Ev::Decide(id) => {
                let (initial, file) = {
                    let r = &self.slab[id as usize];
                    (r.initial, r.file)
                };
                let continuation = self.slab[id as usize].continuation;
                let assignment = if continuation {
                    self.policy.assign_continuation(now, initial, file)
                } else {
                    self.policy.assign(now, initial, file)
                };
                self.charge_messages(now);
                self.measure.decided += 1;
                self.measure.control_msgs += u64::from(assignment.control_msgs);
                let req = &mut self.slab[id as usize];
                req.service = assignment.service;
                req.forwarded = assignment.forwarded;
                req.decided = now;
                if assignment.forwarded {
                    self.measure.forwarded += 1;
                    let done = self.nodes[initial].cpu.schedule(now, self.cc.forward);
                    self.queue.schedule(done, Ev::HandoffOut(id));
                } else {
                    self.queue.schedule(now, Ev::Serve(id));
                }
            }
            Ev::HandoffOut(id) => {
                let node = self.slab[id as usize].initial;
                let done = self.nodes[node].ni_out.schedule(now, self.cc.msg_ni);
                let arrived = self.fabric.switch_transit(done);
                self.queue.schedule(arrived, Ev::HandoffIn(id));
            }
            Ev::HandoffIn(id) => {
                let node = self.slab[id as usize].service;
                let done = self.nodes[node].ni_in.schedule(now, self.cc.msg_ni);
                self.queue.schedule(done, Ev::Serve(id));
            }
            Ev::Serve(id) => {
                self.slab[id as usize].served = now;
                let (node, file, kb, forwarded) = {
                    let r = &self.slab[id as usize];
                    (r.service, r.file, r.kb, r.forwarded)
                };
                let hit = self.nodes[node].access_file(file, kb);
                if hit {
                    self.slab[id as usize].reply_remaining = self.reply_cpu_time(file, forwarded);
                    self.schedule_reply_chunk(id, now);
                } else {
                    let home = dfs_home(file, self.config.nodes);
                    if self.config.dfs_remote && home != node {
                        // Remote miss: ask the home node's disk through
                        // the cluster network.
                        let sent = self.nodes[node].cpu.schedule(now, self.cc.msg_cpu);
                        let on_wire = self.nodes[node].ni_out.schedule(sent, self.cc.msg_ni);
                        let arrived = self.fabric.switch_transit(on_wire);
                        self.queue.schedule(arrived, Ev::DfsRead(id));
                    } else {
                        let done = self.nodes[node]
                            .disk
                            .schedule(now, self.cc.file(file).disk_read);
                        self.queue.schedule(done, Ev::ReplyReady(id));
                    }
                }
            }
            Ev::ReplyReady(id) => {
                let (file, forwarded) = {
                    let r = &self.slab[id as usize];
                    (r.file, r.forwarded)
                };
                self.slab[id as usize].reply_remaining = self.reply_cpu_time(file, forwarded);
                self.schedule_reply_chunk(id, now);
            }
            Ev::ReplyChunk(id) => {
                self.schedule_reply_chunk(id, now);
            }
            Ev::NicOut(id) => {
                let (node, file) = {
                    let r = &self.slab[id as usize];
                    (r.service, r.file)
                };
                let done = self.nodes[node]
                    .ni_out
                    .schedule(now, self.cc.file(file).ni_out);
                let at_router = self.fabric.switch_transit(done);
                self.queue.schedule(at_router, Ev::RouterOut(id));
            }
            Ev::RouterOut(id) => {
                let file = self.slab[id as usize].file;
                let done = self
                    .fabric
                    .router_transit_service(now, self.cc.file(file).router);
                self.queue.schedule(done, Ev::Done(id));
            }
            Ev::ClientArrival => {
                let initial = self.policy.arrival_node();
                let conn = self.draw_connection_len() - 1;
                self.launch_request(now, initial, conn, false);
                self.schedule_next_arrival();
            }
            Ev::DfsRead(id) => {
                let (node, file) = {
                    let r = &self.slab[id as usize];
                    (r.service, r.file)
                };
                let home = dfs_home(file, self.config.nodes);
                invariant!(
                    home != node,
                    "DFS miss routed to its own home: node {node} fetching locally"
                );
                let done = self.nodes[home]
                    .disk
                    .schedule(now, self.cc.file(file).disk_read);
                self.queue.schedule(done, Ev::DfsTransfer(id));
            }
            Ev::DfsTransfer(id) => {
                let file = self.slab[id as usize].file;
                let home = dfs_home(file, self.config.nodes);
                let done = self.nodes[home]
                    .ni_out
                    .schedule(now, self.cc.file(file).ni_out);
                let arrived = self.fabric.switch_transit(done);
                self.queue.schedule(arrived, Ev::DfsBack(id));
            }
            Ev::DfsBack(id) => {
                let (node, file) = {
                    let r = &self.slab[id as usize];
                    (r.service, r.file)
                };
                // Receiving the file costs the NI the same as sending it.
                let done = self.nodes[node]
                    .ni_in
                    .schedule(now, self.cc.file(file).ni_out);
                self.queue.schedule(done, Ev::ReplyReady(id));
            }
            Ev::Done(id) => {
                let (node, file, injected) = {
                    let r = &self.slab[id as usize];
                    (r.service, r.file, r.injected)
                };
                {
                    let r = &self.slab[id as usize];
                    self.measure
                        .seg_ingress
                        .push(r.decided.saturating_since(r.injected).as_secs_f64());
                    self.measure
                        .seg_handoff
                        .push(r.served.saturating_since(r.decided).as_secs_f64());
                    self.measure
                        .seg_service
                        .push(now.saturating_since(r.served).as_secs_f64());
                }
                let msgs = self.policy.complete(now, node, file);
                self.charge_messages(now);
                self.measure.control_msgs += u64::from(msgs);
                self.nodes[node].completed += 1;
                self.measure.completed += 1;
                self.measure
                    .response_s
                    .push(now.saturating_since(injected).as_secs_f64());
                let conn_remaining = self.slab[id as usize].conn_remaining;
                invariant!(
                    self.outstanding > 0,
                    "request accounting underflow: completion with none outstanding"
                );
                self.outstanding -= 1;
                self.release(id);
                if conn_remaining > 0 && self.next_request < self.limit {
                    // Persistent connection: the next request of this
                    // connection arrives at the node that just served —
                    // it holds the connection and acts as initial node.
                    self.policy.arrival_continuation(node);
                    self.launch_request(now, node, conn_remaining - 1, true);
                }
            }
        }
    }

    /// CPU time for a reply: the µm cost plus, for handed-off requests,
    /// the small-message receive cost.
    fn reply_cpu_time(&self, file: FileId, forwarded: bool) -> SimDuration {
        let mut t = self.cc.file(file).mem_reply;
        if forwarded {
            t += self.cc.msg_cpu;
        }
        t
    }

    /// Charges the next quantum of a reply's CPU work; re-queues itself
    /// until the work is exhausted, then emits the reply onto the NI.
    /// Because each chunk re-enters the CPU's FIFO at its own arrival
    /// time, long replies interleave with short operations exactly like
    /// time-shared segment processing.
    fn schedule_reply_chunk(&mut self, id: ReqId, now: SimTime) {
        let quantum = self.cc.quantum;
        let node = self.slab[id as usize].service;
        let remaining = self.slab[id as usize].reply_remaining;
        let chunk = remaining.min(quantum);
        self.slab[id as usize].reply_remaining = remaining - chunk;
        let done = self.nodes[node].cpu.schedule(now, chunk);
        if self.slab[id as usize].reply_remaining.is_zero() {
            self.queue.schedule(done, Ev::NicOut(id));
        } else {
            self.queue.schedule(done, Ev::ReplyChunk(id));
        }
    }

    /// Charges every control message the policy just emitted: 3 µs CPU +
    /// 6 µs NI on the sender, and 6 µs NI + 3 µs CPU on the receiver.
    ///
    /// All four legs are charged at the current event time. Charging a
    /// leg at its downstream arrival time would violate the FIFO
    /// stations' in-arrival-order scheduling discipline (a job submitted
    /// for a *future* arrival advances `free_at` past jobs that arrive
    /// sooner, idling the station artificially). The cost of the
    /// simplification is that a receiver pays its ~9 µs of message
    /// handling up to one message latency (~19 µs) early — far below the
    /// fidelity of interest.
    fn charge_messages(&mut self, now: SimTime) {
        let mut buf = std::mem::take(&mut self.msg_buf);
        self.policy.drain_messages(&mut buf);
        for &(from, to) in &buf {
            self.nodes[from].cpu.schedule(now, self.cc.msg_cpu);
            self.nodes[from].ni_out.schedule(now, self.cc.msg_ni);
            self.nodes[to].ni_in.schedule(now, self.cc.msg_ni);
            self.nodes[to].cpu.schedule(now, self.cc.msg_cpu);
        }
        buf.clear();
        self.msg_buf = buf;
    }

    fn alloc(&mut self, req: Req) -> ReqId {
        match self.free.pop() {
            Some(id) => {
                self.slab[id as usize] = req;
                id
            }
            None => {
                self.slab.push(req);
                (self.slab.len() - 1) as ReqId
            }
        }
    }

    fn release(&mut self, id: ReqId) {
        self.free.push(id);
    }

    fn report(&mut self, kind: PolicyKind) -> SimReport {
        let elapsed = self.queue.now().saturating_since(self.measure.started_at);
        let elapsed_s = elapsed.as_secs_f64();
        let serving: Vec<NodeId> = self.policy.serving_nodes();

        let per_node: Vec<NodeReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeReport {
                node: i,
                cpu_utilization: n.cpu.utilization(elapsed),
                disk_utilization: n.disk.utilization(elapsed),
                completed: n.completed,
                cache_hits: n.cache.stats().hits,
                cache_misses: n.cache.stats().misses,
            })
            .collect();

        let (hits, misses) = per_node.iter().fold((0u64, 0u64), |(h, m), n| {
            (h + n.cache_hits, m + n.cache_misses)
        });
        let lookups = hits + misses;

        let idle: f64 = if serving.is_empty() {
            0.0
        } else {
            serving
                .iter()
                .map(|&i| 1.0 - per_node[i].cpu_utilization)
                .sum::<f64>()
                / serving.len() as f64
        };

        let mut sorted = std::mem::take(&mut self.measure.response_s);
        sorted.sort_unstable_by(f64::total_cmp);
        let mean_response = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };

        SimReport {
            policy: kind.name(),
            nodes: self.config.nodes,
            completed: self.measure.completed,
            elapsed,
            throughput_rps: if elapsed_s > 0.0 {
                self.measure.completed as f64 / elapsed_s
            } else {
                0.0
            },
            miss_rate: if lookups == 0 {
                0.0
            } else {
                misses as f64 / lookups as f64
            },
            forwarded_fraction: if self.measure.decided == 0 {
                0.0
            } else {
                self.measure.forwarded as f64 / self.measure.decided as f64
            },
            cpu_idle: idle,
            router_utilization: self.fabric.router_utilization(elapsed),
            control_msgs_per_request: if self.measure.completed == 0 {
                0.0
            } else {
                self.measure.control_msgs as f64 / self.measure.completed as f64
            },
            mean_response_s: mean_response,
            p99_response_s: quantile(&sorted, 0.99).unwrap_or(0.0),
            segment_means_s: [
                self.measure.seg_ingress.mean(),
                self.measure.seg_handoff.mean(),
                self.measure.seg_service.mean(),
            ],
            events_handled: self.events_handled,
            peak_fel_depth: self.peak_fel,
            per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2s_trace::TraceSpec;

    fn small_trace(seed: u64) -> Trace {
        TraceSpec::clarknet().scaled(400, 20_000).generate(seed)
    }

    /// A cache sized so that roughly half the scaled working set fits on
    /// one node.
    fn small_config(n: usize) -> SimConfig {
        SimConfig::quick(n, 2_000.0)
    }

    #[test]
    fn every_policy_completes_all_requests() {
        let trace = small_trace(1);
        for kind in PolicyKind::all() {
            let report = simulate(&small_config(4), kind, &trace);
            assert_eq!(
                report.completed,
                trace.len() as u64,
                "{} lost requests",
                kind.name()
            );
            assert!(report.throughput_rps > 0.0);
            assert!(report.elapsed.as_secs_f64() > 0.0);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = small_trace(2);
        let a = simulate(&small_config(4), PolicyKind::L2s, &trace);
        let b = simulate(&small_config(4), PolicyKind::L2s, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn l2s_beats_traditional_on_cache_bound_workload() {
        let trace = small_trace(3);
        let cfg = small_config(8);
        let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
        let trad = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert!(
            l2s.throughput_rps > trad.throughput_rps,
            "l2s {} !> trad {}",
            l2s.throughput_rps,
            trad.throughput_rps
        );
        assert!(
            l2s.miss_rate < trad.miss_rate,
            "l2s miss {} !< trad miss {}",
            l2s.miss_rate,
            trad.miss_rate
        );
    }

    #[test]
    fn lard_forwards_everything_l2s_less() {
        let trace = small_trace(4);
        let cfg = small_config(4);
        let lard = simulate(&cfg, PolicyKind::Lard, &trace);
        assert!(
            lard.forwarded_fraction > 0.999,
            "lard forwards all: {}",
            lard.forwarded_fraction
        );
        let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
        assert!(
            l2s.forwarded_fraction < lard.forwarded_fraction,
            "l2s {} !< lard {}",
            l2s.forwarded_fraction,
            lard.forwarded_fraction
        );
    }

    #[test]
    fn traditional_never_forwards() {
        let trace = small_trace(5);
        let report = simulate(&small_config(4), PolicyKind::Traditional, &trace);
        assert_eq!(report.forwarded_fraction, 0.0);
        assert_eq!(report.control_msgs_per_request, 0.0);
    }

    #[test]
    fn warmup_lowers_miss_rate() {
        let trace = small_trace(6);
        let mut cold = small_config(4);
        cold.warmup = false;
        let mut warm = cold;
        warm.warmup = true;
        let cold_report = simulate(&cold, PolicyKind::Traditional, &trace);
        let warm_report = simulate(&warm, PolicyKind::Traditional, &trace);
        assert!(
            warm_report.miss_rate <= cold_report.miss_rate,
            "warm {} !<= cold {}",
            warm_report.miss_rate,
            cold_report.miss_rate
        );
    }

    #[test]
    fn lard_front_end_serves_nothing() {
        let trace = small_trace(7);
        let report = simulate(&small_config(4), PolicyKind::Lard, &trace);
        assert_eq!(report.per_node[0].completed, 0, "front-end served requests");
        assert!(report.per_node[1].completed > 0);
    }

    #[test]
    fn max_requests_caps_the_run() {
        let trace = small_trace(8);
        let mut cfg = small_config(2);
        cfg.max_requests = Some(500);
        let report = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert_eq!(report.completed, 500);
    }

    #[test]
    fn bigger_cluster_is_faster() {
        let trace = small_trace(9);
        let small = simulate(&small_config(2), PolicyKind::L2s, &trace);
        let big = simulate(&small_config(8), PolicyKind::L2s, &trace);
        assert!(
            big.throughput_rps > small.throughput_rps * 1.5,
            "8 nodes {} !>> 2 nodes {}",
            big.throughput_rps,
            small.throughput_rps
        );
    }

    #[test]
    fn poisson_arrivals_follow_offered_load() {
        let trace = small_trace(20);
        let mut cfg = small_config(4);
        // Offered load well below capacity: throughput tracks the rate.
        cfg.arrivals = crate::ArrivalMode::Poisson { rate_rps: 400.0 };
        let r = simulate(&cfg, PolicyKind::L2s, &trace);
        assert_eq!(r.completed, trace.len() as u64);
        assert!(
            (r.throughput_rps / 400.0 - 1.0).abs() < 0.1,
            "throughput {} should track the 400 r/s offered load",
            r.throughput_rps
        );
    }

    #[test]
    fn poisson_response_grows_with_load() {
        let trace = small_trace(21);
        let mut light = small_config(4);
        light.arrivals = crate::ArrivalMode::Poisson { rate_rps: 200.0 };
        let mut heavy = light;
        heavy.arrivals = crate::ArrivalMode::Poisson { rate_rps: 1_500.0 };
        let lr = simulate(&light, PolicyKind::Traditional, &trace);
        let hr = simulate(&heavy, PolicyKind::Traditional, &trace);
        assert!(
            hr.mean_response_s > lr.mean_response_s,
            "heavy {} !> light {}",
            hr.mean_response_s,
            lr.mean_response_s
        );
    }

    #[test]
    fn persistent_connections_conserve_requests_and_locality() {
        let trace = small_trace(22);
        let base = small_config(4);
        let mut persistent = base;
        persistent.persistent_mean = 8.0;
        let single = simulate(&base, PolicyKind::L2s, &trace);
        let multi = simulate(&persistent, PolicyKind::L2s, &trace);
        assert_eq!(multi.completed, trace.len() as u64, "requests conserved");
        // The conservative affinity rule must not blow up the miss rate
        // (the failure mode of serve-anywhere affinity).
        assert!(
            multi.miss_rate < single.miss_rate + 0.05,
            "persistent miss {} vs single {}",
            multi.miss_rate,
            single.miss_rate
        );
    }

    #[test]
    fn persistent_connections_bypass_lards_front_end() {
        // Aron et al. '99: with P-HTTP, back-ends forward amongst
        // themselves and the front-end stops being the per-request
        // bottleneck. Use a cache-friendly workload so the front-end is
        // the binding constraint in HTTP/1.0 mode.
        let trace = small_trace(25);
        // Enough back-ends and window depth that the per-request
        // front-end is deeply saturated in HTTP/1.0 mode.
        let mut base = small_config(12);
        base.cache_kb = 8_000.0;
        base.window = 32;
        let mut persistent = base;
        persistent.persistent_mean = 8.0;
        let single = simulate(&base, PolicyKind::Lard, &trace);
        let multi = simulate(&persistent, PolicyKind::Lard, &trace);
        assert!(
            multi.throughput_rps > single.throughput_rps * 1.2,
            "persistent {} should beat per-request front-end {}",
            multi.throughput_rps,
            single.throughput_rps
        );
    }

    #[test]
    fn dfs_remote_misses_cost_more() {
        let trace = small_trace(23);
        let mut local = small_config(4);
        local.cache_kb = 500.0; // force a high miss rate
        let mut remote = local;
        remote.dfs_remote = true;
        let lr = simulate(&local, PolicyKind::Traditional, &trace);
        let rr = simulate(&remote, PolicyKind::Traditional, &trace);
        assert_eq!(rr.completed, trace.len() as u64);
        assert!(
            rr.throughput_rps < lr.throughput_rps,
            "remote DFS {} should cost throughput vs local {}",
            rr.throughput_rps,
            lr.throughput_rps
        );
    }

    #[test]
    fn cache_policy_is_selectable() {
        let trace = small_trace(24);
        let mut cfg = small_config(4);
        cfg.cache_policy = l2s_cluster::CachePolicy::GreedyDualSize;
        let gds = simulate(&cfg, PolicyKind::Traditional, &trace);
        cfg.cache_policy = l2s_cluster::CachePolicy::Lru;
        let lru = simulate(&cfg, PolicyKind::Traditional, &trace);
        assert_eq!(gds.completed, lru.completed);
        assert_ne!(
            gds.miss_rate, lru.miss_rate,
            "policies should behave differently on a size-skewed workload"
        );
    }

    #[test]
    fn response_times_are_sane() {
        let trace = small_trace(10);
        let report = simulate(&small_config(4), PolicyKind::L2s, &trace);
        assert!(report.mean_response_s > 0.0);
        assert!(report.p99_response_s >= report.mean_response_s * 0.5);
        // Nothing should take longer than a few seconds of simulated time.
        assert!(
            report.p99_response_s < 10.0,
            "p99 = {}",
            report.p99_response_s
        );
    }
}
