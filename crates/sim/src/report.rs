//! Simulation results.

use l2s_util::{cast, SimDuration};

/// Per-node measurements over the measurement window.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Node index.
    pub node: usize,
    /// CPU utilization (0..1).
    pub cpu_utilization: f64,
    /// Disk utilization (0..1).
    pub disk_utilization: f64,
    /// Requests this node serviced.
    pub completed: u64,
    /// Cache hits at this node.
    pub cache_hits: u64,
    /// Cache misses at this node.
    pub cache_misses: u64,
}

impl NodeReport {
    /// This node's cache miss rate (0 when it saw no lookups).
    pub fn miss_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            cast::exact_f64(self.cache_misses) / cast::exact_f64(total)
        }
    }
}

/// Results of one simulation run (measurement window only — the warm-up
/// pass is excluded).
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Policy name the run used.
    pub policy: &'static str,
    /// Cluster size.
    pub nodes: usize,
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// Simulated duration of the measurement window.
    pub elapsed: SimDuration,
    /// Sustained throughput in requests per second.
    pub throughput_rps: f64,
    /// Aggregate cache miss rate across serving nodes.
    pub miss_rate: f64,
    /// Fraction of requests handed off between nodes.
    pub forwarded_fraction: f64,
    /// Mean CPU idle fraction over *serving* nodes (LARD's front-end is
    /// excluded, as in the paper's idle-time discussion).
    pub cpu_idle: f64,
    /// Router utilization.
    pub router_utilization: f64,
    /// Small control messages per completed request (load/server-set
    /// dissemination, completion reports).
    pub control_msgs_per_request: f64,
    /// Mean end-to-end response time in seconds.
    pub mean_response_s: f64,
    /// 99th-percentile response time in seconds. `None` when the run
    /// recorded no individual samples — either `response_samples` was
    /// off (lean scaling sweeps) or no request completed at all — so an
    /// absent percentile can never masquerade as a 0.0 s one.
    pub p99_response_s: Option<f64>,
    /// Mean time per lifecycle segment in seconds: `[ingress, handoff,
    /// service]` — client arrival through distribution decision, decision
    /// through readiness at the service node, and readiness through reply
    /// departure. Useful for locating queueing delay.
    pub segment_means_s: [f64; 3],
    /// Requests terminally lost to node crashes (aborted and out of
    /// retries, or aborted with retries disabled). Always 0 on a
    /// healthy run.
    pub failed: u64,
    /// Crash-aborted requests that re-entered the cluster as fresh
    /// arrivals (each retry of the same request counts once). Always 0
    /// on a healthy run.
    pub retried: u64,
    /// Fraction of node capacity lost to downtime: down node-seconds
    /// over `elapsed * nodes`, in `[0, 1]`. 0 on a healthy run.
    pub unavailability: f64,
    /// Throughput (completed requests per second) by cluster phase:
    /// `[healthy, degraded, recovered]` — before the first crash, while
    /// at least one node is down, and after the last recovery. A phase
    /// the run never entered reports 0.
    pub phase_rps: [f64; 3],
    /// Simulator events processed over the whole run (warm-up included) —
    /// the denominator-free unit of simulation work, used by the
    /// `perf_baseline` harness to compute events/sec.
    pub events_handled: u64,
    /// Deepest the future-event list ever grew over the whole run — a
    /// capacity indicator for the event queue.
    pub peak_fel_depth: usize,
    /// Event-queue operation counters over the whole run. Wall-clock-free
    /// evidence of where queue work went (lane mix, insert shift depth,
    /// calendar-wrap refiltering) — the scaling benchmarks report these
    /// to tell an algorithmic regression from a noisy box.
    pub fel_ops: l2s_devs::QueueStats,
    /// Per-node details.
    pub per_node: Vec<NodeReport>,
}

impl SimReport {
    /// Coefficient of variation (standard deviation over mean) of
    /// per-node completed-request counts — a load-imbalance indicator:
    /// 0 means every active node completed the same number of requests.
    /// Nodes that saw no work at all are excluded, and fewer than two
    /// active nodes yields 0.
    pub fn completion_imbalance(&self) -> f64 {
        let served: Vec<f64> = self
            .per_node
            .iter()
            .filter(|n| n.completed > 0 || n.cache_hits + n.cache_misses > 0)
            .map(|n| cast::exact_f64(n.completed))
            .collect();
        if served.len() < 2 {
            return 0.0;
        }
        let mean = served.iter().sum::<f64>() / cast::len_f64(served.len());
        if mean == 0.0 {
            return 0.0;
        }
        let var =
            served.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / cast::len_f64(served.len());
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(completed: u64) -> NodeReport {
        NodeReport {
            node: 0,
            cpu_utilization: 0.5,
            disk_utilization: 0.1,
            completed,
            cache_hits: 8,
            cache_misses: 2,
        }
    }

    #[test]
    fn node_miss_rate() {
        let n = node(10);
        assert!((n.miss_rate() - 0.2).abs() < 1e-12);
        let empty = NodeReport {
            cache_hits: 0,
            cache_misses: 0,
            ..n
        };
        assert_eq!(empty.miss_rate(), 0.0);
    }

    #[test]
    fn imbalance_zero_when_balanced() {
        let r = SimReport {
            policy: "test",
            nodes: 2,
            completed: 20,
            elapsed: SimDuration::from_millis(1),
            throughput_rps: 0.0,
            miss_rate: 0.0,
            forwarded_fraction: 0.0,
            cpu_idle: 0.0,
            router_utilization: 0.0,
            control_msgs_per_request: 0.0,
            mean_response_s: 0.0,
            p99_response_s: None,
            segment_means_s: [0.0; 3],
            failed: 0,
            retried: 0,
            unavailability: 0.0,
            phase_rps: [0.0; 3],
            events_handled: 0,
            peak_fel_depth: 0,
            fel_ops: Default::default(),
            per_node: vec![node(10), node(10)],
        };
        assert_eq!(r.completion_imbalance(), 0.0);
    }

    #[test]
    fn imbalance_positive_when_skewed() {
        let r = SimReport {
            policy: "test",
            nodes: 2,
            completed: 20,
            elapsed: SimDuration::from_millis(1),
            throughput_rps: 0.0,
            miss_rate: 0.0,
            forwarded_fraction: 0.0,
            cpu_idle: 0.0,
            router_utilization: 0.0,
            control_msgs_per_request: 0.0,
            mean_response_s: 0.0,
            p99_response_s: None,
            segment_means_s: [0.0; 3],
            failed: 0,
            retried: 0,
            unavailability: 0.0,
            phase_rps: [0.0; 3],
            events_handled: 0,
            peak_fel_depth: 0,
            fel_ops: Default::default(),
            per_node: vec![node(19), node(1)],
        };
        assert!(r.completion_imbalance() > 0.5);
    }
}
