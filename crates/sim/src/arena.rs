//! Cache-line arena for in-flight request state.
//!
//! The old engine kept one 80-byte `Req` struct per request in an
//! unaligned slab, so most records straddled two cache lines. The state
//! is now split into three views keyed by the same `ReqId` — [`Route`]
//! (16 bytes: file, initial/service node, epoch — read by
//! `event_target` and the liveness gate on *every* event), [`Timing`]
//! (lifecycle stamps, touched at decision and completion), and [`Flow`]
//! (reply chunking and connection bookkeeping) — packed together into
//! one 64-byte-aligned record per request.
//!
//! Why one aligned record rather than three parallel lanes: with a few
//! thousand requests in flight the arena no longer stays resident in
//! L2 (the per-node cache directories alone are tens of megabytes, and
//! a request's events are separated by thousands of other events), so
//! *every* arena access is a last-level-cache round trip. Lanes would
//! turn an event that reads route and writes a stamp into two such
//! trips; the packed record makes any combination of views exactly
//! one. The alignment guarantees the record never straddles lines.
//!
//! Slots are recycled through a free list exactly like the old slab, so
//! the arena's footprint is the admission window, not the request
//! count.

use l2s::NodeId;
use l2s_trace::FileId;
use l2s_util::{cast, SimDuration, SimTime};

/// Index into the request arena.
pub(crate) type ReqId = u32;

/// Routing lane: where a request is and which node's fate it shares.
/// Nodes are stored narrow (`u32`) to keep the lane at 16 bytes; the
/// accessors widen back to [`NodeId`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct Route {
    /// The requested file.
    pub file: FileId,
    initial: u32,
    service: u32,
    /// Epoch of the node the *pending* event targets, captured when the
    /// event was scheduled. A crash bumps the node's epoch, so a stale
    /// event (scheduled before the crash) no longer matches and the
    /// request is aborted when it fires.
    pub epoch: u32,
}

impl Route {
    /// A fresh route: both nodes start at the arrival node.
    pub fn new(file: FileId, node: NodeId, epoch: u32) -> Self {
        let n = cast::index_u32(node);
        Route {
            file,
            initial: n,
            service: n,
            epoch,
        }
    }

    /// The node the request arrived at.
    #[inline]
    pub fn initial(&self) -> NodeId {
        cast::wide_usize(self.initial)
    }

    /// The node serving the request (equals `initial` until a hand-off).
    #[inline]
    pub fn service(&self) -> NodeId {
        cast::wide_usize(self.service)
    }

    #[inline]
    pub fn set_initial(&mut self, node: NodeId) {
        self.initial = cast::index_u32(node);
    }

    #[inline]
    pub fn set_service(&mut self, node: NodeId) {
        self.service = cast::index_u32(node);
    }
}

/// Timing lane: the three lifecycle stamps the report's segment means
/// are computed from.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Timing {
    pub injected: SimTime,
    pub decided: SimTime,
    pub served: SimTime,
}

impl Timing {
    /// All three stamps at `now` (a request that has not progressed).
    pub fn at(now: SimTime) -> Self {
        Timing {
            injected: now,
            decided: now,
            served: now,
        }
    }
}

/// Flow lane: reply chunking, persistent-connection, and fault-retry
/// bookkeeping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Flow {
    /// Reply CPU work not yet charged (chunked into scheduling quanta).
    pub reply_remaining: SimDuration,
    /// Further requests this client connection will issue after the
    /// current one (persistent-connection mode).
    pub conn_remaining: u32,
    /// Crash-abort retries this request has left.
    pub retries_left: u32,
    /// Whether the decision handed the request to another node.
    pub forwarded: bool,
    /// Whether this request continues an existing persistent connection.
    pub continuation: bool,
    /// Whether the policy's `assign` has been called and not yet
    /// settled by `complete` — decides which abort hook releases the
    /// policy's load accounting.
    pub assigned: bool,
}

impl Flow {
    /// Flow state for a fresh injection.
    pub fn fresh(conn_remaining: u32, continuation: bool, retries_left: u32) -> Self {
        Flow {
            reply_remaining: SimDuration::ZERO,
            conn_remaining,
            retries_left,
            forwarded: false,
            continuation,
            assigned: false,
        }
    }
}

/// One request's full record, padded and aligned so it occupies exactly
/// one cache line (16 + 24 + 16 = 56 payload bytes, aligned up to 64).
#[derive(Clone, Copy, Debug)]
#[repr(align(64))]
struct Rec {
    route: Route,
    timing: Timing,
    flow: Flow,
}

/// The request arena: one cache-line record per in-flight request plus
/// a free list of recyclable slots.
pub(crate) struct ReqArena {
    records: Vec<Rec>,
    free: Vec<ReqId>,
}

impl ReqArena {
    /// An empty arena with room for `n` concurrent requests before the
    /// record slab reallocates.
    pub fn with_capacity(n: usize) -> Self {
        ReqArena {
            records: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
        }
    }

    /// Claims a slot (recycling a released one when available) and
    /// installs the request's record.
    pub fn alloc(&mut self, route: Route, timing: Timing, flow: Flow) -> ReqId {
        let rec = Rec {
            route,
            timing,
            flow,
        };
        match self.free.pop() {
            Some(id) => {
                self.records[cast::wide_usize(id)] = rec;
                id
            }
            None => {
                self.records.push(rec);
                cast::index_u32(self.records.len() - 1)
            }
        }
    }

    /// Returns a slot to the free list.
    pub fn release(&mut self, id: ReqId) {
        self.free.push(id);
    }

    #[inline]
    pub fn route(&self, id: ReqId) -> &Route {
        &self.records[cast::wide_usize(id)].route
    }

    #[inline]
    pub fn route_mut(&mut self, id: ReqId) -> &mut Route {
        &mut self.records[cast::wide_usize(id)].route
    }

    #[inline]
    pub fn timing(&self, id: ReqId) -> &Timing {
        &self.records[cast::wide_usize(id)].timing
    }

    #[inline]
    pub fn timing_mut(&mut self, id: ReqId) -> &mut Timing {
        &mut self.records[cast::wide_usize(id)].timing
    }

    #[inline]
    pub fn flow(&self, id: ReqId) -> &Flow {
        &self.records[cast::wide_usize(id)].flow
    }

    #[inline]
    pub fn flow_mut(&mut self, id: ReqId) -> &mut Flow {
        &mut self.records[cast::wide_usize(id)].flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Route>(), 16);
        assert_eq!(std::mem::size_of::<Rec>(), 64);
        assert_eq!(std::mem::align_of::<Rec>(), 64);
    }

    #[test]
    fn alloc_recycles_released_slots() {
        let mut arena = ReqArena::with_capacity(4);
        let mk = |f: u32| {
            (
                Route::new(FileId::from(f), 1, 0),
                Timing::at(SimTime::ZERO),
                Flow::fresh(0, false, 1),
            )
        };
        let (r, t, f) = mk(5);
        let a = arena.alloc(r, t, f);
        let (r, t, f) = mk(6);
        let b = arena.alloc(r, t, f);
        assert_ne!(a, b);
        arena.release(a);
        let (r, t, f) = mk(7);
        let c = arena.alloc(r, t, f);
        assert_eq!(c, a, "released slot is recycled");
        assert_eq!(arena.route(c).file, FileId::from(7));
        assert_eq!(arena.route(b).file, FileId::from(6));
        arena.route_mut(b).set_service(3);
        assert_eq!(arena.route(b).service(), 3);
        assert_eq!(arena.route(b).initial(), 1);
    }
}
