//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a fixed schedule of node crashes and recoveries,
//! resolved *before* the measured pass begins: every fault event is an
//! offset from the start of the measurement window. Plans are plain
//! data — built explicitly ([`FaultPlan::scheduled`],
//! [`FaultPlan::crash_recover`]) or drawn from a seeded RNG
//! ([`FaultPlan::random`]) — so a run with a given plan is exactly as
//! deterministic as a healthy run: same seed, same plan, same results,
//! regardless of worker count.
//!
//! Crash semantics (enforced by the engine): the node's main memory is
//! wiped and all queued/in-flight station work is discarded; every
//! request whose next lifecycle step lands on the dead node is aborted
//! and either retried elsewhere or counted as failed. Recovery brings
//! the node back idle and cold; the policies re-admit it to their
//! candidate sets.

use l2s_util::{invariant, DetRng, SimDuration};

/// What happens to a node at a fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The node dies: memory wiped, in-flight work lost.
    Crash,
    /// The node reboots: idle, cold cache, rejoins the cluster.
    Recover,
}

/// One scheduled fault, at an offset from the measurement start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires, relative to the start of the measurement
    /// window (the warm-up pass always runs on a healthy cluster).
    pub at: SimDuration,
    /// Which node it hits.
    pub node: usize,
    /// Crash or recovery.
    pub kind: FaultKind,
}

/// A deterministic schedule of crashes and recoveries. The empty plan
/// (the default) reproduces a healthy run byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sorted by `(at, Recover-before-Crash, node)` so simultaneous
    /// events resolve deterministically and recoveries free capacity
    /// before a same-instant crash consumes it.
    events: Vec<FaultEvent>,
}

/// Sort key: time, then recoveries before crashes, then node id.
fn order_key(e: &FaultEvent) -> (SimDuration, u8, usize) {
    (e.at, u8::from(e.kind == FaultKind::Crash), e.node)
}

impl FaultPlan {
    /// The empty plan: no faults, a healthy run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule, sorted by firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// A plan from an explicit event list (sorted into firing order).
    /// Call [`FaultPlan::validate`] to check it against a cluster size.
    pub fn scheduled(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(order_key);
        FaultPlan { events }
    }

    /// Convenience: `node` crashes `at_s` seconds into the measurement
    /// window and recovers at `until_s`.
    pub fn crash_recover(node: usize, at_s: f64, until_s: f64) -> Self {
        invariant!(
            at_s < until_s,
            "crash_recover needs the crash ({at_s}s) before the recovery ({until_s}s)"
        );
        Self::scheduled(vec![
            FaultEvent {
                at: SimDuration::from_secs_f64(at_s),
                node,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: SimDuration::from_secs_f64(until_s),
                node,
                kind: FaultKind::Recover,
            },
        ])
    }

    /// Merges two plans into one schedule.
    pub fn merged(self, other: FaultPlan) -> Self {
        let mut events = self.events;
        events.extend(other.events);
        Self::scheduled(events)
    }

    /// A seeded random plan over `nodes` nodes for the first
    /// `horizon_s` seconds of the measurement window: each node fails
    /// independently with exponential time-between-failures `mtbf_s`
    /// and exponential repair time `mttr_s`. Crashes that would leave
    /// the cluster with no live node are dropped (together with their
    /// paired recovery), so at least one node is always up. The same
    /// seed always yields the same plan.
    pub fn random(seed: u64, nodes: usize, horizon_s: f64, mtbf_s: f64, mttr_s: f64) -> Self {
        invariant!(nodes >= 1, "need at least one node");
        invariant!(
            horizon_s > 0.0 && horizon_s.is_finite(),
            "fault horizon must be positive"
        );
        invariant!(mtbf_s > 0.0 && mtbf_s.is_finite(), "MTBF must be positive");
        invariant!(mttr_s > 0.0 && mttr_s.is_finite(), "MTTR must be positive");
        let mut rng = DetRng::new(seed);
        let mut raw: Vec<FaultEvent> = Vec::new();
        for node in 0..nodes {
            // Per-node alternating renewal process: up (mean MTBF),
            // down (mean MTTR), up, ... Crashes are drawn within the
            // horizon; a repair may complete beyond it.
            let mut t = rng.exponential(mtbf_s);
            while t < horizon_s {
                let up_at = t + rng.exponential(mttr_s);
                raw.push(FaultEvent {
                    at: SimDuration::from_secs_f64(t),
                    node,
                    kind: FaultKind::Crash,
                });
                raw.push(FaultEvent {
                    at: SimDuration::from_secs_f64(up_at),
                    node,
                    kind: FaultKind::Recover,
                });
                t = up_at + rng.exponential(mtbf_s);
            }
        }
        raw.sort_by_key(order_key);
        // Liveness filter: a crash that would take the last live node
        // down is dropped along with its paired recovery.
        let mut alive = vec![true; nodes];
        let mut alive_count = nodes;
        let mut skip_recover = vec![false; nodes];
        let mut events = Vec::with_capacity(raw.len());
        for e in raw {
            match e.kind {
                FaultKind::Crash => {
                    if alive_count == 1 {
                        skip_recover[e.node] = true;
                        continue;
                    }
                    alive[e.node] = false;
                    alive_count -= 1;
                    events.push(e);
                }
                FaultKind::Recover => {
                    if skip_recover[e.node] {
                        skip_recover[e.node] = false;
                        continue;
                    }
                    alive[e.node] = true;
                    alive_count += 1;
                    events.push(e);
                }
            }
        }
        FaultPlan { events }
    }

    /// Checks the plan against a cluster of `nodes` nodes: every event
    /// in bounds, crashes and recoveries alternating per node. A plan
    /// may take the whole cluster down — policies reject arrivals while
    /// no node is live and the engine counts those requests as failed
    /// (total-outage behavior is itself under test; see the engine's
    /// all-down regression tests).
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        let mut alive = vec![true; nodes];
        let mut last = SimDuration::ZERO;
        for e in &self.events {
            if e.node >= nodes {
                return Err(format!(
                    "fault event targets node {} of a {}-node cluster",
                    e.node, nodes
                ));
            }
            if e.at < last {
                return Err("fault events out of order (use FaultPlan::scheduled)".into());
            }
            last = e.at;
            match e.kind {
                FaultKind::Crash => {
                    if !alive[e.node] {
                        return Err(format!("node {} crashes while already down", e.node));
                    }
                    alive[e.node] = false;
                }
                FaultKind::Recover => {
                    if alive[e.node] {
                        return Err(format!("node {} recovers while already up", e.node));
                    }
                    alive[e.node] = true;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid_and_empty() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.events(), &[]);
        p.validate(4).unwrap();
    }

    #[test]
    fn crash_recover_builds_an_ordered_pair() {
        let p = FaultPlan::crash_recover(2, 1.0, 3.0);
        assert_eq!(p.events().len(), 2);
        assert_eq!(p.events()[0].kind, FaultKind::Crash);
        assert_eq!(p.events()[1].kind, FaultKind::Recover);
        assert_eq!(p.events()[0].node, 2);
        p.validate(4).unwrap();
    }

    #[test]
    fn scheduled_sorts_and_orders_recovery_first_at_ties() {
        let t = SimDuration::from_secs_f64(1.0);
        let p = FaultPlan::scheduled(vec![
            FaultEvent {
                at: t,
                node: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: t,
                node: 1,
                kind: FaultKind::Recover,
            },
        ]);
        assert_eq!(p.events()[0].kind, FaultKind::Recover);
        assert_eq!(p.events()[1].kind, FaultKind::Crash);
    }

    #[test]
    fn validate_rejects_out_of_bounds_and_double_faults() {
        assert!(FaultPlan::crash_recover(7, 1.0, 2.0).validate(4).is_err());
        let double = FaultPlan::scheduled(vec![
            FaultEvent {
                at: SimDuration::from_secs_f64(1.0),
                node: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: SimDuration::from_secs_f64(2.0),
                node: 0,
                kind: FaultKind::Crash,
            },
        ]);
        assert!(double.validate(4).is_err());
        // Recovering a node that never crashed is also malformed.
        let stray = FaultPlan::scheduled(vec![FaultEvent {
            at: SimDuration::from_secs_f64(1.0),
            node: 0,
            kind: FaultKind::Recover,
        }]);
        assert!(stray.validate(4).is_err());
    }

    #[test]
    fn validate_accepts_killing_every_node() {
        // A total outage is a legal (and tested) scenario: the policies
        // reject arrivals and the engine counts them as failed.
        let p = FaultPlan::scheduled(vec![
            FaultEvent {
                at: SimDuration::from_secs_f64(1.0),
                node: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                at: SimDuration::from_secs_f64(2.0),
                node: 1,
                kind: FaultKind::Crash,
            },
        ]);
        p.validate(2).unwrap();
        p.validate(3).unwrap();
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(42, 8, 100.0, 50.0, 5.0);
        let b = FaultPlan::random(42, 8, 100.0, 50.0, 5.0);
        assert_eq!(a, b);
        let c = FaultPlan::random(43, 8, 100.0, 50.0, 5.0);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn random_plans_always_validate() {
        for seed in 0..20 {
            // Brutal parameters: short MTBF, long MTTR, so the liveness
            // filter actually has to intervene.
            let p = FaultPlan::random(seed, 3, 200.0, 10.0, 50.0);
            p.validate(3).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!p.is_empty(), "seed {seed} drew no faults");
        }
    }

    #[test]
    fn merged_plans_interleave() {
        let p = FaultPlan::crash_recover(0, 2.0, 4.0).merged(FaultPlan::crash_recover(1, 1.0, 3.0));
        let nodes: Vec<usize> = p.events().iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![1, 0, 1, 0]);
        p.validate(3).unwrap();
    }
}
