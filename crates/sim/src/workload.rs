//! Request sources for the simulator.
//!
//! The engine consumes requests one at a time through the [`Workload`]
//! trait rather than indexing a materialized `Vec<FileId>`. A
//! pre-parsed log still drives runs through [`TraceWorkload`] (a thin
//! cursor over a [`Trace`]), but scaling sweeps use [`SynthWorkload`],
//! which draws requests straight from the synthetic generator's
//! [`RequestStream`] — the request count then costs no memory at all,
//! so a 10⁸-request run fits the same footprint as a 10⁴-request one.
//!
//! The streaming path is byte-identical to materializing: `TraceSpec::
//! generate` itself collects the stream, and the trace crate pins
//! checksums over every Table 2 preset to keep it that way.

use l2s_trace::{FileId, FileSet, RequestStream, Trace, TraceSpec};

/// A source of simulated requests: a file population plus an ordered
/// request sequence of known length that can be replayed.
///
/// The engine calls [`next_file`](Workload::next_file) exactly once per
/// injected request and [`rewind`](Workload::rewind) between the
/// warm-up and measurement passes, so implementations only need
/// sequential access — no random indexing, no materialized backing
/// store.
pub trait Workload {
    /// The file population requests draw from (sizes drive every cache
    /// and service-time decision).
    fn files(&self) -> &FileSet;

    /// Requests issued per full pass.
    fn len(&self) -> usize;

    /// Whether the workload has no requests at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next request's file, or `None` when the pass is exhausted.
    ///
    /// Exhaustion is an explicit end-of-workload signal: a source that
    /// runs dry — even one whose [`len`](Workload::len) promised more —
    /// must return `None` rather than fabricate requests. (An earlier
    /// version papered over exhaustion with `unwrap_or(0)`, turning a
    /// drained stream into an endless run of requests for file 0.)
    fn next_file(&mut self) -> Option<FileId>;

    /// Restarts the sequence from the first request, replaying the
    /// identical order.
    fn rewind(&mut self);
}

/// A [`Workload`] that replays a materialized [`Trace`] (a parsed log,
/// or a synthetic trace generated up front).
#[derive(Clone, Debug)]
pub struct TraceWorkload<'t> {
    trace: &'t Trace,
    pos: usize,
}

impl<'t> TraceWorkload<'t> {
    /// Wraps `trace` as a replayable request source.
    pub fn new(trace: &'t Trace) -> Self {
        TraceWorkload { trace, pos: 0 }
    }
}

impl Workload for TraceWorkload<'_> {
    fn files(&self) -> &FileSet {
        self.trace.files()
    }

    fn len(&self) -> usize {
        self.trace.len()
    }

    fn next_file(&mut self) -> Option<FileId> {
        let file = self.trace.requests().get(self.pos).copied();
        if file.is_some() {
            self.pos += 1;
        }
        file
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A [`Workload`] that draws requests directly from the synthetic
/// generator without ever materializing them. Holds the file population
/// (O(files)) and the generator's ring buffer (O(temporal window));
/// memory is flat in the request count.
#[derive(Clone, Debug)]
pub struct SynthWorkload {
    files: FileSet,
    stream: RequestStream,
}

impl SynthWorkload {
    /// Builds the streaming workload for `spec` at `seed` — the same
    /// `(files, requests)` that `spec.generate(seed)` would produce,
    /// without the request vector.
    pub fn new(spec: &TraceSpec, seed: u64) -> Self {
        let (files, stream) = spec.stream(seed);
        SynthWorkload { files, stream }
    }
}

impl Workload for SynthWorkload {
    fn files(&self) -> &FileSet {
        &self.files
    }

    fn len(&self) -> usize {
        self.stream.total()
    }

    fn next_file(&mut self) -> Option<FileId> {
        self.stream.next().map(FileId::from)
    }

    fn rewind(&mut self) {
        self.stream.rewind();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_workload_replays_the_trace_in_order() {
        let trace = TraceSpec::calgary().scaled(50, 400).generate(7);
        let mut w = TraceWorkload::new(&trace);
        assert_eq!(w.len(), trace.len());
        assert_eq!(w.files(), trace.files());
        let first: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(first, trace.requests());
        w.rewind();
        let second: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn trace_workload_signals_exhaustion_explicitly() {
        let trace = TraceSpec::calgary().scaled(50, 300).generate(9);
        let mut w = TraceWorkload::new(&trace);
        for _ in 0..w.len() {
            assert!(w.next_file().is_some());
        }
        assert_eq!(w.next_file(), None, "the drained pass must say so");
        assert_eq!(w.next_file(), None, "and keep saying so");
        w.rewind();
        assert!(w.next_file().is_some(), "rewind restores the sequence");
    }

    #[test]
    fn synth_workload_signals_exhaustion_explicitly() {
        let spec = TraceSpec::nasa().scaled(60, 500);
        let mut w = SynthWorkload::new(&spec, 13);
        let drawn: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        // The old behavior fabricated FileId(0) forever once the stream
        // ran dry; exhaustion is now an explicit end-of-workload signal.
        assert_eq!(w.next_file(), None);
        w.rewind();
        let replay: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(drawn, replay);
    }

    #[test]
    fn synth_workload_matches_the_materialized_trace() {
        let spec = TraceSpec::nasa().scaled(80, 1_000);
        let trace = spec.generate(11);
        let mut w = SynthWorkload::new(&spec, 11);
        assert_eq!(w.len(), trace.len());
        assert_eq!(w.files(), trace.files());
        let streamed: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(streamed, trace.requests());
        w.rewind();
        let replay: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(streamed, replay);
    }
}
