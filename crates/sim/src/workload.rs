//! Request sources for the simulator.
//!
//! The engine consumes requests one at a time through the [`Workload`]
//! trait rather than indexing a materialized `Vec<FileId>`. A
//! pre-parsed log still drives runs through [`TraceWorkload`] (a thin
//! cursor over a [`Trace`]), but scaling sweeps use [`SynthWorkload`],
//! which draws requests straight from the synthetic generator's
//! [`RequestStream`] — the request count then costs no memory at all,
//! so a 10⁸-request run fits the same footprint as a 10⁴-request one.
//!
//! The streaming path is byte-identical to materializing: `TraceSpec::
//! generate` itself collects the stream, and the trace crate pins
//! checksums over every Table 2 preset to keep it that way.

use l2s_trace::{FileId, FileSet, RequestStream, Trace, TraceSpec};
use l2s_util::cast;
use l2s_workload::{Modulator, WorkloadMod};

/// A source of simulated requests: a file population plus an ordered
/// request sequence of known length that can be replayed.
///
/// The engine calls [`next_file`](Workload::next_file) exactly once per
/// injected request and [`rewind`](Workload::rewind) between the
/// warm-up and measurement passes, so implementations only need
/// sequential access — no random indexing, no materialized backing
/// store.
pub trait Workload {
    /// The file population requests draw from (sizes drive every cache
    /// and service-time decision).
    fn files(&self) -> &FileSet;

    /// Requests issued per full pass.
    fn len(&self) -> usize;

    /// Whether the workload has no requests at all.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next request's file, or `None` when the pass is exhausted.
    ///
    /// Exhaustion is an explicit end-of-workload signal: a source that
    /// runs dry — even one whose [`len`](Workload::len) promised more —
    /// must return `None` rather than fabricate requests. (An earlier
    /// version papered over exhaustion with `unwrap_or(0)`, turning a
    /// drained stream into an endless run of requests for file 0.)
    fn next_file(&mut self) -> Option<FileId>;

    /// Restarts the sequence from the first request, replaying the
    /// identical order.
    fn rewind(&mut self);

    /// The absolute arrival time (seconds from the start of the pass)
    /// of the *next* request, when the workload carries its own clock.
    ///
    /// `None` — the default, and the answer for every stationary source
    /// — leaves timing entirely to the engine's configured
    /// [`ArrivalMode`](crate::ArrivalMode). A [`ModulatedWorkload`]
    /// with a rate schedule answers `Some(t)`, and the engine's
    /// open-loop injector follows that clock instead of its own
    /// exponential draws. Implementations must return times that are
    /// non-decreasing across a pass and must reset with
    /// [`rewind`](Workload::rewind).
    fn next_arrival_s(&mut self) -> Option<f64> {
        None
    }
}

/// A [`Workload`] that replays a materialized [`Trace`] (a parsed log,
/// or a synthetic trace generated up front).
#[derive(Clone, Debug)]
pub struct TraceWorkload<'t> {
    trace: &'t Trace,
    pos: usize,
}

impl<'t> TraceWorkload<'t> {
    /// Wraps `trace` as a replayable request source.
    pub fn new(trace: &'t Trace) -> Self {
        TraceWorkload { trace, pos: 0 }
    }
}

impl Workload for TraceWorkload<'_> {
    fn files(&self) -> &FileSet {
        self.trace.files()
    }

    fn len(&self) -> usize {
        self.trace.len()
    }

    fn next_file(&mut self) -> Option<FileId> {
        let file = self.trace.requests().get(self.pos).copied();
        if file.is_some() {
            self.pos += 1;
        }
        file
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }
}

/// A [`Workload`] that draws requests directly from the synthetic
/// generator without ever materializing them. Holds the file population
/// (O(files)) and the generator's ring buffer (O(temporal window));
/// memory is flat in the request count.
#[derive(Clone, Debug)]
pub struct SynthWorkload {
    files: FileSet,
    stream: RequestStream,
}

impl SynthWorkload {
    /// Builds the streaming workload for `spec` at `seed` — the same
    /// `(files, requests)` that `spec.generate(seed)` would produce,
    /// without the request vector.
    pub fn new(spec: &TraceSpec, seed: u64) -> Self {
        let (files, stream) = spec.stream(seed);
        SynthWorkload { files, stream }
    }
}

impl Workload for SynthWorkload {
    fn files(&self) -> &FileSet {
        &self.files
    }

    fn len(&self) -> usize {
        self.stream.total()
    }

    fn next_file(&mut self) -> Option<FileId> {
        self.stream.next().map(FileId::from)
    }

    fn rewind(&mut self) {
        self.stream.rewind();
    }
}

/// A [`Workload`] that composes a non-stationary [`WorkloadMod`] over
/// any base source: working-set drift and flash crowds relabel each
/// drawn file id, and an optional rate schedule supplies per-request
/// arrival times through [`Workload::next_arrival_s`].
///
/// The engine asks for the next arrival *time* before it draws the
/// corresponding *file*, so the wrapper draws `(time, file)` pairs
/// atomically and stashes the pair between the two calls — time and
/// id always come from the same tick of the modulation clock.
///
/// An identity spec ([`WorkloadMod::none`] or all-inert layers) passes
/// the base stream through byte for byte; a pinned test holds the
/// wrapper to that.
pub struct ModulatedWorkload<'w> {
    base: &'w mut dyn Workload,
    modulator: Modulator,
    /// Whether the spec carries a rate schedule (and so a real clock).
    scheduled: bool,
    /// A drawn-but-unconsumed `(time, file)` pair: filled by
    /// `next_arrival_s`, drained by `next_file`.
    pending: Option<(f64, Option<FileId>)>,
}

impl<'w> ModulatedWorkload<'w> {
    /// Wraps `base`, applying `spec` with randomness seeded from
    /// `seed` (the modulator forks its own stream, so the base source
    /// and the engine see the same draws they would without the
    /// wrapper).
    pub fn new(base: &'w mut dyn Workload, spec: WorkloadMod, seed: u64) -> Self {
        let population = cast::index_u32(base.files().len());
        let scheduled = spec.rate.is_some();
        ModulatedWorkload {
            base,
            modulator: Modulator::new(spec, population, seed),
            scheduled,
            pending: None,
        }
    }

    /// Advances the modulation clock one tick and draws the modulated
    /// `(time, file)` pair.
    fn draw(&mut self) -> (f64, Option<FileId>) {
        let t = self.modulator.next_time();
        let file = self
            .base
            .next_file()
            .map(|f| FileId::from_raw(self.modulator.transform(t, f.raw())));
        (t, file)
    }
}

impl Workload for ModulatedWorkload<'_> {
    fn files(&self) -> &FileSet {
        self.base.files()
    }

    fn len(&self) -> usize {
        self.base.len()
    }

    fn next_file(&mut self) -> Option<FileId> {
        match self.pending.take() {
            Some((_, file)) => file,
            None => self.draw().1,
        }
    }

    fn rewind(&mut self) {
        self.base.rewind();
        self.modulator.rewind();
        self.pending = None;
    }

    fn next_arrival_s(&mut self) -> Option<f64> {
        if !self.scheduled {
            return None;
        }
        if self.pending.is_none() {
            self.pending = Some(self.draw());
        }
        match self.pending {
            // A dry base stream has no next arrival: fall back to the
            // engine's own timer, whose arrival will observe the
            // exhaustion and wind the pass down.
            Some((t, Some(_))) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_workload_replays_the_trace_in_order() {
        let trace = TraceSpec::calgary().scaled(50, 400).generate(7);
        let mut w = TraceWorkload::new(&trace);
        assert_eq!(w.len(), trace.len());
        assert_eq!(w.files(), trace.files());
        let first: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(first, trace.requests());
        w.rewind();
        let second: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(first, second);
    }

    #[test]
    fn trace_workload_signals_exhaustion_explicitly() {
        let trace = TraceSpec::calgary().scaled(50, 300).generate(9);
        let mut w = TraceWorkload::new(&trace);
        for _ in 0..w.len() {
            assert!(w.next_file().is_some());
        }
        assert_eq!(w.next_file(), None, "the drained pass must say so");
        assert_eq!(w.next_file(), None, "and keep saying so");
        w.rewind();
        assert!(w.next_file().is_some(), "rewind restores the sequence");
    }

    #[test]
    fn synth_workload_signals_exhaustion_explicitly() {
        let spec = TraceSpec::nasa().scaled(60, 500);
        let mut w = SynthWorkload::new(&spec, 13);
        let drawn: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        // The old behavior fabricated FileId(0) forever once the stream
        // ran dry; exhaustion is now an explicit end-of-workload signal.
        assert_eq!(w.next_file(), None);
        w.rewind();
        let replay: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(drawn, replay);
    }

    use l2s_workload::{DriftSpec, FlashCrowd};

    /// A modulation spec whose every layer is configured but inert: a
    /// zero-weight flash crowd and a zero-step drift. `is_none()` is
    /// false, so the full wrapper machinery runs — and must pass the
    /// base stream through untouched.
    fn identity_mod() -> WorkloadMod {
        WorkloadMod {
            rate: None,
            flash: vec![FlashCrowd {
                start_s: 0.0,
                ramp_s: 1.0,
                hold_s: 1.0,
                decay_s: 1.0,
                peak_weight: 0.0,
                hot_files: 4,
                first_id: 0,
            }],
            drift: Some(DriftSpec {
                period_s: 3.0,
                step: 0,
            }),
        }
    }

    /// FNV-1a over a request-id sequence (the trace crate pins the same
    /// fingerprints over the raw streaming generator).
    fn checksum(ids: impl Iterator<Item = u32>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in ids {
            h ^= u64::from(id);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Golden pin: an all-identity modulation wrapped over the full
    /// Table 2 streams reproduces the exact fingerprints the trace
    /// crate pins for the raw stationary generator — the wrapper adds
    /// nothing, removes nothing, and burns no randomness.
    #[test]
    fn identity_modulation_is_byte_identical_for_all_table2_specs() {
        let pinned = [
            ("calgary", 0xf47f_9cec_4198_4cf1_u64),
            ("clarknet", 0xd69a_3fdd_1a61_bd00),
            ("nasa", 0x9781_2239_45e7_a403),
            ("rutgers", 0x796d_28d8_0590_05be),
        ];
        for (spec, (name, expect)) in TraceSpec::paper_presets().iter().zip(pinned) {
            assert_eq!(spec.name, name);
            let mut base = SynthWorkload::new(spec, 42);
            let mut w = ModulatedWorkload::new(&mut base, identity_mod(), 42);
            let ids = std::iter::from_fn(|| w.next_file()).map(FileId::raw);
            assert_eq!(
                checksum(ids),
                expect,
                "{name}: identity modulation changed the request bytes"
            );
        }
    }

    #[test]
    fn modulated_workload_rewinds_and_replays() {
        let spec = TraceSpec::nasa().scaled(300, 5_000);
        let mut base = SynthWorkload::new(&spec, 5);
        let modulation = WorkloadMod {
            rate: Some(l2s_workload::RateSchedule::diurnal(200.0, 0.6, 60.0).unwrap()),
            flash: vec![FlashCrowd {
                start_s: 2.0,
                ramp_s: 1.0,
                hold_s: 5.0,
                decay_s: 2.0,
                peak_weight: 0.4,
                hot_files: 8,
                first_id: 17,
            }],
            drift: Some(DriftSpec {
                period_s: 4.0,
                step: 13,
            }),
        };
        let mut w = ModulatedWorkload::new(&mut base, modulation, 5);
        let mut first = Vec::new();
        loop {
            let t = w.next_arrival_s();
            match w.next_file() {
                Some(f) => first.push((t.expect("scheduled source carries a clock"), f)),
                None => break,
            }
        }
        assert_eq!(first.len(), 5_000);
        for pair in first.windows(2) {
            assert!(pair[1].0 >= pair[0].0, "arrival clock must be monotone");
        }
        w.rewind();
        let mut second = Vec::new();
        loop {
            let t = w.next_arrival_s();
            match w.next_file() {
                Some(f) => second.push((t.expect("clock survives rewind"), f)),
                None => break,
            }
        }
        assert_eq!(first, second, "rewind must replay times and files");
    }

    #[test]
    fn drift_actually_relabels_files() {
        let spec = TraceSpec::nasa().scaled(300, 4_000);
        let mut plain = SynthWorkload::new(&spec, 5);
        let reference: Vec<FileId> = std::iter::from_fn(|| plain.next_file()).collect();
        let mut base = SynthWorkload::new(&spec, 5);
        let modulation = WorkloadMod {
            drift: Some(DriftSpec {
                period_s: 100.0, // fluid clock: rotate every 100 requests
                step: 7,
            }),
            ..WorkloadMod::none()
        };
        let mut w = ModulatedWorkload::new(&mut base, modulation, 5);
        let drifted: Vec<FileId> = std::iter::from_fn(|| w.next_file()).collect();
        assert_eq!(drifted.len(), reference.len());
        assert_eq!(&drifted[..100], &reference[..100], "epoch 0 has rotation 0");
        let relabeled = drifted[100..200]
            .iter()
            .zip(&reference[100..200])
            .filter(|(d, r)| d != r)
            .count();
        assert!(relabeled > 50, "epoch 1 must rotate ids ({relabeled}/100)");
    }

    #[test]
    fn synth_workload_matches_the_materialized_trace() {
        let spec = TraceSpec::nasa().scaled(80, 1_000);
        let trace = spec.generate(11);
        let mut w = SynthWorkload::new(&spec, 11);
        assert_eq!(w.len(), trace.len());
        assert_eq!(w.files(), trace.files());
        let streamed: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(streamed, trace.requests());
        w.rewind();
        let replay: Vec<FileId> = (0..w.len())
            .map(|_| w.next_file().expect("within len"))
            .collect();
        assert_eq!(streamed, replay);
    }
}
