//! Property tests for the modern dispatchers under the full engine.
//!
//! The unit tests in `engine.rs` pin specific seeds; these properties
//! range over seeds, JSQ sample widths, hardware mixes, and fault
//! timings, and assert the two contracts every policy must keep no
//! matter the draw:
//!
//! 1. **Determinism** — the same configuration simulated twice yields
//!    the same `SimReport`, field for field. Any hidden entropy in
//!    JIQ's idle stack, SITA's thresholds, or JSQ's sampling RNG
//!    breaks this immediately.
//! 2. **Conservation** — under an arbitrary mid-run crash/recover
//!    schedule, every request is accounted for: `completed + failed`
//!    equals the trace length.
//!
//! The cases are few (full simulations are not cheap) but each case
//! exercises all three new dispatchers.

use l2s::PolicyKind;
use l2s_cluster::HeteroSpec;
use l2s_sim::{simulate, FaultPlan, SimConfig};
use l2s_trace::{Trace, TraceSpec};
use l2s_util::cast;
use proptest::prelude::*;

/// The three dispatchers this PR adds; the paper trio has its own
/// long-standing coverage.
const NEW_DISPATCHERS: [PolicyKind; 3] = [PolicyKind::Jsq, PolicyKind::Jiq, PolicyKind::Sita];

/// A trace small enough that a case (several simulations) stays under
/// a second, but long enough to wrap the closed-loop window many times.
fn quick_trace(seed: u64) -> Trace {
    TraceSpec::clarknet().scaled(120, 1_500).generate(seed)
}

fn quick_config(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::quick(4, 800.0);
    cfg.seed = seed;
    cfg
}

/// Maps a draw to one of the hardware mixes (or a homogeneous cluster).
fn pick_mix(which: usize) -> Option<HeteroSpec> {
    match which {
        0 => None,
        1 => Some(HeteroSpec::mild()),
        _ => Some(HeteroSpec::extreme()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn new_dispatchers_are_deterministic_for_any_seed_and_mix(
        seed in 0u64..1_000_000,
        jsq_d in 1u32..6,
        mix in 0usize..3,
    ) {
        let trace = quick_trace(seed % 7);
        let mut cfg = quick_config(seed);
        cfg.jsq_d = jsq_d;
        cfg.hetero = pick_mix(mix);
        cfg.validate().expect("drawn config must be valid");
        for kind in NEW_DISPATCHERS {
            let a = simulate(&cfg, kind, &trace);
            let b = simulate(&cfg, kind, &trace);
            prop_assert_eq!(
                &a, &b,
                "{} must be deterministic (seed {}, d {}, mix {})",
                kind.name(), seed, jsq_d, mix
            );
            prop_assert_eq!(a.completed, cast::len_u64(trace.len()));
        }
    }

    #[test]
    fn new_dispatchers_conserve_requests_under_arbitrary_faults(
        seed in 0u64..1_000,
        crash_frac in 0.05f64..0.55,
        down_frac in 0.05f64..0.35,
        victim in 1usize..4,
        retries in 0u32..3,
    ) {
        let trace = quick_trace(3);
        for kind in NEW_DISPATCHERS {
            let mut cfg = quick_config(seed);
            cfg.fault_retries = retries;
            let healthy = simulate(&cfg, kind, &trace);
            let e = healthy.elapsed.as_secs_f64();
            cfg.faults = FaultPlan::crash_recover(
                victim,
                crash_frac * e,
                (crash_frac + down_frac) * e,
            );
            cfg.faults.validate(cfg.nodes).expect("drawn fault plan must be valid");
            let r = simulate(&cfg, kind, &trace);
            prop_assert_eq!(
                r.completed + r.failed,
                cast::len_u64(trace.len()),
                "{} lost requests: completed {} + failed {} != {} \
                 (crash at {:.2} of {:.2}s, down {:.2}, retries {})",
                kind.name(), r.completed, r.failed, trace.len(),
                crash_frac * e, e, down_frac * e, retries
            );
            // The faulted run must be just as reproducible.
            let again = simulate(&cfg, kind, &trace);
            prop_assert_eq!(&r, &again, "{} non-deterministic under faults", kind.name());
        }
    }
}
