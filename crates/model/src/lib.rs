//! The paper's analytic open queuing-network model (Section 3).
//!
//! A cluster of `N` workstations is modeled as an open network of M/M/1
//! queues (Figure 2 of the paper): a border **router** shared by the whole
//! cluster, and per node a **network interface** (separate inbound and
//! outbound queues), a **CPU**, and a **disk**. Requests arrive at rate
//! `Nλ`, are parsed on a node's CPU, possibly forwarded to the node caching
//! the file, serviced from memory or disk, and returned through the NI and
//! router.
//!
//! Because the model assumes perfect load balancing and no cache
//! replacement, it yields an *upper bound* on the throughput of any real
//! locality-conscious server — the yardstick the paper measures L2S
//! against. Two solution methods are provided and cross-checked in tests:
//!
//! * [`QueueModel::max_throughput`] — closed-form bottleneck (saturation)
//!   analysis over per-request resource demands, and
//! * [`QueueModel::solve`] — the full M/M/1 solution at a given arrival
//!   rate, from which the same bound is recovered by bisection
//!   ([`QueueModel::saturation_throughput`]).
//!
//! The derived hit-rate quantities follow Table 1 exactly: `H_lo`, `H_lc`,
//! the replicated hit rate `h`, and the forwarded fraction
//! `Q = (N-1)(1-h)/N`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod mm1;
mod model;
mod nonstat;
mod params;
mod surface;

pub use mm1::Mm1;
pub use model::{Demands, Derived, QueueModel, Solution, StationLoad};
pub use nonstat::{lru_miss_rate, NonStatLruSpec};
pub use params::{ModelParams, ServerKind};
pub use surface::{
    default_axes, memory_sweep, replication_sweep, throughput_increase_surface, throughput_surface,
    Surface,
};
