//! The open queuing-network model and its two solution methods.

use crate::params::{ModelParams, ServerKind};
use crate::Mm1;
use l2s_util::cast;
use l2s_zipf::ZipfLaw;

/// Hit-rate quantities derived from Table 1's definitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Derived {
    /// `H` — average cache hit rate of the server being modeled.
    pub hit_rate: f64,
    /// `h` — hit rate of the replicated (hottest) files; zero when `R = 0`
    /// or for the oblivious server.
    pub replicated_hit: f64,
    /// `Q` — fraction of requests forwarded to another node
    /// (`(N-1)(1-h)/N` for the conscious server, 0 for the oblivious one).
    pub forward_fraction: f64,
}

/// Cluster-wide resource demand of one request, in seconds of service
/// time per resource class. Node-level classes (`ni_in`, `cpu`, `disk`,
/// `ni_out`) aggregate the work done on *all* nodes a request touches;
/// the solver divides by `N` to get per-node load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Demands {
    /// Border router: inbound request plus outbound reply.
    pub router_s: f64,
    /// Inbound NI: initial receipt plus (if forwarded) receipt at the
    /// service node.
    pub ni_in_s: f64,
    /// CPU: parse, forwarding work, and the reply once memory-resident.
    pub cpu_s: f64,
    /// Disk: a full access (directory + data) on the miss fraction.
    pub disk_s: f64,
    /// Outbound NI: the reply, plus the forwarded request message.
    pub ni_out_s: f64,
}

impl Demands {
    /// The five demands as `(name, cluster_demand_s, station_count)`
    /// triples; `station_count` is how many physical copies of the
    /// resource exist (1 router, `N` of everything else).
    pub fn stations(&self, nodes: usize) -> [(&'static str, f64, usize); 5] {
        [
            ("router", self.router_s, 1),
            ("ni_in", self.ni_in_s, nodes),
            ("cpu", self.cpu_s, nodes),
            ("disk", self.disk_s, nodes),
            ("ni_out", self.ni_out_s, nodes),
        ]
    }
}

/// Load on one station class in a solved network.
#[derive(Clone, Debug, PartialEq)]
pub struct StationLoad {
    /// Station class name (`router`, `ni_in`, `cpu`, `disk`, `ni_out`).
    pub name: &'static str,
    /// Utilization `ρ` of each physical copy of the station.
    pub utilization: f64,
    /// Mean residence time (queueing + service) this class contributes to
    /// one request, in seconds.
    pub residence_s: f64,
}

/// A solved open network at a given arrival rate.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// Total arrival rate the network was solved at (requests/s).
    pub arrival_rate: f64,
    /// Per-class station loads.
    pub stations: Vec<StationLoad>,
    /// End-to-end mean response time of one request, in seconds.
    pub response_s: f64,
}

impl Solution {
    /// The busiest station class, or `None` for an empty network (the
    /// solver always produces at least one station, so callers of
    /// solver-built solutions can unwrap safely).
    pub fn bottleneck(&self) -> Option<&StationLoad> {
        self.stations
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization))
    }
}

/// The paper's queuing model of an `N`-node cluster server.
#[derive(Clone, Copy, Debug)]
pub struct QueueModel {
    params: ModelParams,
}

impl QueueModel {
    /// Builds a model, validating the parameters.
    pub fn new(params: ModelParams) -> Result<Self, String> {
        params.validate()?;
        Ok(QueueModel { params })
    }

    /// The model parameters.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Derives `H`, `h`, and `Q` from the *locality-oblivious* hit rate
    /// axis used throughout Section 3.
    ///
    /// The paper defines the axis implicitly: pick the file population `f`
    /// such that `z(Clo/S, f) = Hlo`, then evaluate the requested server's
    /// hit rate over that same population. Because `z(n, f) =
    /// H(n, α)/H(f, α)`, the population never needs to be materialized —
    /// the total popularity mass is `H(f, α) = H(Clo/S, α) / Hlo`, so any
    /// other cache capacity `n` hits with probability
    /// `min(1, Hlo · H(n, α)/H(Clo/S, α))`. (Materializing `f` is not even
    /// possible in floating point for small `Hlo` at `α = 1`, where `f`
    /// grows like `exp(H(n)/Hlo)`.)
    ///
    /// `hlo` is clamped into `[0, 1]`; 0 means an infinite working set.
    pub fn derived_from_hlo(&self, kind: ServerKind, hlo: f64) -> Derived {
        let p = &self.params;
        let hlo = hlo.clamp(0.0, 1.0);
        let mass_lo = l2s_zipf::harmonic(p.cache_kb / p.avg_file_kb, p.alpha);
        // z(n) over the implied population, without materializing it.
        let z = |cache_kb: f64| -> f64 {
            let mass = l2s_zipf::harmonic(cache_kb / p.avg_file_kb, p.alpha);
            (hlo * mass / mass_lo).min(1.0)
        };
        match kind {
            ServerKind::LocalityOblivious => Derived {
                hit_rate: hlo,
                replicated_hit: 0.0,
                forward_fraction: 0.0,
            },
            ServerKind::LocalityConscious => {
                let hit_rate = z(p.conscious_cache_kb());
                let h = z(p.replication * p.cache_kb);
                let n = cast::len_f64(p.nodes);
                Derived {
                    hit_rate,
                    replicated_hit: h,
                    forward_fraction: (n - 1.0) * (1.0 - h) / n,
                }
            }
        }
    }

    /// Derives `H`, `h`, and `Q` directly from a known file population
    /// `f` (used for the model lines of Figures 7–10, where the trace's
    /// population is known).
    pub fn derived_from_population(&self, kind: ServerKind, population: f64) -> Derived {
        let p = &self.params;
        let law = ZipfLaw::new(population, p.alpha);
        let cached_files = p.effective_cache_kb(kind) / p.avg_file_kb;
        let hit_rate = law.z(cached_files);
        match kind {
            ServerKind::LocalityOblivious => Derived {
                hit_rate,
                replicated_hit: 0.0,
                forward_fraction: 0.0,
            },
            ServerKind::LocalityConscious => {
                let replicated_files = p.replication * p.cache_kb / p.avg_file_kb;
                let h = law.z(replicated_files);
                let n = cast::len_f64(p.nodes);
                Derived {
                    hit_rate,
                    replicated_hit: h,
                    forward_fraction: (n - 1.0) * (1.0 - h) / n,
                }
            }
        }
    }

    /// Cluster-wide per-request demands for a server with the given
    /// derived hit-rate quantities.
    pub fn demands(&self, derived: &Derived) -> Demands {
        let p = &self.params;
        let s = p.avg_file_kb;
        let q = derived.forward_fraction;
        Demands {
            router_s: p.router_s(p.request_kb) + p.router_s(s),
            ni_in_s: (1.0 + q) / p.ni_request_rate,
            // Parse at the initial node, hand-off work for the forwarded
            // fraction (Table 1 folds the whole hand-off into µf), and the
            // reply once the file is in memory (after the disk read on a
            // miss, so it is paid by every request).
            cpu_s: 1.0 / p.parse_rate + q / p.forward_rate + p.mem_reply_s(s),
            disk_s: (1.0 - derived.hit_rate) * p.disk_read_s(s),
            ni_out_s: p.ni_out_s(s) + q * p.ni_out_s(p.request_kb),
        }
    }

    /// Closed-form throughput upper bound (requests/s): the arrival rate
    /// at which the busiest station saturates,
    /// `min_k (count_k / demand_k)`.
    pub fn max_throughput(&self, kind: ServerKind, hlo: f64) -> f64 {
        let derived = self.derived_from_hlo(kind, hlo);
        self.max_throughput_derived(&derived)
    }

    /// [`QueueModel::max_throughput`] for pre-computed derived quantities.
    pub fn max_throughput_derived(&self, derived: &Derived) -> f64 {
        let demands = self.demands(derived);
        demands
            .stations(self.params.nodes)
            .iter()
            .map(|(_, d, count)| {
                if *d <= 0.0 {
                    f64::INFINITY
                } else {
                    cast::len_f64(*count) / d
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Closed-form saturation bound for a *heterogeneous* cluster whose
    /// node `i` runs its CPU at `speeds[i]` × the baseline node.
    ///
    /// Van der Boor & Comte's analysis of load balancing on
    /// heterogeneous clusters (see PAPERS.md) gives the fluid-limit
    /// result this encodes: under any work-conserving dispatcher that
    /// keeps fast nodes busy (least-loaded sampling, idle-queue, or
    /// speed-proportional size splitting), the CPU station saturates at
    /// the *aggregate* capacity `Σᵢ sᵢ`, not `n × min sᵢ`. Only CPU
    /// demands scale with speed — disk and NI hardware stay baseline —
    /// so the other stations keep their homogeneous capacities and the
    /// bound is still `min_k (capacity_k / demand_k)`. With all speeds
    /// 1.0 this is exactly [`QueueModel::max_throughput_derived`].
    pub fn max_throughput_hetero(&self, derived: &Derived, speeds: &[f64]) -> f64 {
        l2s_util::invariant!(
            speeds.len() == self.params.nodes,
            "need one CPU speed per node ({got} for {n})",
            got = speeds.len(),
            n = self.params.nodes
        );
        let demands = self.demands(derived);
        let total_speed: f64 = speeds.iter().sum();
        demands
            .stations(self.params.nodes)
            .iter()
            .map(|(name, d, count)| {
                if *d <= 0.0 {
                    f64::INFINITY
                } else {
                    let capacity = if *name == "cpu" {
                        total_speed
                    } else {
                        cast::len_f64(*count)
                    };
                    capacity / d
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Ratio of locality-conscious to locality-oblivious throughput at a
    /// given oblivious hit rate — the quantity plotted in Figures 5 and 6.
    pub fn throughput_increase(&self, hlo: f64) -> f64 {
        self.max_throughput(ServerKind::LocalityConscious, hlo)
            / self.max_throughput(ServerKind::LocalityOblivious, hlo)
    }

    /// Solves the full M/M/1 network at total arrival rate `lambda`
    /// requests/s, returning `None` if any station saturates.
    ///
    /// Multi-visit stations (e.g. the CPU, which serves parse, forward,
    /// and reply operations with different service times) are collapsed
    /// into one M/M/1 queue per physical resource whose mean service time
    /// is the demand per visit — the standard aggregation for open
    /// networks with class-independent FIFO service.
    pub fn solve(&self, kind: ServerKind, hlo: f64, lambda: f64) -> Option<Solution> {
        let derived = self.derived_from_hlo(kind, hlo);
        self.solve_derived(&derived, lambda)
    }

    /// [`QueueModel::solve`] for pre-computed derived quantities.
    pub fn solve_derived(&self, derived: &Derived, lambda: f64) -> Option<Solution> {
        l2s_util::invariant!(lambda >= 0.0, "arrival rate must be non-negative");
        let p = &self.params;
        let demands = self.demands(derived);
        let q = derived.forward_fraction;
        let miss = 1.0 - derived.hit_rate;

        // (class, cluster demand per request, copies, visits per request)
        let classes: [(&'static str, f64, usize, f64); 5] = [
            ("router", demands.router_s, 1, 2.0),
            ("ni_in", demands.ni_in_s, p.nodes, 1.0 + q),
            ("cpu", demands.cpu_s, p.nodes, 2.0 + q),
            ("disk", demands.disk_s, p.nodes, miss),
            ("ni_out", demands.ni_out_s, p.nodes, 1.0 + q),
        ];

        let mut stations = Vec::with_capacity(classes.len());
        let mut response = 0.0;
        for (name, demand, copies, visits) in classes {
            if demand <= 0.0 || visits <= 0.0 {
                stations.push(StationLoad {
                    name,
                    utilization: 0.0,
                    residence_s: 0.0,
                });
                continue;
            }
            // Per-copy arrival rate of visits and mean service per visit.
            let visit_rate = lambda * visits / cast::len_f64(copies);
            let mean_service = demand / visits;
            let queue = Mm1::new(visit_rate, 1.0 / mean_service);
            let per_visit = queue.mean_response()?;
            // Each request makes `visits` visits spread over all copies.
            let residence = per_visit * visits;
            stations.push(StationLoad {
                name,
                utilization: queue.utilization(),
                residence_s: residence,
            });
            response += residence;
        }
        Some(Solution {
            arrival_rate: lambda,
            stations,
            response_s: response,
        })
    }

    /// Recovers the saturation throughput by bisecting [`QueueModel::solve`]
    /// over `lambda`; used as a cross-check of
    /// [`QueueModel::max_throughput`] (they agree to the bisection
    /// tolerance).
    pub fn saturation_throughput(&self, kind: ServerKind, hlo: f64) -> f64 {
        let derived = self.derived_from_hlo(kind, hlo);
        let mut lo = 0.0;
        let mut hi = 1.0;
        while self.solve_derived(&derived, hi).is_some() {
            hi *= 2.0;
            if hi > 1e12 {
                return f64::INFINITY;
            }
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.solve_derived(&derived, mid).is_some() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> QueueModel {
        QueueModel::new(ModelParams::default()).unwrap()
    }

    #[test]
    fn oblivious_hit_rate_round_trips_the_axis() {
        let m = model();
        for hlo in [0.1, 0.35, 0.6, 0.85, 0.99] {
            let d = m.derived_from_hlo(ServerKind::LocalityOblivious, hlo);
            assert!(
                (d.hit_rate - hlo).abs() < 1e-6,
                "hlo={hlo} -> H={}",
                d.hit_rate
            );
            assert_eq!(d.forward_fraction, 0.0);
        }
    }

    #[test]
    fn conscious_hit_rate_dominates_oblivious() {
        let m = model();
        for hlo in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let lo = m.derived_from_hlo(ServerKind::LocalityOblivious, hlo);
            let lc = m.derived_from_hlo(ServerKind::LocalityConscious, hlo);
            assert!(
                lc.hit_rate >= lo.hit_rate - 1e-9,
                "hlo={hlo}: lc={} < lo={}",
                lc.hit_rate,
                lo.hit_rate
            );
        }
    }

    #[test]
    fn forward_fraction_without_replication() {
        let m = model();
        let d = m.derived_from_hlo(ServerKind::LocalityConscious, 0.5);
        // R = 0 means h = 0, so Q = (N-1)/N.
        assert!((d.forward_fraction - 15.0 / 16.0).abs() < 1e-9);
        assert_eq!(d.replicated_hit, 0.0);
    }

    #[test]
    fn replication_reduces_forwarding() {
        let p = ModelParams {
            replication: 0.15,
            ..ModelParams::default()
        };
        let m = QueueModel::new(p).unwrap();
        let d = m.derived_from_hlo(ServerKind::LocalityConscious, 0.6);
        assert!(d.replicated_hit > 0.0);
        assert!(d.forward_fraction < 15.0 / 16.0);
        // Q = (N-1)(1-h)/N exactly.
        let expect = 15.0 * (1.0 - d.replicated_hit) / 16.0;
        assert!((d.forward_fraction - expect).abs() < 1e-12);
    }

    #[test]
    fn peak_locality_gain_is_several_fold() {
        // The headline modeling result: around Hlo ≈ 0.8 with small files
        // the conscious server wins by a large factor (the paper reports
        // up to ~7x on 16 nodes).
        let p = ModelParams {
            avg_file_kb: 4.0,
            ..ModelParams::default()
        };
        let m = QueueModel::new(p).unwrap();
        let gain = m.throughput_increase(0.8);
        assert!(gain > 5.0, "gain = {gain}");
        assert!(gain < 12.0, "gain = {gain} suspiciously large");
    }

    #[test]
    fn gain_shrinks_at_high_hit_rates() {
        let p = ModelParams {
            avg_file_kb: 4.0,
            ..ModelParams::default()
        };
        let m = QueueModel::new(p).unwrap();
        let at_80 = m.throughput_increase(0.8);
        let at_99 = m.throughput_increase(0.99);
        assert!(at_99 < at_80 / 2.0, "at_80={at_80} at_99={at_99}");
    }

    #[test]
    fn forwarding_overhead_makes_gain_dip_below_one() {
        // Once the oblivious server caches everything, forwarding is pure
        // overhead: the ratio must drop (slightly) below 1.
        let p = ModelParams {
            avg_file_kb: 4.0,
            ..ModelParams::default()
        };
        let m = QueueModel::new(p).unwrap();
        let gain = m.throughput_increase(1.0);
        assert!(gain < 1.0, "gain = {gain}");
        assert!(gain > 0.7, "gain = {gain} unreasonably low");
    }

    #[test]
    fn oblivious_server_is_disk_bound_at_moderate_hit_rates() {
        let m = model();
        let d = m.derived_from_hlo(ServerKind::LocalityOblivious, 0.6);
        let lambda = m.max_throughput_derived(&d) * 0.99;
        let sol = m.solve_derived(&d, lambda).unwrap();
        assert_eq!(sol.bottleneck().expect("stations").name, "disk");
    }

    #[test]
    fn bottleneck_shifts_to_cpu_when_everything_hits() {
        let m = model();
        let d = m.derived_from_hlo(ServerKind::LocalityOblivious, 1.0);
        let lambda = m.max_throughput_derived(&d) * 0.99;
        let sol = m.solve_derived(&d, lambda).unwrap();
        assert_eq!(sol.bottleneck().expect("stations").name, "cpu");
    }

    #[test]
    fn bisection_matches_bottleneck_formula() {
        let m = model();
        for kind in [ServerKind::LocalityOblivious, ServerKind::LocalityConscious] {
            for hlo in [0.3, 0.6, 0.9] {
                let closed = m.max_throughput(kind, hlo);
                let bisected = m.saturation_throughput(kind, hlo);
                assert!(
                    (closed / bisected - 1.0).abs() < 1e-6,
                    "{kind:?} hlo={hlo}: closed={closed} bisected={bisected}"
                );
            }
        }
    }

    #[test]
    fn solve_rejects_saturating_arrival_rates() {
        let m = model();
        let cap = m.max_throughput(ServerKind::LocalityOblivious, 0.5);
        assert!(m
            .solve(ServerKind::LocalityOblivious, 0.5, cap * 1.01)
            .is_none());
        assert!(m
            .solve(ServerKind::LocalityOblivious, 0.5, cap * 0.9)
            .is_some());
    }

    #[test]
    fn response_time_grows_with_load() {
        let m = model();
        let cap = m.max_throughput(ServerKind::LocalityConscious, 0.7);
        let light = m
            .solve(ServerKind::LocalityConscious, 0.7, cap * 0.1)
            .unwrap();
        let heavy = m
            .solve(ServerKind::LocalityConscious, 0.7, cap * 0.95)
            .unwrap();
        assert!(heavy.response_s > light.response_s);
    }

    #[test]
    fn throughput_scales_with_nodes() {
        // With node resources as the bottleneck, doubling nodes should
        // (nearly) double the bound until the shared router binds.
        let mut p = ModelParams {
            avg_file_kb: 16.0,
            ..ModelParams::default()
        };
        // Oblivious hit rates are independent of N, so the bound scales
        // linearly until the shared router binds.
        for n in [1usize, 2, 4, 8] {
            p.nodes = n;
            let small = QueueModel::new(p).unwrap();
            p.nodes = n * 2;
            let big = QueueModel::new(p).unwrap();
            let x_small = small.max_throughput(ServerKind::LocalityOblivious, 0.8);
            let x_big = big.max_throughput(ServerKind::LocalityOblivious, 0.8);
            let ratio = x_big / x_small;
            assert!(
                (ratio - 2.0).abs() < 1e-9,
                "n={n}: ratio = {ratio} (small={x_small}, big={x_big})"
            );
        }
    }

    #[test]
    fn larger_files_reduce_throughput() {
        let m = model();
        let mut prev = f64::INFINITY;
        for s in [4.0, 16.0, 64.0, 128.0] {
            let p = ModelParams {
                avg_file_kb: s,
                ..ModelParams::default()
            };
            let m2 = QueueModel::new(p).unwrap();
            let x = m2.max_throughput(ServerKind::LocalityConscious, 0.8);
            assert!(x < prev, "S={s}: {x} !< {prev}");
            prev = x;
        }
        // Original default model unused warning guard.
        let _ = m;
    }

    #[test]
    fn hetero_bound_collapses_to_homogeneous_at_unit_speeds() {
        let m = model();
        for hlo in [0.2, 0.6, 0.95] {
            let d = m.derived_from_hlo(ServerKind::LocalityOblivious, hlo);
            let homo = m.max_throughput_derived(&d);
            let hetero = m.max_throughput_hetero(&d, &vec![1.0; m.params().nodes]);
            assert_eq!(homo, hetero, "hlo={hlo}");
        }
    }

    #[test]
    fn hetero_bound_scales_cpu_capacity_by_aggregate_speed() {
        // Small files + perfect hit rate → the CPU is the bottleneck, so
        // the bound must scale exactly with Σ speeds.
        let p = ModelParams {
            avg_file_kb: 4.0,
            ..ModelParams::default()
        };
        let m = QueueModel::new(p).unwrap();
        let d = m.derived_from_hlo(ServerKind::LocalityOblivious, 1.0);
        let n = m.params().nodes;
        let base = m.max_throughput_hetero(&d, &vec![1.0; n]);
        // A 1:3 mix of 4× and 0.5× nodes: aggregate 1.375× capacity.
        let mut speeds = vec![0.5; n];
        for s in speeds.iter_mut().take(n / 4) {
            *s = 4.0;
        }
        let mixed = m.max_throughput_hetero(&d, &speeds);
        let agg: f64 = speeds.iter().sum::<f64>() / cast::len_f64(n);
        assert!(
            (mixed / base - agg).abs() < 1e-9,
            "mixed/base = {} expected {agg}",
            mixed / base
        );
    }

    #[test]
    fn hetero_bound_ignores_cpu_speed_when_disk_bound() {
        // At a moderate hit rate the oblivious server is disk-bound;
        // faster CPUs must not move the bound at all.
        let m = model();
        let d = m.derived_from_hlo(ServerKind::LocalityOblivious, 0.6);
        let n = m.params().nodes;
        let base = m.max_throughput_hetero(&d, &vec![1.0; n]);
        let fast = m.max_throughput_hetero(&d, &vec![8.0; n]);
        assert_eq!(base, fast, "disk-bound cluster is CPU-speed-insensitive");
    }

    #[test]
    fn zero_hit_rate_axis_is_handled() {
        let m = model();
        let d = m.derived_from_hlo(ServerKind::LocalityOblivious, 0.0);
        assert_eq!(d.hit_rate, 0.0);
        let x = m.max_throughput(ServerKind::LocalityOblivious, 0.0);
        assert!(x.is_finite() && x > 0.0);
    }
}
