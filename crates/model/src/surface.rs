//! Parameter-space sweeps that regenerate the paper's model figures.

use crate::{ModelParams, QueueModel, ServerKind};
use l2s_util::cast;

/// A throughput (or ratio) surface over the paper's two axes: the
/// locality-oblivious hit rate and the average requested-file size.
#[derive(Clone, Debug)]
pub struct Surface {
    /// Hit-rate axis values (the paper sweeps 0 → 1).
    pub hit_rates: Vec<f64>,
    /// Average-file-size axis values in KB (the paper sweeps 0 → 128).
    pub sizes_kb: Vec<f64>,
    /// `values[i][j]` is the metric at `hit_rates[i]`, `sizes_kb[j]`;
    /// `None` marks a sweep point whose parameters the model rejected,
    /// so consumers must render the gap explicitly (the CSV layer
    /// writes `none`) instead of inheriting a silent NaN.
    pub values: Vec<Vec<Option<f64>>>,
}

impl Surface {
    /// The largest value on the surface, with its axis coordinates
    /// `(value, hit_rate, size_kb)`. Invalid (`None`) cells are
    /// skipped; an all-invalid surface reports `f64::NEG_INFINITY`.
    pub fn peak(&self) -> (f64, f64, f64) {
        let mut best = (f64::NEG_INFINITY, 0.0, 0.0);
        for (i, row) in self.values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if let Some(v) = v {
                    if v > best.0 {
                        best = (v, self.hit_rates[i], self.sizes_kb[j]);
                    }
                }
            }
        }
        best
    }

    /// Per-row maxima — the paper's "side view" (Figure 6) collapses the
    /// size axis this way. Invalid cells are skipped; an all-invalid
    /// row reports `f64::NEG_INFINITY`.
    pub fn row_max(&self) -> Vec<f64> {
        self.values
            .iter()
            .map(|row| {
                row.iter()
                    .copied()
                    .flatten()
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect()
    }

    /// The surface with invalid cells as NaN — the lossy view the ASCII
    /// heat map needs (NaN cells render as the lowest ramp glyph).
    pub fn values_or_nan(&self) -> Vec<Vec<f64>> {
        self.values
            .iter()
            .map(|row| row.iter().map(|v| v.unwrap_or(f64::NAN)).collect())
            .collect()
    }
}

/// Default axes used by the figure binaries: hit rate 0.02..=1.00 and
/// file size 4..=128 KB (the paper's surfaces are meshed at roughly
/// 8 KB granularity along the size axis; starting below ~4 KB grows the
/// peak ratio past what Figure 5 shows).
pub fn default_axes(hit_steps: usize, size_steps: usize) -> (Vec<f64>, Vec<f64>) {
    l2s_util::invariant!(
        hit_steps >= 2 && size_steps >= 2,
        "surface axes need at least two steps each"
    );
    let hit_rates = (0..hit_steps)
        .map(|i| 0.02 + 0.98 * cast::len_f64(i) / cast::len_f64(hit_steps - 1))
        .collect();
    let sizes_kb = (0..size_steps)
        .map(|j| 4.0 + 124.0 * cast::len_f64(j) / cast::len_f64(size_steps - 1))
        .collect();
    (hit_rates, sizes_kb)
}

/// Figure 3 / Figure 4: throughput surface of a server kind over the
/// (hit rate, file size) grid.
///
/// Rows are independent closed-form evaluations, so they are fanned out
/// across the [`l2s_util::pool`] executor; results are collected by row
/// index, so the surface is identical for any worker count.
pub fn throughput_surface(
    base: &ModelParams,
    kind: ServerKind,
    hit_rates: &[f64],
    sizes_kb: &[f64],
) -> Surface {
    let workers = l2s_util::pool::workers_from_env();
    let values = l2s_util::pool::run_indexed(workers, hit_rates.len(), |i| {
        let h = hit_rates[i];
        sizes_kb
            .iter()
            .map(|&s| {
                let mut p = *base;
                p.avg_file_kb = s;
                // Invalid sweep points surface as explicit None cells
                // rather than aborting the whole surface.
                QueueModel::new(p).ok().map(|m| m.max_throughput(kind, h))
            })
            .collect()
    });
    Surface {
        hit_rates: hit_rates.to_vec(),
        sizes_kb: sizes_kb.to_vec(),
        values,
    }
}

/// Figure 5 (and 6): element-wise ratio of the conscious surface to the
/// oblivious surface.
pub fn throughput_increase_surface(
    base: &ModelParams,
    hit_rates: &[f64],
    sizes_kb: &[f64],
) -> Surface {
    let lc = throughput_surface(base, ServerKind::LocalityConscious, hit_rates, sizes_kb);
    let lo = throughput_surface(base, ServerKind::LocalityOblivious, hit_rates, sizes_kb);
    let values = lc
        .values
        .iter()
        .zip(&lo.values)
        .map(|(a, b)| {
            a.iter()
                .zip(b)
                .map(|(x, y)| x.zip(*y).map(|(x, y)| x / y))
                .collect()
        })
        .collect();
    Surface {
        hit_rates: hit_rates.to_vec(),
        sizes_kb: sizes_kb.to_vec(),
        values,
    }
}

/// Section 3.2's memory study: peak locality gain for each per-node
/// memory size, returned as `(cache_kb, peak_gain)` pairs.
pub fn memory_sweep(
    base: &ModelParams,
    cache_kbs: &[f64],
    hit_rates: &[f64],
    sizes_kb: &[f64],
) -> Vec<(f64, f64)> {
    cache_kbs
        .iter()
        .map(|&c| {
            let mut p = *base;
            p.cache_kb = c;
            let surface = throughput_increase_surface(&p, hit_rates, sizes_kb);
            (c, surface.peak().0)
        })
        .collect()
}

/// Section 3.2's replication study: for each replication fraction `R`,
/// the forwarded fraction `Q` and conscious throughput at a given
/// operating point, returned as `(replication, forward_fraction,
/// throughput)` triples.
pub fn replication_sweep(
    base: &ModelParams,
    replications: &[f64],
    hlo: f64,
) -> Vec<(f64, f64, f64)> {
    replications
        .iter()
        .filter_map(|&r| {
            let mut p = *base;
            p.replication = r;
            // Invalid sweep points are skipped rather than aborting.
            let m = QueueModel::new(p).ok()?;
            let d = m.derived_from_hlo(ServerKind::LocalityConscious, hlo);
            Some((r, d.forward_fraction, m.max_throughput_derived(&d)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_axes_cover_paper_ranges() {
        let (hits, sizes) = default_axes(10, 8);
        assert_eq!(hits.len(), 10);
        assert_eq!(sizes.len(), 8);
        assert!(hits[0] > 0.0 && (hits[9] - 1.0).abs() < 1e-12);
        assert!(sizes[0] >= 4.0 && (sizes[7] - 128.0).abs() < 1e-12);
    }

    #[test]
    fn conscious_surface_dominates_oblivious_almost_everywhere() {
        let base = ModelParams::default();
        let (hits, sizes) = default_axes(8, 6);
        let ratio = throughput_increase_surface(&base, &hits, &sizes);
        let mut above = 0usize;
        let mut total = 0usize;
        for row in &ratio.values {
            for v in row.iter().copied().flatten() {
                total += 1;
                if v >= 1.0 {
                    above += 1;
                }
            }
        }
        // The conscious server loses only where the oblivious one already
        // caches (nearly) everything — the paper's ">= 95% hit rate" strip.
        assert!(above * 4 >= total * 3, "{above}/{total} cells >= 1.0");
        // And even there the loss is bounded by the forwarding overhead.
        let min = ratio
            .values
            .iter()
            .flatten()
            .copied()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        assert!(min > 0.7, "worst-case ratio = {min}");
    }

    #[test]
    fn ratio_surface_peaks_several_fold() {
        let base = ModelParams::default();
        let (hits, sizes) = default_axes(25, 16);
        let ratio = throughput_increase_surface(&base, &hits, &sizes);
        let (peak, at_hit, at_size) = ratio.peak();
        assert!(peak > 5.0, "peak = {peak} at ({at_hit}, {at_size})");
        assert!(peak < 14.0, "peak = {peak} implausibly large");
        // The paper's peak sits at moderately high hit rates.
        assert!(at_hit > 0.5 && at_hit < 1.0, "peak hit = {at_hit}");
    }

    #[test]
    fn larger_memories_shrink_the_gain() {
        let base = ModelParams::default();
        let (hits, sizes) = default_axes(15, 10);
        let mb = 1024.0;
        let sweep = memory_sweep(&base, &[128.0 * mb, 256.0 * mb, 512.0 * mb], &hits, &sizes);
        assert!(
            sweep[0].1 >= sweep[1].1 && sweep[1].1 >= sweep[2].1,
            "gains should fall with memory: {sweep:?}"
        );
        // At 512 MB the paper still reports a ~6.5x peak.
        assert!(sweep[2].1 > 4.0, "512 MB gain = {}", sweep[2].1);
    }

    #[test]
    fn replication_cuts_forwarding_monotonically() {
        let base = ModelParams::default();
        let sweep = replication_sweep(&base, &[0.0, 0.15, 0.5, 1.0], 0.6);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 + 1e-12,
                "Q should fall with R: {sweep:?}"
            );
        }
        // R = 0: Q = 15/16; R = 1: the hottest files are everywhere, so
        // forwarding only happens for uncached files.
        assert!((sweep[0].1 - 15.0 / 16.0).abs() < 1e-9);
        assert!(sweep[3].1 < sweep[0].1);
    }

    #[test]
    fn row_max_matches_manual_scan() {
        let base = ModelParams::default();
        let (hits, sizes) = default_axes(5, 4);
        let s = throughput_surface(&base, ServerKind::LocalityOblivious, &hits, &sizes);
        let maxes = s.row_max();
        for (i, row) in s.values.iter().enumerate() {
            let want = row
                .iter()
                .copied()
                .flatten()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(maxes[i], want);
        }
    }

    #[test]
    fn invalid_cells_are_skipped_not_propagated() {
        let s = Surface {
            hit_rates: vec![0.2, 0.8],
            sizes_kb: vec![8.0, 16.0],
            values: vec![vec![Some(1.0), None], vec![None, Some(3.0)]],
        };
        let (peak, at_hit, at_size) = s.peak();
        assert_eq!((peak, at_hit, at_size), (3.0, 0.8, 16.0));
        assert_eq!(s.row_max(), vec![1.0, 3.0]);
        let nan_view = s.values_or_nan();
        assert!(nan_view[0][1].is_nan() && nan_view[1][0].is_nan());
        assert_eq!(nan_view[0][0], 1.0);
    }
}
