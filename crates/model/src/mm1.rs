//! M/M/1 station mathematics.
//!
//! The paper's queuing network assumes every station is M/M/1. This module
//! holds the textbook formulas used by the full-network solution in
//! [`crate::QueueModel::solve`] and exposes them directly for analysis and
//! tests.

/// An M/M/1 station with Poisson arrivals at rate `lambda` and
/// exponential service at rate `mu` (both per second).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mm1 {
    /// Arrival rate λ (jobs/s).
    pub lambda: f64,
    /// Service rate µ (jobs/s).
    pub mu: f64,
}

impl Mm1 {
    /// Creates a station. A negative arrival rate or non-positive
    /// service rate is rejected by `invariant!`.
    pub fn new(lambda: f64, mu: f64) -> Self {
        l2s_util::invariant!(lambda >= 0.0, "arrival rate must be non-negative");
        l2s_util::invariant!(mu > 0.0, "service rate must be positive");
        Mm1 { lambda, mu }
    }

    /// Utilization `ρ = λ/µ`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu
    }

    /// True when the queue is stable (`ρ < 1`).
    #[inline]
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Mean number of jobs in the system `L = ρ/(1-ρ)`, or `None` when
    /// saturated.
    pub fn mean_jobs(&self) -> Option<f64> {
        let rho = self.utilization();
        self.is_stable().then(|| rho / (1.0 - rho))
    }

    /// Mean number of jobs waiting in queue `Lq = ρ²/(1-ρ)`, or `None`
    /// when saturated.
    pub fn mean_queue(&self) -> Option<f64> {
        let rho = self.utilization();
        self.is_stable().then(|| rho * rho / (1.0 - rho))
    }

    /// Mean time in system (waiting + service) `W = 1/(µ-λ)`, or `None`
    /// when saturated.
    pub fn mean_response(&self) -> Option<f64> {
        self.is_stable().then(|| 1.0 / (self.mu - self.lambda))
    }

    /// Mean waiting time in queue `Wq = ρ/(µ-λ)`, or `None` when
    /// saturated.
    pub fn mean_wait(&self) -> Option<f64> {
        self.is_stable()
            .then(|| self.utilization() / (self.mu - self.lambda))
    }

    /// Steady-state probability of exactly `n` jobs in the system,
    /// `P(n) = (1-ρ)ρⁿ`, or `None` when saturated.
    pub fn prob_n(&self, n: u32) -> Option<f64> {
        let rho = self.utilization();
        self.is_stable()
            .then(|| (1.0 - rho) * rho.powi(l2s_util::cast::small_i32(u64::from(n))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        // λ = 3/s, µ = 4/s: ρ = 0.75, L = 3, W = 1 s, Wq = 0.75 s.
        let q = Mm1::new(3.0, 4.0);
        assert!((q.utilization() - 0.75).abs() < 1e-12);
        assert!((q.mean_jobs().unwrap() - 3.0).abs() < 1e-12);
        assert!((q.mean_response().unwrap() - 1.0).abs() < 1e-12);
        assert!((q.mean_wait().unwrap() - 0.75).abs() < 1e-12);
        assert!((q.mean_queue().unwrap() - 2.25).abs() < 1e-12);
    }

    #[test]
    fn littles_law_holds() {
        let q = Mm1::new(7.0, 11.0);
        let l = q.mean_jobs().unwrap();
        let w = q.mean_response().unwrap();
        assert!((l - q.lambda * w).abs() < 1e-12, "L = λW violated");
        let lq = q.mean_queue().unwrap();
        let wq = q.mean_wait().unwrap();
        assert!((lq - q.lambda * wq).abs() < 1e-12, "Lq = λWq violated");
    }

    #[test]
    fn saturated_queue_has_no_steady_state() {
        let q = Mm1::new(5.0, 5.0);
        assert!(!q.is_stable());
        assert!(q.mean_jobs().is_none());
        assert!(q.mean_response().is_none());
        assert!(q.prob_n(0).is_none());
    }

    #[test]
    fn state_probabilities_sum_to_one() {
        let q = Mm1::new(2.0, 5.0);
        let sum: f64 = (0..200).map(|n| q.prob_n(n).unwrap()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_queue_probability_is_idle_fraction() {
        let q = Mm1::new(1.0, 4.0);
        assert!((q.prob_n(0).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_arrivals_is_idle() {
        let q = Mm1::new(0.0, 3.0);
        assert_eq!(q.mean_jobs().unwrap(), 0.0);
        assert!((q.mean_response().unwrap() - (1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn response_time_diverges_near_saturation() {
        let w_low = Mm1::new(0.5, 1.0).mean_response().unwrap();
        let w_high = Mm1::new(0.999, 1.0).mean_response().unwrap();
        assert!(w_high > 100.0 * w_low);
    }
}
