//! Model parameters — Table 1 of the paper, with its default values.

/// Which request-distribution discipline the model evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Requests are load-balanced with no regard to cache contents; every
    /// node's memory independently caches the globally hottest files, so
    /// the effective cache is `C` bytes (`R = 1` in the paper's framing).
    LocalityOblivious,
    /// Requests are routed to the node caching the file; the cluster
    /// memories aggregate to `N(1-R)C + RC` bytes, at the price of
    /// forwarding a fraction `Q` of the requests.
    LocalityConscious,
}

/// The model's parameters. Field defaults are the paper's Table 1 values.
///
/// Sizes are expressed in **KBytes** and rates in operations per second,
/// matching the paper's formulas (e.g. the reply rate
/// `µm = (0.0001 + S/12000)^-1 ops/s` with `S` in KB).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// `N` — number of cluster nodes (default 16).
    pub nodes: usize,
    /// `R` — fraction of each memory devoted to replicating hot files
    /// (default 0).
    pub replication: f64,
    /// `α` — Zipf exponent of the file popularity law (default 1).
    pub alpha: f64,
    /// `C` — cache (main memory) size per node in KB (default 128 MB).
    pub cache_kb: f64,
    /// `S` — average size of requested files in KB (default 16 KB; the
    /// figures sweep this axis).
    pub avg_file_kb: f64,
    /// Average inbound (request-message) transfer size in KB, used for the
    /// router and forward-message costs (default 0.3 KB — a typical
    /// HTTP/1.0 GET).
    pub request_kb: f64,
    /// Router throughput in KB/s; `µr = router_kb_per_s / size` ops/s
    /// (default 500 000 KB/s ≈ 4 Gbit/s, a Cisco 7576).
    pub router_kb_per_s: f64,
    /// `µi` — request service rate at the NI (default 140 000 ops/s).
    pub ni_request_rate: f64,
    /// `µp` — request read/parse rate on the CPU (default 6 300 ops/s).
    pub parse_rate: f64,
    /// `µf` — request forwarding rate on the CPU (default 10 000 ops/s).
    pub forward_rate: f64,
    /// `µm` fixed overhead in seconds (default 0.0001): reply service on
    /// the CPU once the file is memory-resident.
    pub mem_overhead_s: f64,
    /// `µm` bandwidth term in KB/s (default 12 000).
    pub mem_kb_per_s: f64,
    /// `µd` fixed overhead in seconds (default 0.028: 2 × 14 ms accesses,
    /// one for the directory, one for the data).
    pub disk_overhead_s: f64,
    /// `µd` transfer bandwidth in KB/s (default 10 000 = 10 MB/s).
    pub disk_kb_per_s: f64,
    /// `µo` fixed overhead in seconds (default 3 µs per message).
    pub ni_out_overhead_s: f64,
    /// `µo` link bandwidth in KB/s (default 128 000 = 1 Gbit/s).
    pub ni_out_kb_per_s: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            nodes: 16,
            replication: 0.0,
            alpha: 1.0,
            cache_kb: 128.0 * 1024.0,
            avg_file_kb: 16.0,
            request_kb: 0.3,
            router_kb_per_s: 500_000.0,
            ni_request_rate: 140_000.0,
            parse_rate: 6_300.0,
            forward_rate: 10_000.0,
            mem_overhead_s: 0.0001,
            mem_kb_per_s: 12_000.0,
            disk_overhead_s: 0.028,
            disk_kb_per_s: 10_000.0,
            ni_out_overhead_s: 0.000_003,
            ni_out_kb_per_s: 128_000.0,
        }
    }
}

impl ModelParams {
    /// Validates parameter sanity; called by [`crate::QueueModel::new`].
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.replication) {
            return Err("replication must be in [0, 1]".into());
        }
        if self.alpha < 0.0 {
            return Err("alpha must be non-negative".into());
        }
        for (name, v) in [
            ("cache_kb", self.cache_kb),
            ("avg_file_kb", self.avg_file_kb),
            ("request_kb", self.request_kb),
            ("router_kb_per_s", self.router_kb_per_s),
            ("ni_request_rate", self.ni_request_rate),
            ("parse_rate", self.parse_rate),
            ("forward_rate", self.forward_rate),
            ("mem_kb_per_s", self.mem_kb_per_s),
            ("disk_kb_per_s", self.disk_kb_per_s),
            ("ni_out_kb_per_s", self.ni_out_kb_per_s),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(format!("{name} must be positive and finite"));
            }
        }
        for (name, v) in [
            ("mem_overhead_s", self.mem_overhead_s),
            ("disk_overhead_s", self.disk_overhead_s),
            ("ni_out_overhead_s", self.ni_out_overhead_s),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(format!("{name} must be non-negative and finite"));
            }
        }
        Ok(())
    }

    /// Service time in seconds of one reply from memory (`1/µm`).
    #[inline]
    pub fn mem_reply_s(&self, file_kb: f64) -> f64 {
        self.mem_overhead_s + file_kb / self.mem_kb_per_s
    }

    /// Service time in seconds of one disk read (`1/µd`), including the
    /// directory access the paper folds into the overhead.
    #[inline]
    pub fn disk_read_s(&self, file_kb: f64) -> f64 {
        self.disk_overhead_s + file_kb / self.disk_kb_per_s
    }

    /// Service time in seconds of one outbound NI transfer (`1/µo`).
    #[inline]
    pub fn ni_out_s(&self, kb: f64) -> f64 {
        self.ni_out_overhead_s + kb / self.ni_out_kb_per_s
    }

    /// Service time in seconds of one router traversal (`1/µr`).
    #[inline]
    pub fn router_s(&self, kb: f64) -> f64 {
        kb / self.router_kb_per_s
    }

    /// Total locality-conscious cache capacity in KB:
    /// `Clc = N(1-R)C + RC` (the replicated fraction holds the same hot
    /// files everywhere, so it counts only once).
    pub fn conscious_cache_kb(&self) -> f64 {
        let n = l2s_util::cast::len_f64(self.nodes);
        n * (1.0 - self.replication) * self.cache_kb + self.replication * self.cache_kb
    }

    /// Effective cache capacity in KB for a server kind
    /// (`Clo = C`, `Clc` as above).
    pub fn effective_cache_kb(&self, kind: ServerKind) -> f64 {
        match kind {
            ServerKind::LocalityOblivious => self.cache_kb,
            ServerKind::LocalityConscious => self.conscious_cache_kb(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = ModelParams::default();
        assert_eq!(p.nodes, 16);
        assert_eq!(p.replication, 0.0);
        assert_eq!(p.alpha, 1.0);
        assert_eq!(p.cache_kb, 131_072.0);
        assert_eq!(p.parse_rate, 6_300.0);
        assert_eq!(p.forward_rate, 10_000.0);
        assert_eq!(p.ni_request_rate, 140_000.0);
        p.validate().unwrap();
    }

    #[test]
    fn service_time_formulas() {
        let p = ModelParams::default();
        // µm at S = 12 KB: 0.0001 + 0.001 = 1.1 ms.
        assert!((p.mem_reply_s(12.0) - 0.0011).abs() < 1e-12);
        // µd at S = 10 KB: 0.028 + 0.001 = 29 ms.
        assert!((p.disk_read_s(10.0) - 0.029).abs() < 1e-12);
        // µo at S = 128 KB: 3 µs + 1 ms.
        assert!((p.ni_out_s(128.0) - 0.001_003).abs() < 1e-12);
        // Router at 500 KB: 1 ms.
        assert!((p.router_s(500.0) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn conscious_cache_aggregates_memories() {
        let mut p = ModelParams::default();
        assert_eq!(p.conscious_cache_kb(), 16.0 * 131_072.0);
        p.replication = 1.0;
        // Full replication degenerates to a single cache (the paper's
        // observation that R = 1 is the oblivious server).
        assert_eq!(p.conscious_cache_kb(), 131_072.0);
        p.replication = 0.15;
        let expect = 16.0 * 0.85 * 131_072.0 + 0.15 * 131_072.0;
        assert!((p.conscious_cache_kb() - expect).abs() < 1e-6);
    }

    #[test]
    fn effective_cache_by_kind() {
        let p = ModelParams::default();
        assert_eq!(
            p.effective_cache_kb(ServerKind::LocalityOblivious),
            p.cache_kb
        );
        assert_eq!(
            p.effective_cache_kb(ServerKind::LocalityConscious),
            p.conscious_cache_kb()
        );
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = ModelParams {
            nodes: 0,
            ..ModelParams::default()
        };
        assert!(p.validate().is_err());
        p.nodes = 4;
        p.replication = 1.5;
        assert!(p.validate().is_err());
        p.replication = 0.0;
        p.disk_kb_per_s = -1.0;
        assert!(p.validate().is_err());
        p.disk_kb_per_s = 10_000.0;
        p.mem_overhead_s = f64::NAN;
        assert!(p.validate().is_err());
    }
}
