//! Analytic LRU miss rates for *non-stationary* request processes.
//!
//! Olmos, Graham & Simonian ("Cache Miss Estimation for Non-Stationary
//! Request Processes") extend Che's characteristic-time approximation
//! to inhomogeneous Poisson traffic: requests for file `f` arrive with
//! a time-varying intensity `λ_f(t) = λ(t)·p_f(t)`, and an LRU cache of
//! byte capacity `C` keeps `f` resident at time `t` exactly when `f`
//! was referenced within the *characteristic window* `(t − T(t), t]`,
//! where `T(t)` solves the occupancy fixed point
//!
//! ```text
//! Σ_f s_f · (1 − exp(−m_f(t, T))) = C,
//! m_f(t, T) = ∫_{t−T}^{t} λ_f(u) du.
//! ```
//!
//! The probability that a request drawn at `t` misses is then
//! `Σ_f p_f(t)·exp(−m_f(t, T(t)))`, and the run-level miss rate is the
//! request-weighted average of that instantaneous rate across the
//! horizon. Truncating the window at `t = 0` (the cache starts cold)
//! makes the estimate cover the transient: before the cache has seen
//! enough traffic to fill, every first reference is a compulsory miss
//! and nothing is evicted, which the fixed point reproduces by pushing
//! `T(t)` to the full history `t`.
//!
//! The estimator is deliberately *process-agnostic*: it takes `λ(t)`
//! and `p_f(t)` as closures, so the `l2s-workload` crate's
//! `WorkloadMod::prob_at` — the exact law its generator draws from —
//! plugs in directly, turning the generator into a checked instrument
//! (experiment X9 holds measured replays to this estimate within a
//! stated tolerance band).

use l2s_util::cast;

/// Inputs to [`lru_miss_rate`] besides the process itself.
#[derive(Clone, Copy, Debug)]
pub struct NonStatLruSpec<'a> {
    /// Per-file sizes in KB, dense by file id.
    pub sizes_kb: &'a [f64],
    /// LRU cache capacity in KB.
    pub cache_kb: f64,
    /// Evaluation horizon in seconds (the run being modeled).
    pub horizon_s: f64,
    /// Evaluation points across the horizon (the instantaneous miss
    /// rate is computed at stratum midpoints and request-weighted).
    pub grid: usize,
    /// Midpoint-quadrature points per characteristic-window integral.
    pub quad: usize,
}

impl NonStatLruSpec<'_> {
    fn valid(&self) -> bool {
        !self.sizes_kb.is_empty()
            && self.sizes_kb.iter().all(|s| s.is_finite() && *s > 0.0)
            && self.cache_kb.is_finite()
            && self.cache_kb > 0.0
            && self.horizon_s.is_finite()
            && self.horizon_s > 0.0
            && self.grid > 0
            && self.quad > 0
    }
}

/// Bisection depth for the characteristic-time fixed point. The window
/// only enters through `exp(−m_f)`, so resolving `T` to ~12 significant
/// digits is far below every other error term in the approximation.
const BISECT_ITERS: usize = 48;

/// Expected LRU miss rate of the inhomogeneous process `(rate, prob)`
/// over `[0, horizon_s]`, by the Che/OGS characteristic-time
/// approximation described in the module docs.
///
/// `rate(t)` is the total request intensity λ(t) ≥ 0 (requests/s);
/// `prob(t, f)` is the probability that a request issued at `t` asks
/// for file `f` (summing to 1 over `f` at every `t`).
///
/// Returns `None` when the spec is degenerate (no files, non-positive
/// sizes/capacity/horizon, empty grid) or the process produces no
/// requests over the horizon — there is no miss rate to speak of, and
/// callers render the absence instead of a silent number.
pub fn lru_miss_rate(
    spec: &NonStatLruSpec,
    rate: impl Fn(f64) -> f64,
    prob: impl Fn(f64, usize) -> f64,
) -> Option<f64> {
    if !spec.valid() {
        return None;
    }
    let files = spec.sizes_kb.len();
    let step = spec.horizon_s / cast::len_f64(spec.grid);
    let mut weighted_miss = 0.0;
    let mut weight = 0.0;
    // Reused per-file buffer of window masses m_f(t, T).
    let mut mass = vec![0.0; files];

    for k in 0..spec.grid {
        let t = (cast::len_f64(k) + 0.5) * step;
        let lambda = rate(t);
        if !(lambda.is_finite() && lambda >= 0.0) {
            return None;
        }
        if lambda == 0.0 {
            // No requests issued near t: nothing to weight in.
            continue;
        }

        // Occupancy as a function of the trial window T: fills `mass`
        // as a side effect, so the winning window's masses are on hand
        // for the miss sum afterwards.
        let occupancy = |mass: &mut [f64], window: f64| -> f64 {
            let q_step = window / cast::len_f64(spec.quad);
            mass.fill(0.0);
            for q in 0..spec.quad {
                let u = t - window + (cast::len_f64(q) + 0.5) * q_step;
                let lu = rate(u).max(0.0) * q_step;
                if lu == 0.0 {
                    continue;
                }
                for (f, m) in mass.iter_mut().enumerate() {
                    *m += lu * prob(u, f);
                }
            }
            spec.sizes_kb
                .iter()
                .zip(mass.iter())
                .map(|(s, m)| s * (1.0 - (-m).exp()))
                .sum()
        };

        // Cold-start truncation: the window never reaches past t = 0.
        // If even the full history does not fill the cache, nothing has
        // been evicted yet and the window is the whole history.
        if occupancy(&mut mass, t) <= spec.cache_kb {
            // `mass` already holds m_f(t, t).
        } else {
            let (mut lo, mut hi) = (0.0, t);
            for _ in 0..BISECT_ITERS {
                let mid = 0.5 * (lo + hi);
                if occupancy(&mut mass, mid) < spec.cache_kb {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            // Leave `mass` evaluated at the final midpoint.
            occupancy(&mut mass, 0.5 * (lo + hi));
        }

        let miss: f64 = (0..files).map(|f| prob(t, f) * (-mass[f]).exp()).sum();
        weighted_miss += lambda * miss;
        weight += lambda;
    }

    if weight <= 0.0 {
        return None;
    }
    Some((weighted_miss / weight).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform popularity, equal sizes, constant rate: Che's fixed
    /// point has the closed form `1 − e^{−m} = C/(F·s)`, so the
    /// steady-state miss rate is `1 − C/(F·s)`.
    #[test]
    fn stationary_uniform_matches_closed_form() {
        let files = 400usize;
        let sizes = vec![2.0; files];
        let spec = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb: 300.0, // 37.5% of the 800 KB population
            horizon_s: 50_000.0,
            grid: 64,
            quad: 8,
        };
        let p = 1.0 / cast::len_f64(files);
        let miss = lru_miss_rate(&spec, |_| 200.0, |_, _| p).unwrap();
        let want = 1.0 - 300.0 / 800.0;
        assert!(
            (miss - want).abs() < 0.01,
            "miss {miss} vs closed form {want}"
        );
    }

    #[test]
    fn miss_rate_is_monotone_in_cache_size() {
        let sizes: Vec<f64> = (0..300).map(|i| 1.0 + 0.01 * cast::len_f64(i)).collect();
        let zipf: Vec<f64> = (1..=300u32).map(|r| 1.0 / f64::from(r).powf(0.8)).collect();
        let total: f64 = zipf.iter().sum();
        let probs: Vec<f64> = zipf.iter().map(|z| z / total).collect();
        let mut prev = 1.0;
        for cache_kb in [20.0, 80.0, 200.0, 400.0] {
            let spec = NonStatLruSpec {
                sizes_kb: &sizes,
                cache_kb,
                horizon_s: 10_000.0,
                grid: 32,
                quad: 6,
            };
            let miss = lru_miss_rate(
                &spec,
                |_| 100.0,
                |t, f| {
                    let _ = t;
                    probs[f]
                },
            )
            .unwrap();
            assert!(
                miss <= prev + 1e-9,
                "cache {cache_kb}: miss {miss} rose above {prev}"
            );
            prev = miss;
        }
    }

    #[test]
    fn tiny_cache_misses_almost_everything_and_huge_cache_barely() {
        let sizes = vec![5.0; 200];
        let probs = vec![1.0 / 200.0; 200];
        let small = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb: 5.0,
            horizon_s: 20_000.0,
            grid: 32,
            quad: 6,
        };
        let miss = lru_miss_rate(&small, |_| 100.0, |_, f| probs[f]).unwrap();
        assert!(miss > 0.95, "one-file cache still hit {miss}");
        let big = NonStatLruSpec {
            cache_kb: 10_000.0, // whole population fits
            ..small
        };
        let miss = lru_miss_rate(&big, |_| 100.0, |_, f| probs[f]).unwrap();
        // Only the compulsory transient remains: 200 first references
        // out of 2M requests.
        assert!(miss < 0.005, "resident population still missed {miss}");
    }

    #[test]
    fn cold_start_transient_raises_short_horizons() {
        let sizes = vec![2.0; 500];
        let probs = vec![1.0 / 500.0; 500];
        let base = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb: 400.0,
            horizon_s: 20.0, // ~2000 requests over 500 files: mostly cold
            grid: 32,
            quad: 6,
        };
        let short = lru_miss_rate(&base, |_| 100.0, |_, f| probs[f]).unwrap();
        let long = lru_miss_rate(
            &NonStatLruSpec {
                horizon_s: 20_000.0,
                ..base
            },
            |_| 100.0,
            |_, f| probs[f],
        )
        .unwrap();
        assert!(
            short > long + 0.02,
            "transient must show: short {short} vs long {long}"
        );
    }

    #[test]
    fn rate_swings_average_through_the_window() {
        // A diurnal rate with the same popularity law: the window
        // stretches in troughs and shrinks at peaks, but with uniform
        // popularity the request-weighted miss should stay within a few
        // points of the constant-rate value at the mean rate.
        let sizes = vec![2.0; 400];
        let probs = vec![1.0 / 400.0; 400];
        let spec = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb: 300.0,
            horizon_s: 40_000.0,
            grid: 64,
            quad: 8,
        };
        let flat = lru_miss_rate(&spec, |_| 150.0, |_, f| probs[f]).unwrap();
        let swung = lru_miss_rate(
            &spec,
            |t| 150.0 * (1.0 + 0.8 * (t / 2_000.0).sin()),
            |_, f| probs[f],
        )
        .unwrap();
        assert!(
            (flat - swung).abs() < 0.05,
            "uniform popularity: flat {flat} vs swung {swung}"
        );
    }

    #[test]
    fn degenerate_specs_yield_none() {
        let sizes = vec![1.0; 10];
        let ok = NonStatLruSpec {
            sizes_kb: &sizes,
            cache_kb: 4.0,
            horizon_s: 100.0,
            grid: 8,
            quad: 4,
        };
        assert!(lru_miss_rate(&ok, |_| 1.0, |_, _| 0.1).is_some());
        let empty = NonStatLruSpec {
            sizes_kb: &[],
            ..ok
        };
        assert!(lru_miss_rate(&empty, |_| 1.0, |_, _| 0.1).is_none());
        let dead = NonStatLruSpec {
            cache_kb: 0.0,
            ..ok
        };
        assert!(lru_miss_rate(&dead, |_| 1.0, |_, _| 0.1).is_none());
        assert!(
            lru_miss_rate(&ok, |_| 0.0, |_, _| 0.1).is_none(),
            "a silent process has no miss rate"
        );
        assert!(
            lru_miss_rate(&ok, |_| f64::NAN, |_, _| 0.1).is_none(),
            "non-finite intensities are rejected, not propagated"
        );
    }
}
