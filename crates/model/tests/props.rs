//! Property-based tests of the queuing model over its whole parameter
//! space.

use l2s_model::{ModelParams, QueueModel, ServerKind};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ModelParams> {
    (
        1usize..40,
        0.0f64..1.0,
        0.05f64..1.5,
        1_000.0f64..1_000_000.0,
        0.5f64..256.0,
    )
        .prop_map(
            |(nodes, replication, alpha, cache_kb, avg_file_kb)| ModelParams {
                nodes,
                replication,
                alpha,
                cache_kb,
                avg_file_kb,
                ..ModelParams::default()
            },
        )
}

proptest! {
    /// The bound is finite, positive, and conscious >= oblivious * (a
    /// forwarding-overhead slack factor) across the whole space.
    #[test]
    fn bounds_well_formed(params in arb_params(), hlo in 0.0f64..1.0) {
        let model = QueueModel::new(params).unwrap();
        let lo = model.max_throughput(ServerKind::LocalityOblivious, hlo);
        let lc = model.max_throughput(ServerKind::LocalityConscious, hlo);
        prop_assert!(lo.is_finite() && lo > 0.0);
        prop_assert!(lc.is_finite() && lc > 0.0);
        // Locality can only lose by the forwarding overhead, never more
        // than ~35%.
        prop_assert!(lc > lo * 0.65, "lc {lc} far below lo {lo}");
    }

    /// The full M/M/1 solution exists strictly below the bound and not
    /// at/above it.
    #[test]
    fn solve_agrees_with_bound(params in arb_params(), hlo in 0.01f64..1.0) {
        let model = QueueModel::new(params).unwrap();
        for kind in [ServerKind::LocalityOblivious, ServerKind::LocalityConscious] {
            let bound = model.max_throughput(kind, hlo);
            prop_assert!(model.solve(kind, hlo, bound * 0.90).is_some());
            prop_assert!(model.solve(kind, hlo, bound * 1.10).is_none());
        }
    }

    /// Response time is monotone in load.
    #[test]
    fn response_monotone_in_load(params in arb_params(), hlo in 0.01f64..1.0) {
        let model = QueueModel::new(params).unwrap();
        let bound = model.max_throughput(ServerKind::LocalityConscious, hlo);
        let low = model
            .solve(ServerKind::LocalityConscious, hlo, bound * 0.2)
            .unwrap();
        let high = model
            .solve(ServerKind::LocalityConscious, hlo, bound * 0.8)
            .unwrap();
        prop_assert!(high.response_s >= low.response_s);
    }

    /// Throughput bounds are monotone in the hit-rate axis for the
    /// oblivious server (fewer disk visits can only help).
    #[test]
    fn oblivious_bound_monotone_in_hit(params in arb_params(), h1 in 0.0f64..1.0, h2 in 0.0f64..1.0) {
        let model = QueueModel::new(params).unwrap();
        let (lo_h, hi_h) = if h1 < h2 { (h1, h2) } else { (h2, h1) };
        let x_lo = model.max_throughput(ServerKind::LocalityOblivious, lo_h);
        let x_hi = model.max_throughput(ServerKind::LocalityOblivious, hi_h);
        prop_assert!(x_hi >= x_lo * (1.0 - 1e-9));
    }

    /// Derived quantities are probabilities and Q respects its formula.
    #[test]
    fn derived_quantities_in_range(params in arb_params(), hlo in 0.0f64..1.0) {
        let model = QueueModel::new(params).unwrap();
        let d = model.derived_from_hlo(ServerKind::LocalityConscious, hlo);
        prop_assert!((0.0..=1.0).contains(&d.hit_rate));
        prop_assert!((0.0..=1.0).contains(&d.replicated_hit));
        prop_assert!((0.0..=1.0).contains(&d.forward_fraction));
        let n = params.nodes as f64;
        let expect_q = (n - 1.0) * (1.0 - d.replicated_hit) / n;
        prop_assert!((d.forward_fraction - expect_q).abs() < 1e-9);
    }
}
