//! Integration tests over the real repository: every source file must
//! lex, the committed tree must be clean at deny level with no baseline
//! growth, the JSON report must be byte-stable, and the installed binary
//! must honor the documented exit-code contract.

use l2s_lint::lexer::lex;
use l2s_lint::{run, Allowlist, Format, Options, Severity};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The repository root (two levels above this crate's manifest).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the repo root")
        .to_path_buf()
}

/// Every `.rs` file under the workspace's crate sources and test trees.
fn all_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[test]
fn every_workspace_source_file_lexes() {
    let files = all_rust_files(&repo_root());
    assert!(
        files.len() > 50,
        "workspace walk found suspiciously few files: {}",
        files.len()
    );
    for file in files {
        let src = fs::read_to_string(&file).unwrap();
        let tokens = lex(&src)
            .unwrap_or_else(|e| panic!("{}: lexer rejected real source: {e}", file.display()));
        assert!(
            !src.trim().is_empty() || tokens.is_empty(),
            "{}: non-empty file produced no tokens",
            file.display()
        );
    }
}

#[test]
fn committed_tree_is_deny_clean_with_no_growth_or_stale_allows() {
    let root = repo_root();
    let allow = fs::read_to_string(root.join("lint-allow.txt")).unwrap();
    let mut allow = Allowlist::parse(&allow).unwrap();
    let report = l2s_lint::lint_workspace(&root, &mut allow).unwrap();

    let deny: Vec<String> = report.at(Severity::Deny).map(|d| d.to_string()).collect();
    assert!(
        deny.is_empty(),
        "deny findings in the committed tree:\n{}",
        deny.join("\n")
    );

    let stale: Vec<String> = allow
        .unused()
        .iter()
        .map(|e| format!("{} {}", e.rule, e.path))
        .collect();
    assert!(stale.is_empty(), "stale lint-allow.txt entries: {stale:?}");

    let mut out = Vec::new();
    let mut err = Vec::new();
    let code = run(
        &Options {
            root: root.clone(),
            format: Format::Text,
            update_baseline: false,
        },
        &mut out,
        &mut err,
    );
    assert_eq!(
        code,
        0,
        "committed tree must pass the ratchet:\n{}{}",
        String::from_utf8_lossy(&out),
        String::from_utf8_lossy(&err)
    );
}

#[test]
fn json_report_is_byte_stable_on_the_real_tree() {
    let opts = Options {
        root: repo_root(),
        format: Format::Json,
        update_baseline: false,
    };
    let render = || {
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&opts, &mut out, &mut err);
        (code, out)
    };
    let (code_a, a) = render();
    let (code_b, b) = render();
    assert_eq!(code_a, code_b);
    assert_eq!(a, b, "same tree must render byte-identical JSON");
    let text = String::from_utf8(a).unwrap();
    assert!(text.starts_with("{\n  \"version\": 1,"));
    assert!(text.ends_with("}\n"));
    assert!(text.contains("\"summary\""));
}

/// A throwaway workspace for driving the installed binary.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str, files: &[(&str, &str)]) -> TempTree {
        let root = std::env::temp_dir().join(format!("l2s-lint-ws-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (path, source) in files {
            let full = root.join(path);
            fs::create_dir_all(full.parent().unwrap()).unwrap();
            fs::write(&full, source).unwrap();
        }
        TempTree { root }
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const HEADER: &str = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";

fn lint_binary(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_l2s-lint"))
        .arg(root)
        .args(extra)
        .output()
        .expect("l2s-lint binary must run")
}

#[test]
fn binary_exit_codes_cover_clean_findings_and_errors() {
    let clean = TempTree::new(
        "clean",
        &[
            ("crates/core/Cargo.toml", "[package]\n"),
            (
                "crates/core/src/lib.rs",
                &format!("{HEADER}pub fn f() {{}}\n"),
            ),
        ],
    );
    let output = lint_binary(&clean.root, &[]);
    assert_eq!(output.status.code(), Some(0), "clean tree exits 0");
    let err = String::from_utf8_lossy(&output.stderr);
    assert!(err.contains("l2s-lint: clean"), "summary missing: {err}");

    let dirty = TempTree::new(
        "dirty",
        &[
            ("crates/core/Cargo.toml", "[package]\n"),
            (
                "crates/core/src/lib.rs",
                &format!("{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n"),
            ),
        ],
    );
    let output = lint_binary(&dirty.root, &[]);
    assert_eq!(output.status.code(), Some(1), "deny findings exit 1");
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(out.contains("deny[panic]"), "finding not rendered: {out}");

    let output = lint_binary(Path::new("/nonexistent/l2s-lint-tree"), &[]);
    assert_eq!(output.status.code(), Some(2), "unreadable tree exits 2");

    let output = Command::new(env!("CARGO_BIN_EXE_l2s-lint"))
        .arg("--format")
        .arg("xml")
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2), "bad flags exit 2");
}

#[test]
fn binary_ratchet_rejects_synthetic_baseline_growth() {
    // One warn finding against a committed baseline that tolerates zero:
    // the ratchet must fail the run even though nothing is deny-level.
    let tree = TempTree::new(
        "ratchet",
        &[
            ("crates/core/Cargo.toml", "[package]\n"),
            (
                "crates/core/src/lib.rs",
                &format!("{HEADER}pub fn f(x: u64) -> f64 {{ x as f64 }}\n"),
            ),
            (
                "lint-baseline.json",
                "{\n  \"version\": 1,\n  \"warn\": {}\n}\n",
            ),
        ],
    );
    let output = lint_binary(&tree.root, &[]);
    assert_eq!(output.status.code(), Some(1), "warn growth exits 1");
    let out = String::from_utf8_lossy(&output.stdout);
    assert!(
        out.contains("baseline: warn[lossy-cast]"),
        "growth not reported: {out}"
    );

    // --update-baseline ratchets the debt in and the run goes green.
    let output = lint_binary(&tree.root, &["--update-baseline"]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "regenerated baseline exits 0"
    );
    let baseline = fs::read_to_string(tree.root.join("lint-baseline.json")).unwrap();
    assert!(baseline.contains("\"crates/core/src/lib.rs\": 1"));
    let output = lint_binary(&tree.root, &[]);
    assert_eq!(output.status.code(), Some(0), "tolerated debt stays green");
}
