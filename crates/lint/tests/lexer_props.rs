//! Property-based tests for the lexer: the identifier stream — the only
//! thing the rules match on — must be completely insensitive to the
//! contents of comments and literals.

use l2s_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Source fragments the generator composes. Comments and literals carry
/// deliberately hostile payloads: rule needles, nested quotes, nested
/// block comments.
const FRAGMENTS: &[&str] = &[
    "foo",
    "bar_baz",
    "r#type",
    "x9",
    "_under",
    "42",
    "0xFFu64",
    "1.5e-3",
    "+",
    "(",
    ")",
    "::",
    ".",
    ";",
    "=>",
    "'a'",
    "'\\n'",
    "'static",
    "\"str with .unwrap() and HashMap.iter()\"",
    "\"escaped \\\" quote and assert!(x)\"",
    "r#\"raw \"inner\" partial_cmp thread_rng\"#",
    "b\"bytes panic!(now)\"",
    "// line comment with Instant::now() and todo!()\n",
    "/* block /* nested */ from_secs_f64(1.0) as usize */",
];

/// Indices of fragments that are comments.
fn is_comment(frag: &str) -> bool {
    frag.starts_with("//") || frag.starts_with("/*")
}

/// Indices of fragments that are string/char literals (replaceable
/// without touching the ident stream).
fn is_literal(frag: &str) -> bool {
    frag.starts_with('"')
        || frag.starts_with("r#\"")
        || frag.starts_with("b\"")
        || (frag.starts_with('\'') && frag.ends_with('\''))
}

/// The identifier token texts of `src`, in order.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .expect("generated source must lex")
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src).to_string())
        .collect()
}

proptest! {
    /// Deleting every comment and replacing every string/char literal
    /// with a number leaves the identifier sequence untouched: literal
    /// and comment interiors are opaque to the rules by construction.
    #[test]
    fn stripping_comments_and_literals_preserves_idents(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..60),
    ) {
        let mut full = String::new();
        let mut stripped = String::new();
        for &p in &picks {
            let frag = FRAGMENTS[p];
            full.push_str(frag);
            full.push(' ');
            if is_comment(frag) {
                // Comments vanish entirely.
            } else if is_literal(frag) {
                // Literals become an inert number token.
                stripped.push_str("0 ");
            } else {
                stripped.push_str(frag);
                stripped.push(' ');
            }
        }
        prop_assert_eq!(idents(&full), idents(&stripped));
    }

    /// Lexing is total over the fragment language and every token's span
    /// round-trips: `text()` is exactly the source slice, and spans are
    /// in order and non-overlapping.
    #[test]
    fn tokens_tile_the_source_in_order(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..60),
    ) {
        let mut src = String::new();
        for &p in &picks {
            src.push_str(FRAGMENTS[p]);
            src.push(' ');
        }
        let tokens = lex(&src).expect("generated source must lex");
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "tokens must not overlap");
            prop_assert!(t.end > t.start, "tokens must be non-empty");
            prop_assert_eq!(t.text(&src), &src[t.start..t.end]);
            prev_end = t.end;
        }
    }
}
