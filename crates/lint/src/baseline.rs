//! The warn-level ratchet: `lint-baseline.json`.
//!
//! Deny-level findings fail a lint run immediately; warn-level findings
//! (today: `lossy-cast`, `raw-duration`) are *ratcheted* instead. The
//! committed baseline records, per rule and per file, how many warn
//! findings are tolerated. A run fails when any `(rule, file)` cell
//! exceeds its baseline — so new debt cannot land — while cells that
//! shrink only produce a note suggesting `--update-baseline`, which
//! regenerates the file from the current findings in one flag.
//!
//! The file format is a deliberately tiny JSON subset (string keys,
//! non-negative integer leaves, two levels of nesting), parsed and
//! serialized by hand so the lint stays dependency-free, and written
//! with sorted keys and fixed indentation so it is byte-stable.

use crate::{Diagnostic, Severity};
use std::collections::BTreeMap;

/// Warn-finding counts keyed by rule, then repository-relative path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `counts[rule][path]` = tolerated warn findings.
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// One cell whose current count exceeds the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Growth {
    /// Rule identifier.
    pub rule: String,
    /// Repository-relative path.
    pub path: String,
    /// Tolerated count from `lint-baseline.json` (0 when absent).
    pub baseline: usize,
    /// Count observed in this run.
    pub current: usize,
}

/// Outcome of comparing a run's warn findings against the baseline.
#[derive(Clone, Debug, Default)]
pub struct RatchetResult {
    /// Cells that grew — each one fails the run.
    pub growth: Vec<Growth>,
    /// Cells that shrank — candidates for `--update-baseline`.
    pub shrunk: Vec<Growth>,
}

impl Baseline {
    /// A baseline tolerating nothing.
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds the baseline that exactly matches `diags`' warn findings.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for d in diags {
            if d.severity == Severity::Warn {
                *counts
                    .entry(d.rule.to_string())
                    .or_default()
                    .entry(d.path.clone())
                    .or_default() += 1;
            }
        }
        Baseline { counts }
    }

    /// Compares the warn findings in `diags` against this baseline.
    pub fn ratchet(&self, diags: &[Diagnostic]) -> RatchetResult {
        let current = Baseline::from_diagnostics(diags);
        let mut result = RatchetResult::default();
        // Cells present now: grew, shrank, or held.
        for (rule, paths) in &current.counts {
            for (path, &count) in paths {
                let tolerated = self
                    .counts
                    .get(rule)
                    .and_then(|p| p.get(path))
                    .copied()
                    .unwrap_or(0);
                let cell = Growth {
                    rule: rule.clone(),
                    path: path.clone(),
                    baseline: tolerated,
                    current: count,
                };
                if count > tolerated {
                    result.growth.push(cell);
                } else if count < tolerated {
                    result.shrunk.push(cell);
                }
            }
        }
        // Cells that vanished entirely also shrink the baseline.
        for (rule, paths) in &self.counts {
            for (path, &tolerated) in paths {
                let gone = current.counts.get(rule).and_then(|p| p.get(path)).is_none();
                if gone && tolerated > 0 {
                    result.shrunk.push(Growth {
                        rule: rule.clone(),
                        path: path.clone(),
                        baseline: tolerated,
                        current: 0,
                    });
                }
            }
        }
        result
    }

    /// Serializes with sorted keys, two-space indentation, and a trailing
    /// newline — byte-stable for any given set of counts.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 1,\n  \"warn\": {");
        let mut first_rule = true;
        for (rule, paths) in &self.counts {
            if paths.is_empty() {
                continue;
            }
            if !first_rule {
                s.push(',');
            }
            first_rule = false;
            s.push_str("\n    ");
            push_json_string(&mut s, rule);
            s.push_str(": {");
            let mut first_path = true;
            for (path, count) in paths {
                if !first_path {
                    s.push(',');
                }
                first_path = false;
                s.push_str("\n      ");
                push_json_string(&mut s, path);
                s.push_str(&format!(": {count}"));
            }
            s.push_str("\n    }");
        }
        if first_rule {
            s.push_str("}\n}\n");
        } else {
            s.push_str("\n  }\n}\n");
        }
        s
    }

    /// Parses the format written by [`Baseline::to_json`] (tolerant of
    /// whitespace differences; strict about structure).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err("lint-baseline.json: trailing content after document".to_string());
        }
        let Json::Object(top) = value else {
            return Err("lint-baseline.json: top level must be an object".to_string());
        };
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for (key, val) in top {
            match (key.as_str(), val) {
                ("version", Json::Number(1)) => {}
                ("version", Json::Number(v)) => {
                    return Err(format!("lint-baseline.json: unsupported version {v}"));
                }
                ("warn", Json::Object(rules)) => {
                    for (rule, paths) in rules {
                        let Json::Object(paths) = paths else {
                            return Err(format!(
                                "lint-baseline.json: rule `{rule}` must map paths to counts"
                            ));
                        };
                        let mut per_path = BTreeMap::new();
                        for (path, count) in paths {
                            let Json::Number(n) = count else {
                                return Err(format!(
                                    "lint-baseline.json: `{rule}` / `{path}` must be an integer"
                                ));
                            };
                            per_path.insert(path, n);
                        }
                        counts.insert(rule, per_path);
                    }
                }
                (other, _) => {
                    return Err(format!("lint-baseline.json: unknown key `{other}`"));
                }
            }
        }
        Ok(Baseline { counts })
    }
}

/// Appends `value` as a JSON string literal (quotes, backslashes, and
/// control characters escaped).
pub fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

enum Json {
    Object(Vec<(String, Json)>),
    Number(usize),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "lint-baseline.json: expected `{}` at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b) if b.is_ascii_digit() => self.number(),
            _ => Err(format!(
                "lint-baseline.json: expected an object or integer at byte {}",
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            let key = self.string()?;
            self.expect_byte(b':')?;
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => {
                    return Err(format!(
                        "lint-baseline.json: expected `,` or `}}` at byte {}",
                        self.pos
                    ));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("lint-baseline.json: unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        _ => {
                            return Err(
                                "lint-baseline.json: unsupported escape in string".to_string()
                            );
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Copy the full UTF-8 character, not just one byte.
                    if b < 0x80 {
                        out.push(b as char);
                        self.pos += 1;
                    } else {
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| "lint-baseline.json: invalid UTF-8".to_string())?;
                        let Some(c) = s.chars().next() else {
                            return Err("lint-baseline.json: unterminated string".to_string());
                        };
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "lint-baseline.json: invalid number".to_string())?;
        text.parse()
            .map(Json::Number)
            .map_err(|e| format!("lint-baseline.json: bad integer `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warn(rule: &'static str, path: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line: 1,
            col: 1,
            len: 1,
            rule,
            severity: Severity::Warn,
            message: "m".to_string(),
            snippet: String::new(),
        }
    }

    #[test]
    fn round_trips_byte_stably() {
        let diags = vec![
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("raw-duration", "crates/b/src/lib.rs"),
        ];
        let base = Baseline::from_diagnostics(&diags);
        let json = base.to_json();
        let reparsed = Baseline::parse(&json).unwrap();
        assert_eq!(base, reparsed);
        assert_eq!(json, reparsed.to_json(), "serialization is a fixed point");
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn empty_baseline_serializes_and_parses() {
        let base = Baseline::empty();
        let json = base.to_json();
        assert_eq!(Baseline::parse(&json).unwrap(), base);
    }

    #[test]
    fn growth_fails_and_shrink_notes() {
        let committed = Baseline::from_diagnostics(&[
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("raw-duration", "crates/b/src/lib.rs"),
        ]);
        // One more lossy-cast in a; the raw-duration in b was fixed.
        let now = vec![
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("lossy-cast", "crates/a/src/lib.rs"),
            warn("lossy-cast", "crates/a/src/lib.rs"),
        ];
        let result = committed.ratchet(&now);
        assert_eq!(result.growth.len(), 1);
        assert_eq!(result.growth[0].rule, "lossy-cast");
        assert_eq!(
            (result.growth[0].baseline, result.growth[0].current),
            (2, 3)
        );
        assert_eq!(result.shrunk.len(), 1);
        assert_eq!(result.shrunk[0].rule, "raw-duration");
    }

    #[test]
    fn new_file_counts_as_growth_from_zero() {
        let committed = Baseline::empty();
        let result = committed.ratchet(&[warn("lossy-cast", "crates/new/src/lib.rs")]);
        assert_eq!(result.growth.len(), 1);
        assert_eq!(result.growth[0].baseline, 0);
    }

    #[test]
    fn deny_findings_never_enter_the_baseline() {
        let mut d = warn("panic", "crates/a/src/lib.rs");
        d.severity = Severity::Deny;
        assert!(Baseline::from_diagnostics(&[d]).counts.is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"warn\": {}}").is_err());
        assert!(Baseline::parse("{\"warn\": {\"r\": 3}}").is_err());
        assert!(Baseline::parse("{\"mystery\": {}}").is_err());
        assert!(Baseline::parse("{\"version\": 1} trailing").is_err());
    }
}
