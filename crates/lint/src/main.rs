//! CLI entry point: `cargo run -p l2s-lint [workspace-root]`.
//!
//! Exit status: 0 when the tree is clean, 1 when violations are found,
//! 2 on I/O or allowlist-format errors.

use l2s_lint::{lint_workspace, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let allow_path = root.join("lint-allow.txt");
    let mut allow = if allow_path.is_file() {
        let text = match std::fs::read_to_string(&allow_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(allow) => allow,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let diags = match lint_workspace(&root, &mut allow) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        println!("{d}");
    }
    for stale in allow.unused() {
        eprintln!(
            "warning: unused allowlist entry `{} {}` ({}) — delete it",
            stale.rule, stale.path, stale.justification
        );
    }

    if diags.is_empty() {
        eprintln!("l2s-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("l2s-lint: {} violation(s)", diags.len());
        ExitCode::from(1)
    }
}
