//! CLI entry point: `cargo run -p l2s-lint -- [workspace-root] [--format text|json] [--update-baseline]`.
//!
//! Exit status: 0 when the tree is clean at deny level and no warn cell
//! grew past `lint-baseline.json`, 1 when findings fail the run, 2 on
//! I/O or configuration errors (bad flags, malformed allowlist or
//! baseline, unreadable tree).

use l2s_lint::{run, Options};
use std::process::ExitCode;

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let code = run(&opts, &mut std::io::stdout(), &mut std::io::stderr());
    ExitCode::from(code)
}
