//! Diagnostic rendering: rustc-style text with caret spans, and a
//! byte-stable JSON report for CI artifacts.

use crate::baseline::{push_json_string, RatchetResult};
use crate::{Diagnostic, Severity};

/// Renders one diagnostic in the familiar compiler shape:
///
/// ```text
/// deny[panic]: `.unwrap()` aborts on failure; …
///   --> crates/net/src/lib.rs:5:40
///    |
///  5 | pub fn f(v: Option<u32>) -> u32 { v.unwrap() }
///    |                                     ^^^^^^
/// ```
pub fn render_text(d: &Diagnostic) -> String {
    let level = match d.severity {
        Severity::Deny => "deny",
        Severity::Warn => "warn",
    };
    let line_no = d.line.to_string();
    let gutter = " ".repeat(line_no.len());
    let caret_pad = " ".repeat(d.col.saturating_sub(1));
    let carets = "^".repeat(d.len.max(1));
    format!(
        "{level}[{rule}]: {msg}\n\
         {gutter}--> {path}:{line}:{col}\n\
         {gutter} |\n\
         {line_no} | {snippet}\n\
         {gutter} | {caret_pad}{carets}\n",
        rule = d.rule,
        msg = d.message,
        path = d.path,
        line = d.line,
        col = d.col,
        snippet = d.snippet,
    )
}

/// Counts used by the one-line summary and the JSON report.
pub struct Summary {
    /// Crates discovered and scanned.
    pub crates_scanned: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Rules in the catalog.
    pub rules: usize,
    /// Deny-severity findings (each fails the run).
    pub deny: usize,
    /// Warn-severity findings (ratcheted against the baseline).
    pub warn: usize,
    /// Baseline cells that grew (each fails the run).
    pub growth: usize,
    /// Stale allowlist entries.
    pub allow_unused: usize,
}

impl Summary {
    /// The one-line scan summary printed at the end of every text run.
    pub fn render(&self) -> String {
        format!(
            "l2s-lint: scanned {} files across {} crates with {} rules: {} deny, {} warn ({} over baseline)",
            self.files_scanned, self.crates_scanned, self.rules, self.deny, self.warn, self.growth,
        )
    }
}

/// Renders the machine-readable report: every finding (deny and warn),
/// the baseline comparison, and the summary. Ordering is the sorted
/// diagnostic order and all values are integers or strings, so the same
/// tree always yields the same bytes.
pub fn render_json(diags: &[Diagnostic], ratchet: &RatchetResult, summary: &Summary) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"path\": ");
        push_json_string(&mut s, &d.path);
        s.push_str(&format!(", \"line\": {}, \"column\": {}, ", d.line, d.col));
        s.push_str("\"rule\": ");
        push_json_string(&mut s, d.rule);
        s.push_str(", \"severity\": ");
        push_json_string(
            &mut s,
            match d.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            },
        );
        s.push_str(", \"message\": ");
        push_json_string(&mut s, &d.message);
        s.push('}');
    }
    if diags.is_empty() {
        s.push_str("],\n");
    } else {
        s.push_str("\n  ],\n");
    }
    s.push_str("  \"baseline_growth\": [");
    for (i, g) in ratchet.growth.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {\"rule\": ");
        push_json_string(&mut s, &g.rule);
        s.push_str(", \"path\": ");
        push_json_string(&mut s, &g.path);
        s.push_str(&format!(
            ", \"baseline\": {}, \"current\": {}}}",
            g.baseline, g.current
        ));
    }
    if ratchet.growth.is_empty() {
        s.push_str("],\n");
    } else {
        s.push_str("\n  ],\n");
    }
    s.push_str(&format!(
        "  \"summary\": {{\"crates\": {}, \"files\": {}, \"rules\": {}, \"deny\": {}, \"warn\": {}, \"baseline_growth\": {}, \"allowlist_unused\": {}}}\n}}\n",
        summary.crates_scanned,
        summary.files_scanned,
        summary.rules,
        summary.deny,
        summary.warn,
        summary.growth,
        summary.allow_unused,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::RatchetResult;

    fn diag() -> Diagnostic {
        Diagnostic {
            path: "crates/x/src/lib.rs".to_string(),
            line: 5,
            col: 37,
            len: 6,
            rule: "panic",
            severity: Severity::Deny,
            message: "`.unwrap()` aborts".to_string(),
            snippet: "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }".to_string(),
        }
    }

    #[test]
    fn text_rendering_points_carets_at_the_span() {
        let text = render_text(&diag());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "deny[panic]: `.unwrap()` aborts");
        assert_eq!(lines[1], " --> crates/x/src/lib.rs:5:37");
        assert_eq!(
            lines[3],
            "5 | pub fn f(v: Option<u32>) -> u32 { v.unwrap() }"
        );
        // Column 37 in the snippet is the `u` of unwrap; the caret line
        // shares the snippet line's `| ` gutter so carets align.
        assert_eq!(lines[4], format!("  | {}{}", " ".repeat(36), "^".repeat(6)));
    }

    #[test]
    fn json_is_identical_across_renders() {
        let diags = vec![diag()];
        let ratchet = RatchetResult::default();
        let summary = Summary {
            crates_scanned: 1,
            files_scanned: 2,
            rules: 9,
            deny: 1,
            warn: 0,
            growth: 0,
            allow_unused: 0,
        };
        let a = render_json(&diags, &ratchet, &summary);
        let b = render_json(&diags, &ratchet, &summary);
        assert_eq!(a, b);
        assert!(a.contains("\"severity\": \"deny\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes_in_messages() {
        let mut d = diag();
        d.message = "path \"C:\\tmp\"".to_string();
        let json = render_json(
            &[d],
            &RatchetResult::default(),
            &Summary {
                crates_scanned: 0,
                files_scanned: 0,
                rules: 0,
                deny: 1,
                warn: 0,
                growth: 0,
                allow_unused: 0,
            },
        );
        assert!(json.contains(r#""message": "path \"C:\\tmp\"""#));
    }
}
