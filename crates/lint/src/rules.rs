//! Token-level rule implementations.
//!
//! Every rule here matches on the token stream produced by [`crate::lexer`],
//! never on raw text, so needles inside string literals, char literals, and
//! comments can never produce findings, and identifier matches are exact
//! (`assert_stable` is one token and can never trip the `assert` rule).
//!
//! Shared machinery computed once per file:
//!
//! - the *significant* token stream (comments dropped) with line:column
//!   positions preserved;
//! - `#[cfg(test)]` item regions, tracked by attribute parsing plus brace
//!   matching — only the gated item is exempt, not the rest of the file;
//! - `impl CostCache` body regions (the sanctioned home of second-to-nanos
//!   conversions for the `raw-duration` rule);
//! - the set of identifiers bound to hash-container types in this file,
//!   feeding the chain-aware `hash-iter` checks.

use crate::lexer::{lex, Token, TokenKind};
use crate::{Diagnostic, Severity};
use std::collections::BTreeSet;

/// Per-file scan context: where the file sits in the workspace and which
/// rule scopes therefore apply.
pub struct FileContext<'a> {
    /// Repository-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// Whether the owning crate is on the determinism list.
    pub deterministic: bool,
    /// Whether the file is a binary target root (`src/main.rs`, `src/bin/**`).
    pub is_binary: bool,
}

/// Identifier adapters whose invocation on a hash-container receiver leaks
/// nondeterministic iteration order.
const HASH_ITER_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
    "retain",
    "extract_if",
];

/// Primitive numeric type names: the targets of `as` casts the
/// `lossy-cast` rule polices.
const NUMERIC_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];
const RAW_DURATION_FNS: &[&str] = &["from_secs_f64", "secs_to_nanos"];

/// Scans one file's source, returning raw (pre-allowlist) diagnostics.
/// Returns an error only when the file cannot be lexed (unterminated
/// string or block comment), which `rustc` would reject too.
pub fn scan_file(ctx: &FileContext<'_>, src: &str) -> Result<Vec<Diagnostic>, String> {
    let tokens =
        lex(src).map_err(|e| format!("{}:{e} (file cannot be tokenized)", ctx.rel_path))?;
    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect();
    let in_test = test_regions(&sig, src);
    let in_cost_cache = impl_regions(&sig, src, "CostCache");
    let hash_bound = hash_bound_idents(&sig, src, &in_test);

    let mut out = Vec::new();
    let mut emit = |tok: &Token, rule: &'static str, severity: Severity, message: String| {
        out.push(diagnostic(ctx.rel_path, src, tok, rule, severity, message));
    };

    for (i, tok) in sig.iter().enumerate() {
        if in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(src);

        // hash-iter, part 1: hash container types are banned outright in
        // determinism crates — even keyed-only uses need an allowlist entry.
        if ctx.deterministic && HASH_TYPES.contains(&text) {
            emit(
                tok,
                "hash-iter",
                Severity::Deny,
                format!("`{text}` iterates in randomized order; use the BTree equivalent (allowlist keyed-only uses)"),
            );
        }

        // hash-iter, part 2 (chain-aware, whole workspace): iteration
        // adapters reached through a receiver chain that roots in a
        // hash-bound identifier, e.g. `self.cache.keys()`.
        if HASH_ITER_ADAPTERS.contains(&text)
            && prev_is(&sig, src, i, ".")
            && next_is(&sig, src, i, "(")
            && chain_mentions_hash(&sig, src, i, &hash_bound)
        {
            emit(
                tok,
                "hash-iter",
                Severity::Deny,
                format!("`.{text}()` on a hash-container receiver leaks randomized iteration order; use an ordered container or collect-and-sort first"),
            );
        }

        // hash-iter, part 3: `for … in <expr>` where the iterated
        // expression mentions a hash-bound identifier.
        if text == "for" {
            if let Some(hit) = for_loop_hash_receiver(&sig, src, i, &hash_bound) {
                emit(
                    &sig[hit],
                    "hash-iter",
                    Severity::Deny,
                    format!("`for` loop over hash-bound `{}` iterates in randomized order; use an ordered container", sig[hit].text(src)),
                );
            }
        }

        if ctx.deterministic && WALL_CLOCK_TYPES.contains(&text) {
            emit(
                tok,
                "wall-clock",
                Severity::Deny,
                format!(
                    "`{text}` reads the wall clock; simulation time comes from the event queue"
                ),
            );
        }

        if ENTROPY_IDENTS.contains(&text)
            || (text == "random"
                && prev_is(&sig, src, i, ":")
                && ident_at(&sig, src, i, 3) == Some("rand"))
        {
            emit(
                tok,
                "entropy",
                Severity::Deny,
                format!("`{text}` draws from process entropy and breaks replay; seed a DetRng explicitly"),
            );
        }

        if !ctx.is_binary {
            if (text == "unwrap" || text == "expect")
                && (prev_is(&sig, src, i, ".") || prev_is(&sig, src, i, ":"))
                && next_is(&sig, src, i, "(")
            {
                emit(
                    tok,
                    "panic",
                    Severity::Deny,
                    format!("`.{text}()` aborts on failure; library code returns a Result or uses invariant!"),
                );
            }
            if PANIC_MACROS.contains(&text) && next_is(&sig, src, i, "!") {
                emit(
                    tok,
                    "panic",
                    Severity::Deny,
                    format!("`{text}!` aborts; library code returns a Result or uses invariant!"),
                );
            }
            if ASSERT_MACROS.contains(&text) && next_is(&sig, src, i, "!") {
                emit(
                    tok,
                    "assert",
                    Severity::Deny,
                    format!("bare `{text}!` aborts release figure runs; return a Result or use invariant! (debug_assert! is fine)"),
                );
            }
            if text == "partial_cmp" {
                emit(
                    tok,
                    "float-order",
                    Severity::Deny,
                    "`partial_cmp` is not a total order (NaN breaks replayable sorts); use `total_cmp` or an integer key".to_string(),
                );
            }
            if text == "as" {
                if let Some(ty) = next_numeric_type(&sig, src, i) {
                    emit(
                        &sig[i + 1],
                        "lossy-cast",
                        Severity::Warn,
                        format!("`as {ty}` can truncate or lose precision silently; use From/TryFrom or the checked helpers in l2s_util::cast"),
                    );
                }
            }
            if RAW_DURATION_FNS.contains(&text)
                && !prev_is_ident(&sig, src, i, "fn")
                && !in_cost_cache[i]
            {
                emit(
                    tok,
                    "raw-duration",
                    Severity::Warn,
                    format!("`{text}` converts float seconds per call; route conversions through CostCache (or hoist to setup) so the hot path stays in integer nanoseconds"),
                );
            }
        }
    }
    Ok(out)
}

/// Checks a crate's `lib.rs` for the mandatory header attributes:
/// `#![forbid(unsafe_code)]` (or `deny`) and `#![warn(missing_docs)]`
/// (or `deny`), matched on tokens so commented-out attributes don't count.
pub fn check_crate_header(
    rel_path: &str,
    crate_name: &str,
    src: &str,
) -> Result<Vec<Diagnostic>, String> {
    let tokens = lex(src).map_err(|e| format!("{rel_path}:{e} (file cannot be tokenized)"))?;
    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .copied()
        .collect();

    let mut has_unsafe_forbid = false;
    let mut has_docs_warn = false;
    let mut i = 0;
    while i + 2 < sig.len() {
        // Inner attribute: `#` `!` `[` … `]`.
        if sig[i].text(src) == "#" && sig[i + 1].text(src) == "!" && sig[i + 2].text(src) == "[" {
            let close = match matching(&sig, src, i + 2, "[", "]") {
                Some(c) => c,
                None => break,
            };
            let idents: Vec<&str> = sig[i + 3..close]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(src))
                .collect();
            let strict = idents.contains(&"forbid") || idents.contains(&"deny");
            if strict && idents.contains(&"unsafe_code") {
                has_unsafe_forbid = true;
            }
            if (idents.contains(&"warn") || strict) && idents.contains(&"missing_docs") {
                has_docs_warn = true;
            }
            i = close + 1;
        } else {
            i += 1;
        }
    }

    let first_line = src.lines().next().unwrap_or("").to_string();
    let mut out = Vec::new();
    for (ok, attr) in [
        (has_unsafe_forbid, "#![forbid(unsafe_code)]"),
        (has_docs_warn, "#![warn(missing_docs)]"),
    ] {
        if !ok {
            out.push(Diagnostic {
                path: rel_path.to_string(),
                line: 1,
                col: 1,
                len: 1,
                rule: "crate-header",
                severity: Severity::Deny,
                message: format!("crate `{crate_name}` is missing the `{attr}` attribute"),
                snippet: first_line.clone(),
            });
        }
    }
    Ok(out)
}

fn diagnostic(
    rel_path: &str,
    src: &str,
    tok: &Token,
    rule: &'static str,
    severity: Severity,
    message: String,
) -> Diagnostic {
    let snippet = src
        .lines()
        .nth(tok.line - 1)
        .unwrap_or("")
        .trim_end()
        .to_string();
    Diagnostic {
        path: rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        len: tok.text(src).chars().count().max(1),
        rule,
        severity,
        message,
        snippet,
    }
}

/// True when the significant token before `i` has exactly text `p`.
fn prev_is(sig: &[Token], src: &str, i: usize, p: &str) -> bool {
    i > 0 && sig[i - 1].text(src) == p
}

/// True when the significant token after `i` has exactly text `p`.
fn next_is(sig: &[Token], src: &str, i: usize, p: &str) -> bool {
    sig.get(i + 1).is_some_and(|t| t.text(src) == p)
}

/// The ident text `back` significant tokens before `i`, if it is an ident.
fn ident_at<'a>(sig: &[Token], src: &'a str, i: usize, back: usize) -> Option<&'a str> {
    let j = i.checked_sub(back)?;
    (sig[j].kind == TokenKind::Ident).then(|| sig[j].text(src))
}

/// True when the significant token before `i` is the ident `word`.
fn prev_is_ident(sig: &[Token], src: &str, i: usize, word: &str) -> bool {
    i > 0 && sig[i - 1].kind == TokenKind::Ident && sig[i - 1].text(src) == word
}

/// If the token after the `as` at `i` is a primitive numeric type name,
/// returns it.
fn next_numeric_type<'a>(sig: &[Token], src: &'a str, i: usize) -> Option<&'a str> {
    let next = sig.get(i + 1)?;
    if next.kind != TokenKind::Ident {
        return None;
    }
    let ty = next.text(src);
    NUMERIC_TYPES.contains(&ty).then_some(ty)
}

/// Index of the token matching `open` (at position `at`) with `close`,
/// honouring nesting.
fn matching(sig: &[Token], src: &str, at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in sig.iter().enumerate().skip(at) {
        let s = t.text(src);
        if s == open {
            depth += 1;
        } else if s == close {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Marks significant tokens inside `#[cfg(test)]`-gated items (attribute
/// through the end of the item: the matching `}` of its body, or the `;`
/// of a bodiless item). Attributes stacked between the gate and the item
/// are included. This is precise where the old line scanner was not: code
/// *after* a test module is scanned again.
fn test_regions(sig: &[Token], src: &str) -> Vec<bool> {
    let mut flags = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if !(sig[i].text(src) == "#" && i + 1 < sig.len() && sig[i + 1].text(src) == "[") {
            i += 1;
            continue;
        }
        let Some(close) = matching(sig, src, i + 1, "[", "]") else {
            break;
        };
        let idents: Vec<&str> = sig[i + 2..close]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        let gates_test =
            idents.contains(&"cfg") && idents.contains(&"test") || idents.first() == Some(&"test");
        if !gates_test {
            i = close + 1;
            continue;
        }
        // Skip any further attributes, then consume the gated item.
        let mut j = close + 1;
        while j + 1 < sig.len() && sig[j].text(src) == "#" && sig[j + 1].text(src) == "[" {
            match matching(sig, src, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        let mut end = sig.len().saturating_sub(1);
        let mut depth = 0usize;
        for (k, t) in sig.iter().enumerate().skip(j) {
            match t.text(src) {
                ";" if depth == 0 => {
                    end = k;
                    break;
                }
                "{" => {
                    if depth == 0 {
                        if let Some(c) = matching(sig, src, k, "{", "}") {
                            end = c;
                        }
                        break;
                    }
                }
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        for f in flags.iter_mut().take(end + 1).skip(i) {
            *f = true;
        }
        i = end + 1;
    }
    flags
}

/// Marks significant tokens inside `impl … <name> … { }` bodies — used to
/// exempt `CostCache`'s own conversions from the `raw-duration` rule.
fn impl_regions(sig: &[Token], src: &str, name: &str) -> Vec<bool> {
    let mut flags = vec![false; sig.len()];
    let mut i = 0;
    while i < sig.len() {
        if !(sig[i].kind == TokenKind::Ident && sig[i].text(src) == "impl") {
            i += 1;
            continue;
        }
        // Scan the impl header up to its `{`, checking for the type name.
        let mut names_target = false;
        let mut body = None;
        for (k, t) in sig.iter().enumerate().skip(i + 1) {
            let s = t.text(src);
            if t.kind == TokenKind::Ident && s == name {
                names_target = true;
            }
            if s == "{" {
                body = Some(k);
                break;
            }
            if s == ";" {
                break;
            }
        }
        let Some(open) = body else {
            i += 1;
            continue;
        };
        let close = matching(sig, src, open, "{", "}").unwrap_or(sig.len() - 1);
        if names_target {
            for f in flags.iter_mut().take(close + 1).skip(open) {
                *f = true;
            }
        }
        i = open + 1; // nested impls are rare; rescan inside the body
    }
    flags
}

/// Collects identifiers bound to hash-container types in this file:
/// type-ascribed bindings and fields (`name: HashMap<…>`) and
/// initializer bindings (`let name = HashMap::new()`).
fn hash_bound_idents(sig: &[Token], src: &str, in_test: &[bool]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    for i in 0..sig.len() {
        if in_test[i] || sig[i].kind != TokenKind::Ident {
            continue;
        }
        let name = sig[i].text(src);
        // `name : … HashMap …` up to a type-position terminator.
        if next_is_text(sig, src, i, ":") && !next_is_text(sig, src, i + 1, ":") {
            let mut angle = 0i64;
            for (k, t) in sig.iter().enumerate().skip(i + 2) {
                let s = t.text(src);
                match s {
                    "<" => angle += 1,
                    ">" => {
                        if angle == 0 {
                            break;
                        }
                        angle -= 1;
                    }
                    "=" | ";" | "{" | ")" | "}" => break,
                    "," if angle == 0 => break,
                    _ => {}
                }
                if t.kind == TokenKind::Ident && HASH_TYPES.contains(&s) {
                    bound.insert(name.to_string());
                    break;
                }
                if k > i + 40 {
                    break; // types longer than this are not what we're after
                }
            }
        }
        // `let [mut] name = … HashMap … ;`
        if name == "let" {
            let mut j = i + 1;
            if ident_text(sig, src, j) == Some("mut") {
                j += 1;
            }
            let Some(binding) = ident_text(sig, src, j) else {
                continue;
            };
            if !next_is_text(sig, src, j, "=") {
                continue;
            }
            for t in sig.iter().skip(j + 2) {
                let s = t.text(src);
                if s == ";" {
                    break;
                }
                if t.kind == TokenKind::Ident && HASH_TYPES.contains(&s) {
                    bound.insert(binding.to_string());
                    break;
                }
            }
        }
    }
    bound
}

fn next_is_text(sig: &[Token], src: &str, i: usize, p: &str) -> bool {
    sig.get(i + 1).is_some_and(|t| t.text(src) == p)
}

fn ident_text<'a>(sig: &[Token], src: &'a str, i: usize) -> Option<&'a str> {
    sig.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
}

/// True when the receiver chain ending at the `.` before the adapter at
/// `i` mentions a hash-bound identifier or a hash type — walking back
/// through `.`-separated segments, call parentheses, index brackets, and
/// `?`, so `self.state.cache.keys()` and `HashMap::new().iter()` both
/// resolve.
fn chain_mentions_hash(sig: &[Token], src: &str, i: usize, bound: &BTreeSet<String>) -> bool {
    let mut j = i - 1; // the `.` token
    loop {
        if j == 0 {
            return false;
        }
        j -= 1; // token ending the preceding segment
        let s = sig[j].text(src);
        match s {
            ")" | "]" => {
                // Skip the bracketed group backwards; hash mentions inside
                // call or index *arguments* are not the receiver chain.
                let (close, open) = if s == ")" { (")", "(") } else { ("]", "[") };
                let mut depth = 0i64;
                loop {
                    let t = sig[j].text(src);
                    if t == close {
                        depth += 1;
                    } else if t == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
                // After the group, a call has its callee ident just before.
                continue;
            }
            "?" => continue,
            _ => {}
        }
        if sig[j].kind == TokenKind::Ident {
            let name = sig[j].text(src);
            if bound.contains(name) || HASH_TYPES.contains(&name) {
                return true;
            }
            // Continue the chain only through `.` or `::`.
            if j == 0 {
                return false;
            }
            if sig[j - 1].text(src) == "." {
                j -= 1; // sit on the separator; loop steps past it
                continue;
            }
            if j >= 2 && sig[j - 1].text(src) == ":" && sig[j - 2].text(src) == ":" {
                j -= 2; // sit on the path separator's first colon
                continue;
            }
            return false;
        }
        return false;
    }
}

/// For a `for` keyword at `i`, scans the `in <expr> {` head; returns the
/// index of a hash-bound identifier (or hash type name) iterated over.
fn for_loop_hash_receiver(
    sig: &[Token],
    src: &str,
    i: usize,
    bound: &BTreeSet<String>,
) -> Option<usize> {
    // Find the `in` keyword of this `for` (patterns contain no braces).
    let mut k = i + 1;
    let mut in_at = None;
    while k < sig.len() && k < i + 24 {
        let s = sig[k].text(src);
        if sig[k].kind == TokenKind::Ident && s == "in" {
            in_at = Some(k);
            break;
        }
        if s == "{" || s == ";" {
            return None; // not a for-loop header (e.g. `for` in a type)
        }
        k += 1;
    }
    let start = in_at? + 1;
    let mut depth = 0i64;
    for (j, t) in sig.iter().enumerate().skip(start) {
        let s = t.text(src);
        match s {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return None,
            ";" => return None,
            _ => {}
        }
        if t.kind == TokenKind::Ident && (bound.contains(s) || HASH_TYPES.contains(&s)) {
            return Some(j);
        }
        if j > start + 48 {
            return None;
        }
    }
    None
}
