//! A minimal, dependency-free Rust lexer for the lint's token-level rules.
//!
//! The lexer classifies every byte of a source file into one of eight token
//! kinds — identifiers (keywords included), numbers, string-likes, char
//! literals, lifetimes, line comments, block comments, and punctuation —
//! with 1-based line:column positions. It is *total* over well-formed
//! source: the only errors are unterminated string literals and block
//! comments, which `rustc` would reject anyway. Anything it does not
//! recognise (stray non-ASCII punctuation, for instance) is emitted as a
//! one-character `Punct` token rather than an error, so the lint never
//! refuses to scan a file it merely finds odd.
//!
//! Correctness the rules rely on:
//!
//! - comment and string *contents* are single opaque tokens, so a needle
//!   like a panicking-macro name inside a doc comment or a format string
//!   can never match an identifier rule;
//! - identifiers are complete maximal tokens, so `assert_stable` is one
//!   ident and is never confused with `assert`;
//! - raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`, `br#"…"#`),
//!   C strings (`c"…"`), nested block comments, and escapes inside char
//!   and string literals are all handled, so the token stream does not
//!   desynchronise mid-file.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#type`).
    Ident,
    /// A numeric literal, including suffixes (`1_000u64`, `1.5e-9`).
    Number,
    /// A string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A `//` comment through end of line (doc comments included).
    LineComment,
    /// A `/* … */` comment, nesting handled (doc comments included).
    BlockComment,
    /// Any other single character: operators, brackets, `;`, `#`, ….
    Punct,
}

/// One lexed token: classification plus location and byte span.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in characters) of the token's first character.
    pub col: usize,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// An unterminated string or block comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line where the unterminated token starts.
    pub line: usize,
    /// 1-based column where the unterminated token starts.
    pub col: usize,
    /// What was left open.
    pub what: &'static str,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: unterminated {}", self.line, self.col, self.what)
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one *character*, keeping line:col in sync. Multi-byte
    /// UTF-8 sequences advance the column by one.
    fn bump(&mut self) {
        let Some(b) = self.peek(0) else { return };
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
        } else {
            let ch_len = self.src[self.pos..]
                .chars()
                .next()
                .map_or(1, |c| c.len_utf8());
            self.col += 1;
            self.pos += ch_len;
        }
    }

    /// Advances while `pred` holds on the current byte.
    fn bump_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into a token vector. Whitespace is skipped; every other
/// character lands in exactly one token. Fails only on unterminated
/// strings and block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let kind = match b {
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump_while(|b| b != b'\n');
                TokenKind::LineComment
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                lex_block_comment(&mut cur, line, col)?;
                TokenKind::BlockComment
            }
            b'r' if starts_raw_string(cur.src, cur.pos, 1) => {
                lex_raw_string(&mut cur, line, col, 1)?;
                TokenKind::Str
            }
            b'b' if cur.peek(1) == Some(b'r') && starts_raw_string(cur.src, cur.pos, 2) => {
                lex_raw_string(&mut cur, line, col, 2)?;
                TokenKind::Str
            }
            b'b' | b'c' if cur.peek(1) == Some(b'"') => {
                cur.bump();
                lex_quoted(&mut cur, b'"', line, col, "string literal")?;
                TokenKind::Str
            }
            b'b' if cur.peek(1) == Some(b'\'') => {
                cur.bump();
                lex_quoted(&mut cur, b'\'', line, col, "byte literal")?;
                TokenKind::Char
            }
            b'r' if cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#type`.
                cur.bump();
                cur.bump();
                cur.bump_while(is_ident_continue);
                TokenKind::Ident
            }
            _ if is_ident_start(b) => {
                cur.bump_while(is_ident_continue);
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                TokenKind::Number
            }
            b'"' => {
                lex_quoted(&mut cur, b'"', line, col, "string literal")?;
                TokenKind::Str
            }
            b'\'' => lex_quote(&mut cur, line, col)?,
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            line,
            col,
            start,
            end: cur.pos,
        });
    }
    Ok(out)
}

/// After a leading `'`: a char literal if it closes, else a lifetime.
fn lex_quote(cur: &mut Cursor<'_>, line: usize, col: usize) -> Result<TokenKind, LexError> {
    // `'\...'` is always a char literal; `'x'` is one when the third
    // character closes it; otherwise `'ident` is a lifetime (a loop
    // label or generic parameter — no closing quote).
    if cur.peek(1) == Some(b'\\') {
        lex_quoted(cur, b'\'', line, col, "char literal")?;
        return Ok(TokenKind::Char);
    }
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some(b'\'') {
        cur.bump();
        cur.bump_while(is_ident_continue);
        return Ok(TokenKind::Lifetime);
    }
    lex_quoted(cur, b'\'', line, col, "char literal")?;
    Ok(TokenKind::Char)
}

/// Consumes a `close`-delimited literal with backslash escapes; the cursor
/// sits on the opening delimiter.
fn lex_quoted(
    cur: &mut Cursor<'_>,
    close: u8,
    line: usize,
    col: usize,
    what: &'static str,
) -> Result<(), LexError> {
    cur.bump();
    loop {
        match cur.peek(0) {
            None => return Err(LexError { line, col, what }),
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b) if b == close => {
                cur.bump();
                return Ok(());
            }
            Some(_) => cur.bump(),
        }
    }
}

/// True when `src[pos..]` begins a raw string after `prefix_len` marker
/// bytes (`r` or `br`): any number of `#` then `"`.
fn starts_raw_string(src: &str, pos: usize, prefix_len: usize) -> bool {
    let rest = src.as_bytes().get(pos + prefix_len..).unwrap_or(&[]);
    let hashes = rest.iter().take_while(|&&b| b == b'#').count();
    rest.get(hashes) == Some(&b'"')
}

/// Consumes `r#"…"#`-style raw strings (the cursor sits on `r` or `b`).
fn lex_raw_string(
    cur: &mut Cursor<'_>,
    line: usize,
    col: usize,
    prefix_len: usize,
) -> Result<(), LexError> {
    for _ in 0..prefix_len {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.peek(0) {
            None => {
                return Err(LexError {
                    line,
                    col,
                    what: "raw string literal",
                })
            }
            Some(b'"') => {
                cur.bump();
                let mut seen = 0usize;
                while seen < hashes && cur.peek(0) == Some(b'#') {
                    seen += 1;
                    cur.bump();
                }
                if seen == hashes {
                    return Ok(());
                }
            }
            Some(_) => cur.bump(),
        }
    }
}

/// Consumes a `/* … */` comment with nesting (the cursor sits on `/`).
fn lex_block_comment(cur: &mut Cursor<'_>, line: usize, col: usize) -> Result<(), LexError> {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (None, _) => {
                return Err(LexError {
                    line,
                    col,
                    what: "block comment",
                })
            }
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            _ => cur.bump(),
        }
    }
    Ok(())
}

/// Consumes a numeric literal: digits, `_` separators, radix prefixes,
/// type suffixes, exponents, and a fractional part when the `.` is
/// followed by a digit (so `0..10` and `1.max(2)` lex as number-punct).
fn lex_number(cur: &mut Cursor<'_>) {
    cur.bump();
    loop {
        match cur.peek(0) {
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                // `1e-9` / `1E+9`: the sign belongs to the exponent.
                let exp = b == b'e' || b == b'E';
                cur.bump();
                if exp && matches!(cur.peek(0), Some(b'+') | Some(b'-')) {
                    cur.bump();
                }
            }
            Some(b'.') if cur.peek(1).is_some_and(|c| c.is_ascii_digit()) => cur.bump(),
            _ => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_are_maximal_tokens() {
        assert_eq!(
            idents("assert_stable(x); assert!(y)"),
            vec!["assert_stable", "x", "assert", "y"]
        );
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = "let s = \".unwrap() HashMap\"; // HashMap .unwrap()\n/* assert!(x) */ done";
        assert_eq!(idents(src), vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r###"let a = r#"quote " inside"#; let b = br"x"; let c = b"y"; let d = r"z";"###;
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "b", "let", "c", "let", "d"]
        );
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 4);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let a: &'static str = f::<'b>('c', '\\n', b'd');";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'b"]);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = "let q = '\\''; let bs = '\\\\'; next";
        assert_eq!(idents(src), vec!["let", "q", "let", "bs", "next"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn numbers_with_suffixes_exponents_and_ranges() {
        let toks = kinds("1_000u64 + 1.5e-9 + 0xFF; for i in 0..10 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "1.5e-9", "0xFF", "0", "10"]);
    }

    #[test]
    fn positions_are_one_based_line_col() {
        let src = "fn f() {\n    let x = 1;\n}\n";
        let toks = lex(src).unwrap();
        let x = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text(src) == "x")
            .unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn multibyte_text_in_comments_and_strings() {
        let src = "// ‘fancy’ comment with é\nlet s = \"héllo—world\"; fin";
        assert_eq!(idents(src), vec!["let", "s", "fin"]);
        let toks = lex(src).unwrap();
        let fin = toks.last().unwrap();
        assert_eq!(fin.line, 2);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "r#type"]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = lex("let s = \"oops").unwrap_err();
        assert_eq!(err.what, "string literal");
        assert_eq!((err.line, err.col), (1, 9));
        assert!(lex("/* never closed").is_err());
        assert!(lex(r##"let s = r#"open"##).is_err());
    }

    #[test]
    fn every_non_whitespace_byte_is_covered() {
        let src = "fn main() { let v: Vec<u8> = b\"ab\".to_vec(); v[0] += 1; }";
        let toks = lex(src).unwrap();
        let mut covered = vec![false; src.len()];
        for t in &toks {
            for c in covered[t.start..t.end].iter_mut() {
                *c = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            assert_eq!(
                covered[i],
                !b.is_ascii_whitespace(),
                "byte {i} `{}`",
                b as char
            );
        }
    }
}
