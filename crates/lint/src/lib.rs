//! `l2s-lint` — the workspace's in-tree determinism and invariant lint.
//!
//! The simulator's headline guarantee is bit-for-bit reproducibility: the
//! same seed and configuration must produce the same figures on every
//! machine. That guarantee is easy to break silently — one iterated
//! `HashMap`, one wall-clock read, one entropy-seeded generator — so this
//! crate enforces the determinism rules statically, as a dependency-free
//! binary that CI (and `cargo run -p l2s-lint`) runs over the source tree.
//!
//! # Rules
//!
//! | id | scope | checks |
//! |----|-------|--------|
//! | `hash-iter` | determinism crates | no `HashMap`/`HashSet`: their iteration order is randomized per-process, which breaks replay; use `BTreeMap`/`BTreeSet` (keyed-only uses may be allowlisted) |
//! | `wall-clock` | determinism crates | no `std::time::Instant`/`SystemTime`: simulation time must come from the event queue |
//! | `entropy` | whole workspace | no `thread_rng`, `rand::random`, `from_entropy`, or `OsRng`: all randomness flows from explicit seeds |
//! | `panic` | library sources | no `.unwrap()`/`.expect()`/`panic!`-family calls in library code (binaries, tests, and allowlisted harness code exempt); use `Result` or `invariant!` for real preconditions |
//! | `assert` | library sources | no bare `assert!`/`assert_eq!`/`assert_ne!` in library code outside `#[cfg(test)]`: they abort release figure runs unconditionally; use `Result` for caller errors or `invariant!` so strictness is policy-controlled (`debug_assert!` is fine) |
//! | `lint-attrs` | every crate | each `lib.rs` carries `#![warn(missing_docs)]` and `#![forbid(unsafe_code)]` |
//!
//! Scanning is line-based and deliberately simple: comment lines are
//! skipped, and everything at or after a `#[cfg(test)]` marker in a file is
//! treated as test code. `src/bin/` directories and `src/main.rs` are
//! binary targets and exempt from the `panic` rule's scope (they are still
//! subject to the determinism rules when inside a determinism crate).
//!
//! # Allowlist
//!
//! Vetted exceptions live in `lint-allow.txt` at the repository root, one
//! per line: `<rule-id> <path> <justification>`. The justification is
//! mandatory; unused entries are reported so the file cannot rot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose sources feed simulation results and therefore must be
/// deterministic (hash-iteration and wall-clock rules apply).
pub const DETERMINISM_CRATES: &[&str] = &[
    "util", "devs", "net", "zipf", "trace", "cluster", "core", "model", "sim",
];

// The needles are assembled with `concat!` from split halves so that this
// file never contains the forbidden token itself — otherwise the lint
// would flag its own source when scanning the workspace.
const HASH_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("Hash", "Map"),
        "hash maps iterate in randomized order; use BTreeMap (allowlist keyed-only uses)",
    ),
    (
        concat!("Hash", "Set"),
        "hash sets iterate in randomized order; use BTreeSet (allowlist keyed-only uses)",
    ),
];

const WALL_CLOCK_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("Inst", "ant"),
        "wall-clock reads are nondeterministic; simulation time comes from the event queue",
    ),
    (
        concat!("System", "Time"),
        "wall-clock reads are nondeterministic; simulation time comes from the event queue",
    ),
];

const ENTROPY_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("thread_", "rng"),
        "entropy-seeded RNG breaks replay; seed a DetRng explicitly",
    ),
    (
        concat!("rand::rand", "om"),
        "entropy-seeded RNG breaks replay; seed a DetRng explicitly",
    ),
    (
        concat!("from_", "entropy"),
        "entropy-seeded RNG breaks replay; seed a DetRng explicitly",
    ),
    (
        concat!("Os", "Rng"),
        "entropy-seeded RNG breaks replay; seed a DetRng explicitly",
    ),
];

const PANIC_NEEDLES: &[(&str, &str)] = &[
    (
        concat!(".unw", "rap()"),
        "library code must not abort; return a Result or use invariant!",
    ),
    (
        concat!(".exp", "ect("),
        "library code must not abort; return a Result or use invariant!",
    ),
    (
        concat!("pan", "ic!("),
        "library code must not abort; return a Result or use invariant!",
    ),
    (
        concat!("unreach", "able!("),
        "library code must not abort; restructure so the branch is impossible by type",
    ),
    (
        concat!("to", "do!("),
        "unfinished code must not ship in library crates",
    ),
    (
        concat!("unimpl", "emented!("),
        "unfinished code must not ship in library crates",
    ),
];

// Matched with a word-boundary check on the preceding character so that
// `debug_assert!` (which is allowed — it already vanishes in release
// builds) does not trigger the rule.
const ASSERT_NEEDLES: &[(&str, &str)] = &[
    (
        concat!("ass", "ert!("),
        "bare asserts abort release figure runs; return a Result or use invariant!",
    ),
    (
        concat!("ass", "ert_eq!("),
        "bare asserts abort release figure runs; return a Result or use invariant!",
    ),
    (
        concat!("ass", "ert_ne!("),
        "bare asserts abort release figure runs; return a Result or use invariant!",
    ),
];

const ATTR_MISSING_DOCS: &str = "#![warn(missing_docs)]";
const ATTR_FORBID_UNSAFE: &str = "#![forbid(unsafe_code)]";

/// One lint finding, pointing at a repository-relative `path:line`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repository-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`hash-iter`, `wall-clock`, `entropy`, `panic`,
    /// `assert`, `lint-attrs`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One vetted exception from `lint-allow.txt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being excepted.
    pub rule: String,
    /// Repository-relative file the exception applies to.
    pub path: String,
    /// Why the exception is sound (mandatory).
    pub justification: String,
    used: bool,
}

/// The parsed allowlist. Entries suppress all diagnostics of their rule in
/// their file; each records whether it actually suppressed anything.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An allowlist with no exceptions.
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the `lint-allow.txt` format: one `<rule> <path>
    /// <justification>` entry per line; `#` comments and blank lines are
    /// ignored. A missing justification is an error — exceptions must be
    /// argued, not just declared.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(path), Some(justification)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint-allow.txt:{}: expected `<rule> <path> <justification>`, got `{line}`",
                    idx + 1
                ));
            };
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!(
                    "lint-allow.txt:{}: entry for {rule} {path} has no justification",
                    idx + 1
                ));
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                justification: justification.to_string(),
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// True when `rule` is excepted in `path`; marks the entry as used.
    fn permits(&mut self, rule: &str, path: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.rule == rule && e.path == path {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that suppressed nothing in the last run — stale exceptions
    /// that should be deleted.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

/// A crate to be linted: its display name and its `src` directory.
struct CrateSrc {
    name: String,
    src: PathBuf,
}

/// Lints the workspace rooted at `root` and returns all diagnostics not
/// suppressed by `allow`, sorted by `(path, line, rule)`. Errors are I/O
/// problems (unreadable tree), not findings.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> Result<Vec<Diagnostic>, String> {
    let crates = discover_crates(root)?;
    let mut raw = Vec::new();

    for krate in &crates {
        let deterministic = DETERMINISM_CRATES.contains(&krate.name.as_str());
        check_lib_attrs(root, krate, &mut raw)?;
        for file in rust_sources(&krate.src)? {
            let rel = rel_path(root, &file);
            let text = read(&file)?;
            let is_binary = is_binary_target(&file);
            let mut rules: Vec<(&'static str, &[(&str, &str)])> = Vec::new();
            if deterministic {
                rules.push(("hash-iter", HASH_NEEDLES));
                rules.push(("wall-clock", WALL_CLOCK_NEEDLES));
            }
            rules.push(("entropy", ENTROPY_NEEDLES));
            if !is_binary {
                rules.push(("panic", PANIC_NEEDLES));
                rules.push(("assert", ASSERT_NEEDLES));
            }
            scan_file(&rel, &text, &rules, &mut raw);
        }
    }

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !allow.permits(d.rule, &d.path))
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

/// The workspace's crates: every directory under `crates/`, plus the root
/// package (named `root`, sources in `src/`).
fn discover_crates(root: &Path) -> Result<Vec<CrateSrc>, String> {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    for name in names {
        crates.push(CrateSrc {
            src: crates_dir.join(&name).join("src"),
            name,
        });
    }
    crates.push(CrateSrc {
        name: "root".to_string(),
        src: root.join("src"),
    });
    Ok(crates)
}

/// Every `lib.rs` must opt into the workspace's documentation and safety
/// attributes.
fn check_lib_attrs(root: &Path, krate: &CrateSrc, out: &mut Vec<Diagnostic>) -> Result<(), String> {
    let lib = krate.src.join("lib.rs");
    if !lib.is_file() {
        return Ok(());
    }
    let text = read(&lib)?;
    let rel = rel_path(root, &lib);
    for attr in [ATTR_MISSING_DOCS, ATTR_FORBID_UNSAFE] {
        if !text.contains(attr) {
            out.push(Diagnostic {
                path: rel.clone(),
                line: 1,
                rule: "lint-attrs",
                message: format!("crate `{}` is missing the `{attr}` attribute", krate.name),
            });
        }
    }
    Ok(())
}

/// Applies line-based needle rules to one file. Comment lines are skipped;
/// once `#[cfg(test)]` appears, the rest of the file is test code and
/// exempt (the workspace keeps test modules at the bottom of each file).
fn scan_file(
    rel: &str,
    text: &str,
    rules: &[(&'static str, &[(&str, &str)])],
    out: &mut Vec<Diagnostic>,
) {
    let mut in_test = false;
    for (idx, line) in text.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            in_test = true;
        }
        if in_test || line.trim_start().starts_with("//") {
            continue;
        }
        for (rule, needles) in rules {
            for (needle, message) in needles.iter() {
                let hit = if *rule == "assert" {
                    contains_word_start(line, needle)
                } else {
                    line.contains(needle)
                };
                if hit {
                    out.push(Diagnostic {
                        path: rel.to_string(),
                        line: idx + 1,
                        rule,
                        message: format!("`{needle}`: {message}"),
                    });
                }
            }
        }
    }
}

/// True when `line` contains `needle` at a position not preceded by an
/// identifier character — so `debug_assert!(` does not match an
/// `assert!(` needle, but `::std::assert!(` and a bare `assert!(` do.
fn contains_word_start(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let abs = from + pos;
        let preceded = line[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !preceded {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// All `.rs` files under `src`, recursively, in sorted order. `src/bin/`
/// is descended into (determinism rules still apply there); binary-target
/// detection happens per file via [`is_binary_target`].
fn rust_sources(src: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    if !src.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut children = Vec::new();
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            children.push(entry.path());
        }
        children.sort();
        for child in children {
            if child.is_dir() {
                stack.push(child);
            } else if child.extension().is_some_and(|e| e == "rs") {
                files.push(child);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// True for compilation roots of binary targets (`src/main.rs`,
/// `src/bin/**`), which are exempt from the `panic` rule: a CLI aborting
/// on bad input is acceptable, a library doing so is not.
fn is_binary_target(path: &Path) -> bool {
    if path.file_name().is_some_and(|n| n == "main.rs") {
        return true;
    }
    path.components().any(|c| c.as_os_str() == "bin")
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Builds a throwaway fake workspace under the OS temp dir and returns
    /// its root. Callers clean up via `TempWorkspace`'s `Drop`.
    struct TempWorkspace {
        root: PathBuf,
    }

    impl TempWorkspace {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("l2s-lint-test-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            fs::create_dir_all(root.join("crates")).unwrap();
            TempWorkspace { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }
    }

    impl Drop for TempWorkspace {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    const CLEAN_LIB: &str =
        "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\npub fn f() {}\n";

    #[test]
    fn reintroduced_hash_map_in_core_fails_with_file_and_line() {
        let ws = TempWorkspace::new("hashmap");
        ws.write("crates/core/Cargo.toml", "[package]\nname = \"l2s\"\n");
        ws.write(
            "crates/core/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n",
                "//! Docs.\n",
                "use std::collections::Hash",
                "Map;\n",
                "/// State.\npub struct S { m: Hash",
                "Map<u32, u32> }\n",
            ),
        );
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].path, "crates/core/src/lib.rs");
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].rule, "hash-iter");
        assert_eq!(diags[1].line, 6);
        // The rendered form carries file:line for editors.
        assert!(diags[0]
            .to_string()
            .starts_with("crates/core/src/lib.rs:4: [hash-iter]"));
    }

    #[test]
    fn wall_clock_and_entropy_are_flagged() {
        let ws = TempWorkspace::new("clock");
        ws.write("crates/sim/Cargo.toml", "[package]\nname = \"l2s-sim\"\n");
        ws.write(
            "crates/sim/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\n",
                "/// T.\npub fn t() { let _ = std::time::Inst",
                "ant::now(); }\n",
                "/// R.\npub fn r() { let _ = rand::thread_",
                "rng(); }\n",
            ),
        );
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"wall-clock"), "{diags:?}");
        assert!(rules.contains(&"entropy"), "{diags:?}");
    }

    #[test]
    fn unwrap_flagged_in_lib_but_not_in_bin_or_tests() {
        let ws = TempWorkspace::new("panic");
        ws.write("crates/net/Cargo.toml", "[package]\nname = \"l2s-net\"\n");
        ws.write(
            "crates/net/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\n",
                "/// F.\npub fn f(v: Option<u32>) -> u32 { v.unw",
                "rap() }\n",
                "// comment mentioning .unw",
                "rap() is fine\n",
                "#[cfg(test)]\nmod tests { fn g() { None::<u32>.unw",
                "rap(); } }\n",
            ),
        );
        ws.write(
            "crates/net/src/bin/tool.rs",
            concat!("fn main() { None::<u32>.unw", "rap(); }\n"),
        );
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic");
        assert_eq!(diags[0].path, "crates/net/src/lib.rs");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn bare_assert_flagged_but_debug_assert_and_tests_exempt() {
        let ws = TempWorkspace::new("assert");
        ws.write("crates/zipf/Cargo.toml", "[package]\nname = \"l2s-zipf\"\n");
        ws.write(
            "crates/zipf/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\n",
                "/// F.\npub fn f(n: u64) { ass",
                "ert!(n > 0); }\n",
                "/// G.\npub fn g(n: u64) { debug_ass",
                "ert!(n > 0); }\n",
                "/// H.\npub fn h(n: u64) { ::std::ass",
                "ert_eq!(n, 1); }\n",
                "#[cfg(test)]\nmod tests { fn t() { ass",
                "ert_ne!(1, 2); } }\n",
            ),
        );
        ws.write(
            "crates/zipf/src/bin/tool.rs",
            concat!("fn main() { ass", "ert!(true); }\n"),
        );
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "assert"));
        assert_eq!(diags[0].line, 5, "bare assert in f");
        assert_eq!(diags[1].line, 9, "path-qualified assert_eq in h");
    }

    #[test]
    fn word_boundary_matcher() {
        let needle = concat!("ass", "ert!(");
        assert!(contains_word_start(concat!("ass", "ert!(x > 0)"), needle));
        assert!(contains_word_start(
            concat!("    ::core::ass", "ert!(x)"),
            needle
        ));
        assert!(!contains_word_start(
            concat!("debug_ass", "ert!(x)"),
            needle
        ));
        assert!(!contains_word_start(concat!("my_ass", "ert!(x)  "), needle));
        // A shadowed match must not mask a later bare one.
        assert!(contains_word_start(
            concat!("debug_ass", "ert!(x); ass", "ert!(y)"),
            needle
        ));
    }

    #[test]
    fn missing_lint_attrs_are_reported_per_crate() {
        let ws = TempWorkspace::new("attrs");
        ws.write("crates/zipf/Cargo.toml", "[package]\nname = \"l2s-zipf\"\n");
        ws.write("crates/zipf/src/lib.rs", "//! Docs.\npub fn f() {}\n");
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "lint-attrs"));
        assert!(diags.iter().any(|d| d.message.contains("missing_docs")));
        assert!(diags.iter().any(|d| d.message.contains("unsafe_code")));
    }

    #[test]
    fn allowlist_suppresses_and_tracks_usage() {
        let ws = TempWorkspace::new("allow");
        ws.write("crates/cluster/Cargo.toml", "[package]\nname = \"c\"\n");
        ws.write(
            "crates/cluster/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\n",
                "/// S.\npub struct S { m: std::collections::Hash",
                "Map<u32, u32> }\n",
            ),
        );
        let mut allow = Allowlist::parse(concat!(
            "# comment\n",
            "hash-iter crates/cluster/src/lib.rs keyed lookup only\n",
            "panic crates/never/src/lib.rs stale entry\n",
        ))
        .unwrap();
        let diags = lint_workspace(&ws.root, &mut allow).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        let unused: Vec<&str> = allow.unused().iter().map(|e| e.path.as_str()).collect();
        assert_eq!(unused, vec!["crates/never/src/lib.rs"]);
    }

    #[test]
    fn allowlist_rejects_missing_justification() {
        assert!(Allowlist::parse("hash-iter crates/x/src/lib.rs\n").is_err());
        assert!(Allowlist::parse("hash-iter crates/x/src/lib.rs   \n").is_err());
    }

    #[test]
    fn non_determinism_crates_may_use_hash_containers() {
        let ws = TempWorkspace::new("scope");
        ws.write("crates/lint/Cargo.toml", "[package]\nname = \"l2s-lint\"\n");
        ws.write(
            "crates/lint/src/lib.rs",
            concat!(
                "#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n//! Docs.\n",
                "/// S.\npub struct S { m: std::collections::Hash",
                "Map<u32, u32> }\n",
            ),
        );
        let diags = lint_workspace(&ws.root, &mut Allowlist::empty()).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn the_real_repository_passes_with_its_checked_in_allowlist() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let allow_text = fs::read_to_string(root.join("lint-allow.txt")).unwrap();
        let mut allow = Allowlist::parse(&allow_text).unwrap();
        let diags = lint_workspace(root, &mut allow).unwrap();
        assert!(diags.is_empty(), "lint violations in tree: {diags:#?}");
        let unused: Vec<_> = allow.unused();
        assert!(unused.is_empty(), "stale allowlist entries: {unused:?}");
    }
}
