//! `l2s-lint` — the workspace's in-tree determinism and invariant lint.
//!
//! The simulator's headline guarantee is bit-for-bit reproducibility: the
//! same seed and configuration must produce the same figures on every
//! machine. That guarantee is easy to break silently — one iterated
//! hash map, one wall-clock read, one entropy-seeded generator, one
//! NaN-ambivalent float sort — so this crate enforces the determinism
//! rules statically, as a dependency-free binary that CI (and
//! `cargo run -p l2s-lint`) runs over the source tree.
//!
//! Since v2 the lint is built on an in-tree Rust lexer ([`lexer`]): every
//! file is tokenized into identifiers, punctuation, and opaque
//! literal/comment spans, and all rules ([`rules`]) match *tokens* with
//! line:column positions. Needles inside string literals, char literals,
//! and comments can therefore never produce findings, and identifier
//! matches are exact — `assert_stable` can never trip the `assert` rule.
//!
//! # Rule catalog
//!
//! | id | severity | scope | checks |
//! |----|----------|-------|--------|
//! | `hash-iter` | deny | types: determinism crates; chains: workspace | no hash-container types in determinism crates; *anywhere*, no iteration adapters (`.keys()`, `.values()`, `.iter()`, …) or `for` loops on hash-bound receivers, matched through method chains |
//! | `wall-clock` | deny | determinism crates | no `Instant`/`SystemTime`: simulation time comes from the event queue |
//! | `entropy` | deny | workspace | no `thread_rng`, `rand::random`, `from_entropy`, or `OsRng`: all randomness flows from explicit seeds |
//! | `panic` | deny | library sources | no `.unwrap()`/`.expect()`/`panic!`-family in library code (binaries and tests exempt); use `Result` or `invariant!` |
//! | `assert` | deny | library sources | no bare `assert!`/`assert_eq!`/`assert_ne!` outside tests; `debug_assert!` is fine |
//! | `crate-header` | deny | every crate | each `lib.rs` declares `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]` |
//! | `float-order` | deny | library sources | no `partial_cmp`: float orderings must use `total_cmp` (or an integer key) so NaN cannot reorder replay |
//! | `lossy-cast` | warn | library sources | numeric `as` casts can truncate or lose precision silently; use `From`/`TryFrom` or `l2s_util::cast` helpers |
//! | `raw-duration` | warn | library sources | `from_secs_f64`/`secs_to_nanos` call sites outside `CostCache`: per-event float→nanosecond conversion belongs in the cost cache or setup code |
//!
//! # Severities and the baseline ratchet
//!
//! **Deny** findings fail the run immediately. **Warn** findings are
//! ratcheted against the committed [`lint-baseline.json`](baseline): a run
//! fails only when some `(rule, file)` cell *grows* past its tolerated
//! count, so existing debt is visible but frozen, and
//! `--update-baseline` regenerates the file (shrinking it is one flag).
//!
//! # Allowlist
//!
//! Vetted exceptions live in `lint-allow.txt` at the repository root:
//!
//! ```text
//! <rule> <path> <justification>            # suppress rule in file
//! <rule> <path> warn <justification>       # demote deny findings to warn
//! <rule> <path> deny <justification>       # promote warn findings to deny
//! ```
//!
//! The justification is mandatory; unused entries are reported so the
//! file cannot rot. The optional severity column turns an entry into a
//! reclassification instead of a suppression: `warn` moves a deny rule's
//! findings into the ratchet for a legacy file, `deny` locks a cleaned
//! file so warn-level debt can never return to it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod output;
pub mod rules;

use baseline::Baseline;
use output::Summary;
use rules::FileContext;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Crates whose sources feed simulation results and therefore must be
/// deterministic (hash-container and wall-clock type bans apply).
pub const DETERMINISM_CRATES: &[&str] = &[
    "util", "devs", "net", "zipf", "trace", "cluster", "core", "model", "sim",
];

/// Every rule id with its default severity, in catalog order.
pub const RULES: &[(&str, Severity)] = &[
    ("hash-iter", Severity::Deny),
    ("wall-clock", Severity::Deny),
    ("entropy", Severity::Deny),
    ("panic", Severity::Deny),
    ("assert", Severity::Deny),
    ("crate-header", Severity::Deny),
    ("float-order", Severity::Deny),
    ("lossy-cast", Severity::Warn),
    ("raw-duration", Severity::Warn),
];

/// How a finding is enforced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails the run immediately.
    Deny,
    /// Ratcheted against `lint-baseline.json`; fails only on growth.
    Warn,
}

/// One lint finding, pointing at a repository-relative `path:line:col`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repository-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (in characters) of the matched token.
    pub col: usize,
    /// Matched token length in characters (caret span width).
    pub len: usize,
    /// Rule identifier from the catalog.
    pub rule: &'static str,
    /// Enforcement level after allowlist reclassification.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// The source line, for rendering.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// What an allowlist entry does to matching findings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllowAction {
    /// Drop the finding entirely.
    Suppress,
    /// Reclassify deny findings as warn (into the baseline ratchet).
    Demote,
    /// Reclassify warn findings as deny (lock a cleaned file).
    Promote,
}

/// One vetted exception from `lint-allow.txt`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being excepted.
    pub rule: String,
    /// Repository-relative file the exception applies to.
    pub path: String,
    /// What the entry does (suppress, demote, promote).
    pub action: AllowAction,
    /// Why the exception is sound (mandatory).
    pub justification: String,
    used: bool,
}

/// The parsed allowlist. Each entry records whether it actually affected
/// a finding, so stale entries can be reported.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An allowlist with no exceptions.
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the `lint-allow.txt` format: one entry per line as
    /// `<rule> <path> [deny|warn] <justification>`; `#` comments and
    /// blank lines are ignored. A missing justification is an error —
    /// exceptions must be argued, not just declared.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(path), Some(rest)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "lint-allow.txt:{}: expected `<rule> <path> [deny|warn] <justification>`, got `{line}`",
                    idx + 1
                ));
            };
            let rest = rest.trim();
            let (action, justification) = match rest.split_once(char::is_whitespace) {
                Some(("deny", j)) => (AllowAction::Promote, j.trim()),
                Some(("warn", j)) => (AllowAction::Demote, j.trim()),
                // A bare severity column with nothing after it falls
                // through to the missing-justification error below.
                _ if rest == "deny" || rest == "warn" => (AllowAction::Suppress, ""),
                _ => (AllowAction::Suppress, rest),
            };
            if justification.is_empty() {
                return Err(format!(
                    "lint-allow.txt:{}: entry for {rule} {path} has no justification",
                    idx + 1
                ));
            }
            entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                action,
                justification: justification.to_string(),
                used: false,
            });
        }
        Ok(Allowlist { entries })
    }

    /// Applies the allowlist to raw findings: suppression drops them,
    /// demotion/promotion retags their severity. Matching entries are
    /// marked used.
    fn apply(&mut self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        let mut out = Vec::with_capacity(diags.len());
        'diag: for mut d in diags {
            // Suppression wins over reclassification.
            for e in &mut self.entries {
                if e.action == AllowAction::Suppress && e.rule == d.rule && e.path == d.path {
                    e.used = true;
                    continue 'diag;
                }
            }
            for e in &mut self.entries {
                if e.rule != d.rule || e.path != d.path {
                    continue;
                }
                match e.action {
                    AllowAction::Demote if d.severity == Severity::Deny => {
                        d.severity = Severity::Warn;
                        e.used = true;
                    }
                    AllowAction::Promote if d.severity == Severity::Warn => {
                        d.severity = Severity::Deny;
                        e.used = true;
                    }
                    _ => {}
                }
            }
            out.push(d);
        }
        out
    }

    /// Entries that affected nothing in the last run — stale exceptions
    /// that should be deleted.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().filter(|e| !e.used).collect()
    }
}

/// A crate to be linted: its display name and its `src` directory.
struct CrateSrc {
    name: String,
    src: PathBuf,
}

/// Everything one lint pass learned about the tree.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings after allowlist application, sorted by
    /// `(path, line, col, …)` and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Crates discovered and scanned.
    pub crates_scanned: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings at the given severity.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }
}

/// Lints the workspace rooted at `root` and returns the report. Errors
/// are I/O or lexing problems (unreadable tree, unterminated literal),
/// not findings.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> Result<Report, String> {
    let crates = discover_crates(root)?;
    let mut raw = Vec::new();
    let mut files_scanned = 0usize;

    for krate in &crates {
        let deterministic = DETERMINISM_CRATES.contains(&krate.name.as_str());
        let lib = krate.src.join("lib.rs");
        if lib.is_file() {
            raw.extend(rules::check_crate_header(
                &rel_path(root, &lib),
                &krate.name,
                &read(&lib)?,
            )?);
        }
        for file in rust_sources(&krate.src)? {
            let rel = rel_path(root, &file);
            let text = read(&file)?;
            let ctx = FileContext {
                rel_path: &rel,
                deterministic,
                is_binary: is_binary_target(&file),
            };
            raw.extend(rules::scan_file(&ctx, &text)?);
            files_scanned += 1;
        }
    }

    let mut diagnostics = allow.apply(raw);
    diagnostics.sort();
    diagnostics.dedup();
    Ok(Report {
        diagnostics,
        crates_scanned: crates.len(),
        files_scanned,
    })
}

/// The workspace's crates: every directory under `crates/`, plus the root
/// package (named `root`, sources in `src/`).
fn discover_crates(root: &Path) -> Result<Vec<CrateSrc>, String> {
    let mut crates = Vec::new();
    let crates_dir = root.join("crates");
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read crates/: {e}"))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    for name in names {
        crates.push(CrateSrc {
            src: crates_dir.join(&name).join("src"),
            name,
        });
    }
    crates.push(CrateSrc {
        name: "root".to_string(),
        src: root.join("src"),
    });
    Ok(crates)
}

/// All `.rs` files under `src`, recursively, in sorted order.
fn rust_sources(src: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    if !src.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut children = Vec::new();
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
            children.push(entry.path());
        }
        children.sort();
        for child in children {
            if child.is_dir() {
                stack.push(child);
            } else if child.extension().is_some_and(|e| e == "rs") {
                files.push(child);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// True for compilation roots of binary targets (`src/main.rs`,
/// `src/bin/**`), which are exempt from the library-only rules: a CLI
/// aborting on bad input is acceptable, a library doing so is not.
fn is_binary_target(path: &Path) -> bool {
    if path.file_name().is_some_and(|n| n == "main.rs") {
        return true;
    }
    path.components().any(|c| c.as_os_str() == "bin")
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Output format of a CLI run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// rustc-style rendered diagnostics with caret spans.
    Text,
    /// Byte-stable machine-readable report on stdout.
    Json,
}

/// Parsed CLI options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workspace root to lint (default `.`).
    pub root: PathBuf,
    /// Output format (default text).
    pub format: Format,
    /// Regenerate `lint-baseline.json` from this run's warn findings.
    pub update_baseline: bool,
}

impl Options {
    /// Parses CLI arguments (everything after the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options {
            root: PathBuf::from("."),
            format: Format::Text,
            update_baseline: false,
        };
        let mut args = args.into_iter();
        let mut root_set = false;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--format" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--format requires a value (text|json)".to_string())?;
                    opts.format = parse_format(&value)?;
                }
                _ if arg.starts_with("--format=") => {
                    opts.format = parse_format(&arg["--format=".len()..])?;
                }
                "--update-baseline" => opts.update_baseline = true,
                _ if arg.starts_with("--") => {
                    return Err(format!(
                        "unknown flag `{arg}` (try --format json, --update-baseline)"
                    ));
                }
                _ if !root_set => {
                    opts.root = PathBuf::from(arg);
                    root_set = true;
                }
                _ => return Err(format!("unexpected argument `{arg}`")),
            }
        }
        Ok(opts)
    }
}

fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        other => Err(format!("unknown format `{other}` (expected text or json)")),
    }
}

/// Runs a complete lint pass: allowlist, scan, baseline ratchet,
/// rendering, and summary. Returns the process exit code:
///
/// * `0` — clean: no deny findings, no warn growth over the baseline;
/// * `1` — findings: deny findings present or warn counts grew;
/// * `2` — I/O or configuration error (unreadable tree, malformed
///   allowlist or baseline, bad flags).
pub fn run(opts: &Options, out: &mut dyn Write, err: &mut dyn Write) -> u8 {
    match run_inner(opts, out, err) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(err, "error: {e}");
            2
        }
    }
}

fn run_inner(opts: &Options, out: &mut dyn Write, err: &mut dyn Write) -> Result<u8, String> {
    let allow_path = opts.root.join("lint-allow.txt");
    let mut allow = if allow_path.is_file() {
        Allowlist::parse(&read(&allow_path)?)?
    } else {
        Allowlist::empty()
    };

    let report = lint_workspace(&opts.root, &mut allow)?;

    let baseline_path = opts.root.join("lint-baseline.json");
    let mut committed = if baseline_path.is_file() {
        Baseline::parse(&read(&baseline_path)?)?
    } else {
        Baseline::empty()
    };

    if opts.update_baseline {
        committed = Baseline::from_diagnostics(&report.diagnostics);
        fs::write(&baseline_path, committed.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        let _ = writeln!(
            err,
            "l2s-lint: baseline regenerated at {}",
            baseline_path.display()
        );
    }

    let ratchet = committed.ratchet(&report.diagnostics);
    let deny_count = report.at(Severity::Deny).count();
    let warn_count = report.at(Severity::Warn).count();
    let summary = Summary {
        crates_scanned: report.crates_scanned,
        files_scanned: report.files_scanned,
        rules: RULES.len(),
        deny: deny_count,
        warn: warn_count,
        growth: ratchet.growth.len(),
        allow_unused: allow.unused().len(),
    };

    match opts.format {
        Format::Json => {
            let _ = out
                .write_all(output::render_json(&report.diagnostics, &ratchet, &summary).as_bytes());
        }
        Format::Text => {
            // Deny findings render in full; warn findings render only in
            // cells that grew past the baseline (the rest are debt that
            // is already tolerated and counted in the summary).
            for d in report.at(Severity::Deny) {
                let _ = writeln!(out, "{}", output::render_text(d));
            }
            for g in &ratchet.growth {
                let _ = writeln!(
                    out,
                    "baseline: warn[{}] in {} grew {} -> {} (fix the new findings or argue an allowlist entry)",
                    g.rule, g.path, g.baseline, g.current
                );
                for d in report.at(Severity::Warn) {
                    if d.rule == g.rule && d.path == g.path {
                        let _ = writeln!(out, "{}", output::render_text(d));
                    }
                }
            }
            for g in &ratchet.shrunk {
                let _ = writeln!(
                    err,
                    "note: warn[{}] in {} shrank {} -> {}; run with --update-baseline to ratchet down",
                    g.rule, g.path, g.baseline, g.current
                );
            }
        }
    }

    for stale in allow.unused() {
        let _ = writeln!(
            err,
            "warning: unused allowlist entry `{} {}` ({}) — delete it",
            stale.rule, stale.path, stale.justification
        );
    }

    let _ = writeln!(err, "{}", summary.render());
    let clean = deny_count == 0 && ratchet.growth.is_empty();
    if clean {
        let _ = writeln!(err, "l2s-lint: clean");
        Ok(0)
    } else {
        let _ = writeln!(
            err,
            "l2s-lint: {} deny finding(s), {} baseline growth cell(s)",
            deny_count,
            ratchet.growth.len()
        );
        Ok(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Crate header every synthetic lib.rs needs to stay crate-header clean.
    const HEADER: &str = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A throwaway workspace in the OS temp dir; removed on drop.
    struct Workspace {
        root: PathBuf,
    }

    impl Workspace {
        /// Builds `crates/<name>/src/<file>` trees from `(path, source)`
        /// pairs like `("core/src/lib.rs", "...")`, adding a Cargo.toml
        /// per crate so discovery finds them.
        fn new(files: &[(&str, &str)]) -> Workspace {
            let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let root =
                std::env::temp_dir().join(format!("l2s-lint-test-{}-{seq}", std::process::id()));
            for (path, source) in files {
                let full = root.join("crates").join(path);
                fs::create_dir_all(full.parent().unwrap()).unwrap();
                fs::write(&full, source).unwrap();
                let krate = path.split('/').next().unwrap();
                let manifest = root.join("crates").join(krate).join("Cargo.toml");
                fs::write(&manifest, "[package]\n").unwrap();
            }
            Workspace { root }
        }

        fn lint(&self) -> Report {
            self.lint_with(&mut Allowlist::empty())
        }

        fn lint_with(&self, allow: &mut Allowlist) -> Report {
            lint_workspace(&self.root, allow).unwrap()
        }
    }

    impl Drop for Workspace {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    fn rules_of(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_map_in_determinism_crate_is_flagged_with_position() {
        let ws = Workspace::new(&[(
            "core/src/lib.rs",
            &format!("{HEADER}pub fn f() {{\n    let m: std::collections::HashMap<u32, u32> = Default::default();\n    drop(m);\n}}\n"),
        )]);
        let report = ws.lint();
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "hash-iter")
            .expect("HashMap type must be flagged in a determinism crate");
        assert_eq!(d.path, "crates/core/src/lib.rs");
        assert_eq!(d.line, 4);
        assert_eq!(d.severity, Severity::Deny);
        assert!(d.col > 1, "column must be real, got {}", d.col);
    }

    #[test]
    fn non_determinism_crates_may_hold_hash_containers_but_not_iterate() {
        let src = format!(
            "{HEADER}use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> usize {{ m.len() }}\n"
        );
        let ws = Workspace::new(&[("lint/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        assert!(
            report.diagnostics.is_empty(),
            "keyed-only HashMap use outside determinism crates is fine: {:?}",
            report.diagnostics
        );

        let src = format!(
            "{HEADER}use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> Vec<u32> {{ m.keys().copied().collect() }}\n"
        );
        let ws = Workspace::new(&[("lint/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        assert_eq!(
            rules_of(&report),
            vec!["hash-iter"],
            "iteration adapters on hash receivers are banned workspace-wide"
        );
    }

    #[test]
    fn chain_and_for_loop_hash_iteration_are_flagged() {
        let src = format!(
            "{HEADER}use std::collections::HashMap;\n\
             pub struct S {{ cache: HashMap<u32, u32> }}\n\
             impl S {{\n\
                 pub fn a(&self) -> usize {{ self.cache.iter().count() }}\n\
                 pub fn b(&self) {{ for k in self.cache.keys() {{ drop(k); }} }}\n\
             }}\n\
             pub fn c() -> usize {{ HashMap::<u32, u32>::new().iter().count() }}\n"
        );
        let ws = Workspace::new(&[("lint/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        let hash_iter = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "hash-iter")
            .count();
        assert!(
            hash_iter >= 3,
            "field chain, for-loop head, and constructor chain must all flag: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn wall_clock_and_entropy_are_flagged() {
        let src = format!(
            "{HEADER}pub fn f() -> std::time::Instant {{ std::time::Instant::now() }}\n\
             pub fn g() -> u64 {{ rand::random() }}\n"
        );
        let ws = Workspace::new(&[("sim/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        assert!(rules_of(&report).contains(&"wall-clock"));
        assert!(rules_of(&report).contains(&"entropy"));
    }

    #[test]
    fn unwrap_flagged_in_libraries_but_not_binaries_or_tests() {
        let lib = format!("{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n");
        let bin = "fn main() { Some(1).unwrap(); }\n";
        let tests = format!(
            "{HEADER}pub fn ok() {{}}\n\
             #[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ Some(1).unwrap(); }}\n}}\n"
        );
        let ws = Workspace::new(&[
            ("net/src/lib.rs", lib.as_str()),
            ("net/src/main.rs", bin),
            ("devs/src/lib.rs", tests.as_str()),
        ]);
        let report = ws.lint();
        let panics: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "panic")
            .collect();
        assert_eq!(panics.len(), 1, "only the library unwrap flags: {panics:?}");
        assert_eq!(panics[0].path, "crates/net/src/lib.rs");
    }

    #[test]
    fn bare_assert_flagged_but_debug_assert_and_prefixed_idents_are_not() {
        let src = format!(
            "{HEADER}pub fn f(x: u64) {{\n\
                 assert!(x > 0);\n\
                 debug_assert!(x > 0);\n\
                 debug_assert_eq!(x, x);\n\
             }}\n\
             /// Call `debug_assert_eq!` and `assert!` liberally in tests.\n\
             pub fn assert_stable(x: u64) -> u64 {{ x }}\n\
             pub fn g(x: u64) -> u64 {{ assert_stable(x) }}\n"
        );
        let ws = Workspace::new(&[("zipf/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        let asserts: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "assert")
            .collect();
        assert_eq!(
            asserts.len(),
            1,
            "exactly the bare assert! flags: {asserts:?}"
        );
        assert_eq!(asserts[0].line, 4);
    }

    #[test]
    fn needles_in_strings_and_comments_never_flag() {
        let src = format!(
            "{HEADER}// HashMap.iter() thread_rng() .unwrap() assert!(x) partial_cmp\n\
             /* Instant::now() panic!(\"x\") as usize from_secs_f64(1.0) */\n\
             pub const DOC: &str = \"call .unwrap() on a HashMap then assert!(true) as f64\";\n\
             pub const RAW: &str = r#\"SystemTime::now() partial_cmp OsRng\"#;\n\
             pub fn f() -> char {{ 'a' }}\n"
        );
        let ws = Workspace::new(&[("core/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        assert!(
            report.diagnostics.is_empty(),
            "string/comment contents are opaque to every rule: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn missing_crate_header_attrs_are_flagged_per_crate() {
        let ws = Workspace::new(&[
            (
                "core/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {}\n",
            ),
            ("net/src/lib.rs", "#![warn(missing_docs)]\npub fn g() {}\n"),
        ]);
        let report = ws.lint();
        let headers: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "crate-header")
            .collect();
        assert_eq!(headers.len(), 2, "one missing attr per crate: {headers:?}");
        assert!(headers
            .iter()
            .any(|d| d.path.contains("core") && d.message.contains("missing_docs")));
        assert!(headers
            .iter()
            .any(|d| d.path.contains("net") && d.message.contains("unsafe_code")));
    }

    #[test]
    fn float_order_flags_partial_cmp() {
        let src = format!(
            "{HEADER}pub fn f(mut v: Vec<f64>) -> Vec<f64> {{\n\
                 v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
                 v\n\
             }}\n"
        );
        let ws = Workspace::new(&[("model/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        assert!(rules_of(&report).contains(&"float-order"));
    }

    #[test]
    fn lossy_cast_is_warn_severity_and_test_exempt() {
        let src = format!(
            "{HEADER}pub fn f(x: u64) -> f64 {{ x as f64 }}\n\
             #[cfg(test)]\nmod tests {{\n    #[test]\n    fn t() {{ let _ = 1u64 as f64; }}\n}}\n"
        );
        let ws = Workspace::new(&[("trace/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        let casts: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "lossy-cast")
            .collect();
        assert_eq!(casts.len(), 1, "test-module cast must be exempt: {casts:?}");
        assert_eq!(casts[0].severity, Severity::Warn);
    }

    #[test]
    fn raw_duration_flags_calls_but_not_definitions_or_cost_cache() {
        let src = format!(
            "{HEADER}pub fn from_secs_f64(s: f64) -> u64 {{ s as u64 }}\n\
             pub fn hot(s: f64) -> u64 {{ from_secs_f64(s) }}\n\
             pub struct CostCache;\n\
             impl CostCache {{\n\
                 pub fn build(s: f64) -> u64 {{ from_secs_f64(s) }}\n\
             }}\n"
        );
        let ws = Workspace::new(&[("cluster/src/lib.rs", src.as_str())]);
        let report = ws.lint();
        let raw: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == "raw-duration")
            .collect();
        assert_eq!(
            raw.len(),
            1,
            "only the non-CostCache call site flags: {raw:?}"
        );
        assert_eq!(raw[0].line, 4);
    }

    #[test]
    fn allowlist_suppresses_and_tracks_usage() {
        let lib = format!("{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n");
        let ws = Workspace::new(&[("net/src/lib.rs", lib.as_str())]);
        let mut allow = Allowlist::parse(
            "panic crates/net/src/lib.rs vetted: documented precondition\n\
             entropy crates/net/src/lib.rs never matches anything\n",
        )
        .unwrap();
        let report = ws.lint_with(&mut allow);
        assert!(
            report.diagnostics.iter().all(|d| d.rule != "panic"),
            "suppressed finding must not surface"
        );
        let unused: Vec<String> = allow.unused().iter().map(|e| e.rule.clone()).collect();
        assert_eq!(
            unused,
            vec!["entropy".to_string()],
            "stale entries are reported"
        );
    }

    #[test]
    fn allowlist_severity_column_demotes_and_promotes() {
        let lib = format!(
            "{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n\
             pub fn g(x: u64) -> f64 {{ x as f64 }}\n"
        );
        let ws = Workspace::new(&[("net/src/lib.rs", lib.as_str())]);
        let mut allow = Allowlist::parse(
            "panic crates/net/src/lib.rs warn legacy file, ratchet the debt\n\
             lossy-cast crates/net/src/lib.rs deny cleaned file, lock it\n",
        )
        .unwrap();
        let report = ws.lint_with(&mut allow);
        let panic = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "panic")
            .unwrap();
        let cast = report
            .diagnostics
            .iter()
            .find(|d| d.rule == "lossy-cast")
            .unwrap();
        assert_eq!(panic.severity, Severity::Warn, "deny entry demoted to warn");
        assert_eq!(cast.severity, Severity::Deny, "warn entry promoted to deny");
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn allowlist_rejects_entries_without_justification() {
        assert!(Allowlist::parse("panic crates/net/src/lib.rs\n").is_err());
        assert!(Allowlist::parse("panic crates/net/src/lib.rs warn\n").is_err());
        assert!(Allowlist::parse("# just a comment\n\n")
            .unwrap()
            .unused()
            .is_empty());
    }

    fn run_to_strings(opts: &Options) -> (u8, String, String) {
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(opts, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    #[test]
    fn run_exits_zero_on_clean_one_on_findings_two_on_errors() {
        let clean = format!("{HEADER}pub fn f() {{}}\n");
        let ws = Workspace::new(&[("core/src/lib.rs", clean.as_str())]);
        let opts = Options {
            root: ws.root.clone(),
            format: Format::Text,
            update_baseline: false,
        };
        let (code, _, err) = run_to_strings(&opts);
        assert_eq!(code, 0);
        assert!(err.contains("l2s-lint: clean"));
        // The implicit root package is always discovered alongside crates/.
        assert!(err.contains("scanned 1 files across 2 crates"));

        let dirty = format!("{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n");
        let ws = Workspace::new(&[("core/src/lib.rs", dirty.as_str())]);
        let opts = Options {
            root: ws.root.clone(),
            format: Format::Text,
            update_baseline: false,
        };
        let (code, out, err) = run_to_strings(&opts);
        assert_eq!(code, 1);
        assert!(out.contains("deny[panic]"));
        assert!(err.contains("1 deny finding(s)"));

        let opts = Options {
            root: PathBuf::from("/nonexistent/l2s-lint-root"),
            format: Format::Text,
            update_baseline: false,
        };
        let (code, _, err) = run_to_strings(&opts);
        assert_eq!(code, 2);
        assert!(err.contains("error:"));
    }

    #[test]
    fn ratchet_fails_growth_and_update_baseline_resets_it() {
        let warny = format!("{HEADER}pub fn f(x: u64) -> f64 {{ x as f64 }}\n");
        let ws = Workspace::new(&[("core/src/lib.rs", warny.as_str())]);
        // Empty committed baseline: the warn finding is growth.
        fs::write(
            ws.root.join("lint-baseline.json"),
            "{\n  \"version\": 1,\n  \"warn\": {}\n}\n",
        )
        .unwrap();
        let opts = Options {
            root: ws.root.clone(),
            format: Format::Text,
            update_baseline: false,
        };
        let (code, out, _) = run_to_strings(&opts);
        assert_eq!(code, 1, "warn growth over the baseline fails the run");
        assert!(out.contains("baseline: warn[lossy-cast]"));

        let opts = Options {
            root: ws.root.clone(),
            format: Format::Text,
            update_baseline: true,
        };
        let (code, _, err) = run_to_strings(&opts);
        assert_eq!(code, 0, "--update-baseline tolerates current counts");
        assert!(err.contains("baseline regenerated"));
        let written = fs::read_to_string(ws.root.join("lint-baseline.json")).unwrap();
        assert!(written.contains("\"crates/core/src/lib.rs\": 1"));
    }

    #[test]
    fn json_output_is_byte_stable_across_runs() {
        let dirty = format!(
            "{HEADER}pub fn f(v: Option<u32>) -> u32 {{ v.unwrap() }}\n\
             pub fn g(x: u64) -> f64 {{ x as f64 }}\n"
        );
        let ws = Workspace::new(&[("core/src/lib.rs", dirty.as_str())]);
        let opts = Options {
            root: ws.root.clone(),
            format: Format::Json,
            update_baseline: false,
        };
        let (code_a, out_a, _) = run_to_strings(&opts);
        let (code_b, out_b, _) = run_to_strings(&opts);
        assert_eq!(code_a, code_b);
        assert_eq!(
            out_a, out_b,
            "JSON report must be byte-identical run to run"
        );
        assert!(out_a.contains("\"rule\": \"panic\""));
        assert!(out_a.contains("\"severity\": \"warn\""));
        assert!(out_a.contains("\"summary\""));
    }

    #[test]
    fn options_parse_handles_formats_roots_and_bad_flags() {
        let opts = Options::parse(["--format".to_string(), "json".to_string()]).unwrap();
        assert_eq!(opts.format, Format::Json);
        let opts = Options::parse(["--format=text".to_string(), "/tmp/x".to_string()]).unwrap();
        assert_eq!(opts.format, Format::Text);
        assert_eq!(opts.root, PathBuf::from("/tmp/x"));
        let opts = Options::parse(["--update-baseline".to_string()]).unwrap();
        assert!(opts.update_baseline);
        assert!(Options::parse(["--format".to_string(), "xml".to_string()]).is_err());
        assert!(Options::parse(["--bogus".to_string()]).is_err());
        assert!(Options::parse(["a".to_string(), "b".to_string()]).is_err());
    }
}
