//! Minimal benchmark harness with a `criterion`-compatible API surface.
//!
//! The workspace's `benches/` files were written against the `criterion`
//! crate, which is unavailable here (no crates.io registry access), so this
//! in-tree shim supplies the subset they use: [`Criterion`],
//! [`Bencher::iter`], benchmark groups with `sample_size` /
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up briefly, then time batches
//! of iterations for a fixed wall-clock budget and report the mean
//! time/iteration. There is no statistical analysis, HTML report, or
//! baseline comparison. (As a benchmark driver this crate is exempt from
//! the workspace's wall-clock lint rule, which governs simulation crates.)

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock measurement budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measurement starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (`Criterion::benchmark_group`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; present for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to each benchmark closure; `iter` performs the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` and records the mean cost.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: let caches/allocators settle and estimate per-call cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose a batch size that keeps clock reads off the hot path for
        // sub-microsecond routines.
        let batch = (warm_iters / 64).max(1);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE_BUDGET {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement: Bencher::iter was not called)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
    println!(
        "{name:<40} {:>12} ns/iter ({} iters in {:.2?})",
        per_iter, b.iters, b.elapsed
    );
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }
}
