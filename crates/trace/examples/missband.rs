use l2s_trace::TraceSpec;

fn main() {
    // Sequential-server 32 MB LRU miss rate per trace (paper: 9-28%).
    for spec in TraceSpec::paper_presets() {
        let trace = spec.generate(42);
        let mut cache = l2s_cache_sim::Lru::new(32.0 * 1024.0);
        // warm once, then measure
        for &f in trace.requests() {
            cache.access(f.raw(), trace.files().size_kb(f));
        }
        cache.hits = 0;
        cache.misses = 0;
        for &f in trace.requests() {
            cache.access(f.raw(), trace.files().size_kb(f));
        }
        println!(
            "{:>9}: miss = {:.1}%  (avg_req {:.1} KB, alpha target {:.2})",
            spec.name,
            100.0 * cache.misses as f64 / (cache.hits + cache.misses) as f64,
            trace.avg_request_kb(),
            spec.alpha
        );
    }
}

mod l2s_cache_sim {
    use std::collections::HashMap;
    pub struct Lru {
        cap: f64,
        used: f64,
        tick: u64,
        pub hits: u64,
        pub misses: u64,
        map: HashMap<u32, (f64, u64)>,
    }
    impl Lru {
        pub fn new(cap: f64) -> Self {
            Lru {
                cap,
                used: 0.0,
                tick: 0,
                hits: 0,
                misses: 0,
                map: HashMap::new(),
            }
        }
        pub fn access(&mut self, f: u32, kb: f64) {
            self.tick += 1;
            if let Some(e) = self.map.get_mut(&f) {
                e.1 = self.tick;
                self.hits += 1;
                return;
            }
            self.misses += 1;
            if kb > self.cap {
                return;
            }
            while self.used + kb > self.cap {
                let (&victim, _) = self.map.iter().min_by_key(|(_, &(_, t))| t).unwrap();
                let (vkb, _) = self.map.remove(&victim).unwrap();
                self.used -= vkb;
            }
            self.map.insert(f, (kb, self.tick));
            self.used += kb;
        }
    }
}
