//! Property-based tests for the trace substrate.

use l2s_trace::{clf, TraceSpec, TraceStats};
use proptest::prelude::*;

proptest! {
    /// The CLF parser never panics on arbitrary input and only ever
    /// produces complete GET requests.
    #[test]
    fn clf_parser_total(input in "\\PC{0,300}") {
        let _ = clf::parse_line(&input);
        let trace = clf::parse_log("fuzz", &input);
        prop_assert!(trace.len() <= input.lines().count());
    }

    /// Structured random CLF logs parse into consistent traces.
    #[test]
    fn clf_structured_round_trip(
        entries in prop::collection::vec(
            (0u32..20, 1u64..1_000_000, prop::bool::ANY, prop::bool::ANY),
            0..50,
        )
    ) {
        let mut log = String::new();
        let mut expected = 0usize;
        for (path_id, bytes, ok_status, is_get) in &entries {
            let status = if *ok_status { 200 } else { 404 };
            let method = if *is_get { "GET" } else { "POST" };
            log.push_str(&format!(
                "host{path_id} - - [01/Jan/2000:00:00:00 +0000] \"{method} /f{path_id} HTTP/1.0\" {status} {bytes}\n"
            ));
            if *ok_status && *is_get {
                expected += 1;
            }
        }
        let trace = clf::parse_log("structured", &log);
        prop_assert_eq!(trace.len(), expected);
        // Every recorded size is the max over that path's entries.
        for (id, kb) in trace.files().iter() {
            prop_assert!(kb > 0.0);
            let _ = id;
        }
    }

    /// Generated traces always satisfy their structural contract.
    #[test]
    fn generator_structural_contract(
        files in 10usize..2_000,
        requests in 10usize..5_000,
        alpha in 0.1f64..1.3,
        avg_file in 2.0f64..100.0,
        ratio in 0.4f64..1.1,
        seed in any::<u64>(),
    ) {
        let spec = TraceSpec {
            name: "prop".into(),
            num_files: files,
            avg_file_kb: avg_file,
            num_requests: requests,
            avg_request_kb: avg_file * ratio,
            alpha,
            size_sigma: 1.2,
            temporal: 0.3,
            temporal_window: 200,
        };
        let trace = spec.generate(seed);
        prop_assert_eq!(trace.files().len(), files);
        prop_assert_eq!(trace.len(), requests);
        for (_, kb) in trace.files().iter() {
            prop_assert!(kb > 0.0 && kb.is_finite());
        }
        // The calibrated mean file size lands near the target.
        let mean = trace.files().avg_file_kb();
        prop_assert!(
            (mean / avg_file - 1.0).abs() < 0.05,
            "mean {mean} vs target {avg_file}"
        );
        // Stats never panic and are internally consistent.
        let stats = TraceStats::compute(&trace);
        prop_assert!(stats.distinct_files <= files);
        prop_assert!(stats.working_set_kb <= trace.files().total_kb() + 1e-6);
    }
}
