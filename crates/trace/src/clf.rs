//! Common Log Format parsing.
//!
//! The paper's traces are standard httpd access logs. When a real log is
//! available it can be ingested with [`parse_log`]; the rest of the
//! workspace then treats it identically to a synthetic trace. Following
//! Section 5.1, incomplete transfers are dropped: only successful `GET`
//! requests with a known, positive size are kept.

use crate::{FileId, FileSet, Trace};
use l2s_util::cast;
use std::collections::BTreeMap;

/// Interns URL paths as dense [`FileId`]s in first-seen order.
///
/// The interner is the single point where external file identities (log
/// paths) become the dense `u32` indices the rest of the workspace is
/// built on: ids are handed out consecutively from 0, so downstream
/// per-file state can be a flat `Vec` indexed by [`FileId::index`].
/// The map is ordered (`BTreeMap`) only because interning happens at
/// parse time, far off the simulator's hot path, and the determinism
/// lint bans hash containers in this crate wholesale.
#[derive(Clone, Debug, Default)]
pub struct FileInterner {
    ids: BTreeMap<String, FileId>,
}

impl FileInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `path`'s id, assigning the next dense index on first sight.
    pub fn intern(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = FileId::from_raw(cast::index_u32(self.ids.len()));
        self.ids.insert(path.to_string(), id);
        id
    }

    /// The id previously assigned to `path`, if any.
    pub fn get(&self, path: &str) -> Option<FileId> {
        self.ids.get(path).copied()
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The interned paths in dense-id order (index `i` is the path of
    /// `FileId(i)`).
    pub fn into_paths(self) -> Vec<String> {
        let mut paths = vec![String::new(); self.ids.len()];
        for (path, id) in self.ids {
            paths[id.index()] = path;
        }
        paths
    }
}

/// One parsed access-log line.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Requested URL path.
    pub path: String,
    /// HTTP method (`GET`, `POST`, ...).
    pub method: String,
    /// Response status code.
    pub status: u16,
    /// Response size in bytes, when reported.
    pub bytes: Option<u64>,
}

/// Parses one Common Log Format line:
///
/// ```text
/// host ident authuser [date] "METHOD /path PROTO" status bytes
/// ```
///
/// Returns `None` for lines that do not match the format.
///
/// The request field is located structurally, not as the first quoted
/// span: real logs put arbitrary client-supplied text in the ident and
/// authuser fields, so a stray `"` there used to shift the request field
/// and yield a garbage entry. The opening quote is anchored on a known
/// HTTP method and the closing quote on the numeric status that must
/// follow it, which also keeps Combined Log Format (trailing quoted
/// referrer/user-agent fields) parsing correctly.
pub fn parse_line(line: &str) -> Option<LogEntry> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let (quote_start, quote_end) = request_span(line)?;
    let request = &line[quote_start + 1..quote_end];
    let mut req_parts = request.split_whitespace();
    let method = req_parts.next()?.to_string();
    let path = req_parts.next()?.to_string();

    let tail = line[quote_end + 1..].trim();
    let mut tail_parts = tail.split_whitespace();
    let status: u16 = tail_parts.next()?.parse().ok()?;
    let bytes = match tail_parts.next() {
        Some("-") | None => None,
        Some(b) => b.parse::<u64>().ok(),
    };
    Some(LogEntry {
        path,
        method,
        status,
        bytes,
    })
}

/// HTTP methods recognized when anchoring the request field's opening
/// quote (RFC 9110's method registry plus `PATCH`).
const METHODS: [&str; 9] = [
    "GET", "HEAD", "POST", "PUT", "DELETE", "CONNECT", "OPTIONS", "TRACE", "PATCH",
];

/// Finds the byte offsets of the quotes delimiting the request field:
/// the first `"` immediately followed by a known method and a space, and
/// the first subsequent `"` whose next non-space character is a digit
/// (the status code). Returns `None` when no such pair exists.
fn request_span(line: &str) -> Option<(usize, usize)> {
    let mut from = 0;
    let open = loop {
        let i = from + line[from..].find('"')?;
        let rest = &line[i + 1..];
        if METHODS
            .iter()
            .any(|m| rest.strip_prefix(m).is_some_and(|r| r.starts_with(' ')))
        {
            break i;
        }
        from = i + 1;
    };
    let mut from = open + 1;
    loop {
        let i = from + line[from..].find('"')?;
        let after = line[i + 1..].trim_start();
        if after.starts_with(|c: char| c.is_ascii_digit()) {
            break Some((open, i));
        }
        from = i + 1;
    }
}

/// Builds a [`Trace`] from Common Log Format text.
///
/// Keeps successful (`status 200`) `GET` requests whose size is reported
/// and positive, mirroring the paper's elimination of incomplete
/// requests. A file's size is the largest size ever reported for its
/// path (logs record partial transfers as smaller byte counts).
pub fn parse_log(name: &str, text: &str) -> Trace {
    let mut interner = FileInterner::new();
    let mut sizes_kb: Vec<f64> = Vec::new();
    let mut requests: Vec<FileId> = Vec::new();

    for line in text.lines() {
        let Some(entry) = parse_line(line) else {
            continue;
        };
        if entry.method != "GET" || entry.status != 200 {
            continue;
        }
        let Some(bytes) = entry.bytes else { continue };
        if bytes == 0 {
            continue;
        }
        let kb = cast::exact_f64(bytes) / 1024.0;
        let id = interner.intern(&entry.path);
        if id.index() == sizes_kb.len() {
            sizes_kb.push(kb);
        } else {
            sizes_kb[id.index()] = sizes_kb[id.index()].max(kb);
        }
        requests.push(id);
    }
    Trace::new(name, FileSet::new(sizes_kb), requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
host1 - - [01/Mar/2000:00:00:01 -0500] "GET /index.html HTTP/1.0" 200 2048
host2 - - [01/Mar/2000:00:00:02 -0500] "GET /img/logo.gif HTTP/1.0" 200 10240
host1 - - [01/Mar/2000:00:00:03 -0500] "GET /index.html HTTP/1.0" 200 2048
host3 - - [01/Mar/2000:00:00:04 -0500] "GET /missing.html HTTP/1.0" 404 512
host4 - - [01/Mar/2000:00:00:05 -0500] "POST /cgi-bin/form HTTP/1.0" 200 128
host5 - - [01/Mar/2000:00:00:06 -0500] "GET /truncated.bin HTTP/1.0" 200 -
host6 - - [01/Mar/2000:00:00:07 -0500] "GET /index.html HTTP/1.0" 304 0
"#;

    #[test]
    fn parses_well_formed_line() {
        let e = parse_line(
            r#"foo.com - - [01/Jan/2000:10:00:00 +0000] "GET /a/b.html HTTP/1.0" 200 1234"#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/a/b.html");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(1234));
    }

    #[test]
    fn parses_missing_bytes_as_none() {
        let e = parse_line(r#"h - - [d] "GET /x HTTP/1.0" 200 -"#).unwrap();
        assert_eq!(e.bytes, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not a log line"), None);
        assert_eq!(parse_line(r#"h - - [d] "GET" 200 5"#), None);
        assert_eq!(
            parse_line(r#"h - - [d] "GET /x HTTP/1.0" notanumber 5"#),
            None
        );
    }

    #[test]
    fn stray_quote_in_ident_does_not_shift_the_request_field() {
        // Regression: the parser used to take the *first* quoted span as
        // the request, so client-supplied ident/authuser text containing
        // a '"' produced a garbage entry (method `evil`, path `user`).
        let e = parse_line(
            r#"h "evil user [01/Jan/2000:10:00:00 +0000] "GET /x.html HTTP/1.0" 200 77"#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/x.html");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(77));
    }

    #[test]
    fn quoted_non_request_text_alone_is_rejected() {
        // A quoted span that is not `METHOD <sp>...` must not be treated
        // as the request field.
        assert_eq!(parse_line(r#"h "quoted junk" - [d] 200 5"#), None);
        assert_eq!(
            parse_line(r#"h - - [d] "NOTAMETHOD /x HTTP/1.0" 200 5"#),
            None
        );
        // Method followed by the closing quote instead of a space.
        assert_eq!(parse_line(r#"h - - [d] "GET" 200 5"#), None);
    }

    #[test]
    fn combined_log_format_trailing_quotes_parse() {
        // Combined Log Format appends quoted referrer and user-agent
        // fields; anchoring the closing quote on the status keeps them
        // out of the request span.
        let e = parse_line(
            r#"h - - [d] "GET /a.html HTTP/1.0" 200 321 "http://ref.example/" "Mozilla/4.08 [en] (Win98)""#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/a.html");
        assert_eq!(e.bytes, Some(321));
    }

    #[test]
    fn quote_inside_the_path_recovers() {
        // The closing quote is the one followed by the numeric status, so
        // an embedded quote stays part of the path.
        let e = parse_line(r#"h - - [d] "GET /a"b.html HTTP/1.0" 200 5"#).unwrap();
        assert_eq!(e.path, "/a\"b.html");
    }

    #[test]
    fn builds_trace_keeping_only_complete_gets() {
        let t = parse_log("sample", SAMPLE);
        // index.html twice + logo.gif once; 404/POST/dash/304 dropped.
        assert_eq!(t.len(), 3);
        assert_eq!(t.files().len(), 2);
        assert!((t.files().size_kb(0) - 2.0).abs() < 1e-9);
        assert!((t.files().size_kb(1) - 10.0).abs() < 1e-9);
        assert_eq!(t.requests(), &[0, 1, 0]);
    }

    #[test]
    fn partial_transfers_keep_the_largest_size() {
        let log = r#"
h - - [d] "GET /big.iso HTTP/1.0" 200 1024
h - - [d] "GET /big.iso HTTP/1.0" 200 1048576
h - - [d] "GET /big.iso HTTP/1.0" 200 2048
"#;
        let t = parse_log("partials", log);
        assert_eq!(t.files().len(), 1);
        assert!((t.files().size_kb(0) - 1024.0).abs() < 1e-9);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn interner_hands_out_dense_first_seen_ids() {
        let mut i = FileInterner::new();
        assert!(i.is_empty());
        let a = i.intern("/a.html");
        let b = i.intern("/b.html");
        assert_eq!(i.intern("/a.html"), a, "re-interning is stable");
        assert_eq!((a, b), (FileId::from_raw(0), FileId::from_raw(1)));
        assert_eq!(i.get("/b.html"), Some(b));
        assert_eq!(i.get("/missing"), None);
        assert_eq!(i.len(), 2);
        assert_eq!(i.into_paths(), vec!["/a.html", "/b.html"]);
    }

    #[test]
    fn empty_log_is_empty_trace() {
        let t = parse_log("empty", "");
        assert!(t.is_empty());
        assert_eq!(t.files().len(), 0);
    }
}
