//! Common Log Format parsing.
//!
//! The paper's traces are standard httpd access logs. When a real log is
//! available it can be ingested with [`parse_log`]; the rest of the
//! workspace then treats it identically to a synthetic trace. Following
//! Section 5.1, incomplete transfers are dropped: only successful `GET`
//! requests with a known, positive size are kept.
//!
//! For *live* ingestion — tailing a log file or stdin — [`ClfStream`]
//! pulls the same filtered request sequence one line at a time with
//! memory bounded by the number of *distinct* files, not the log
//! length, and carries each request's arrival time parsed from the CLF
//! timestamp (`[dd/Mon/yyyy:hh:mm:ss ±zzzz]`).

use crate::{FileId, FileSet, Trace};
use l2s_util::cast;
use std::collections::BTreeMap;
use std::io::{self, BufRead};

/// Interns URL paths as dense [`FileId`]s in first-seen order.
///
/// The interner is the single point where external file identities (log
/// paths) become the dense `u32` indices the rest of the workspace is
/// built on: ids are handed out consecutively from 0, so downstream
/// per-file state can be a flat `Vec` indexed by [`FileId::index`].
/// The map is ordered (`BTreeMap`) only because interning happens at
/// parse time, far off the simulator's hot path, and the determinism
/// lint bans hash containers in this crate wholesale.
#[derive(Clone, Debug, Default)]
pub struct FileInterner {
    ids: BTreeMap<String, FileId>,
}

impl FileInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `path`'s id, assigning the next dense index on first sight.
    pub fn intern(&mut self, path: &str) -> FileId {
        if let Some(&id) = self.ids.get(path) {
            return id;
        }
        let id = FileId::from_raw(cast::index_u32(self.ids.len()));
        self.ids.insert(path.to_string(), id);
        id
    }

    /// The id previously assigned to `path`, if any.
    pub fn get(&self, path: &str) -> Option<FileId> {
        self.ids.get(path).copied()
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The interned paths in dense-id order (index `i` is the path of
    /// `FileId(i)`).
    pub fn into_paths(self) -> Vec<String> {
        let mut paths = vec![String::new(); self.ids.len()];
        for (path, id) in self.ids {
            paths[id.index()] = path;
        }
        paths
    }
}

/// One parsed access-log line.
#[derive(Clone, Debug, PartialEq)]
pub struct LogEntry {
    /// Requested URL path.
    pub path: String,
    /// HTTP method (`GET`, `POST`, ...).
    pub method: String,
    /// Response status code.
    pub status: u16,
    /// Response size in bytes, when reported.
    pub bytes: Option<u64>,
    /// Request time as seconds since the Unix epoch, when the line
    /// carries a parseable `[dd/Mon/yyyy:hh:mm:ss ±zzzz]` field.
    pub timestamp_s: Option<i64>,
}

/// Parses one Common Log Format line:
///
/// ```text
/// host ident authuser [date] "METHOD /path PROTO" status bytes
/// ```
///
/// Returns `None` for lines that do not match the format.
///
/// The request field is located structurally, not as the first quoted
/// span: real logs put arbitrary client-supplied text in the ident and
/// authuser fields, so a stray `"` there used to shift the request field
/// and yield a garbage entry. The opening quote is anchored on a known
/// HTTP method and the closing quote on the numeric status that must
/// follow it, which also keeps Combined Log Format (trailing quoted
/// referrer/user-agent fields) parsing correctly.
pub fn parse_line(line: &str) -> Option<LogEntry> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let (quote_start, quote_end) = request_span(line)?;
    let request = &line[quote_start + 1..quote_end];
    let mut req_parts = request.split_whitespace();
    let method = req_parts.next()?.to_string();
    let path = req_parts.next()?.to_string();

    let tail = line[quote_end + 1..].trim();
    let mut tail_parts = tail.split_whitespace();
    let status: u16 = tail_parts.next()?.parse().ok()?;
    let bytes = match tail_parts.next() {
        Some("-") | None => None,
        Some(b) => b.parse::<u64>().ok(),
    };
    // The date field is the bracketed span nearest the request quote
    // (ident/authuser are client-supplied and may contain stray '[').
    let timestamp_s = line[..quote_start].rfind('[').and_then(|i| {
        let rest = &line[i + 1..quote_start];
        let end = rest.find(']')?;
        parse_clf_timestamp(&rest[..end])
    });
    Some(LogEntry {
        path,
        method,
        status,
        bytes,
        timestamp_s,
    })
}

/// Days from 1970-01-01 to `year`-`month`-`day` in the proleptic
/// Gregorian calendar (Howard Hinnant's `days_from_civil`), keeping the
/// crate dependency-free.
fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from(if month > 2 { month - 3 } else { month + 9 });
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Month number (1-12) for a CLF three-letter month name.
fn month_number(name: &str) -> Option<u32> {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    MONTHS
        .iter()
        .position(|&m| m == name)
        .map(|i| cast::index_u32(i + 1))
}

/// Seconds east of UTC for a `±HHMM` zone field.
fn parse_zone(zone: &str) -> Option<i64> {
    let (sign, digits) = match zone.as_bytes().first()? {
        b'+' => (1, &zone[1..]),
        b'-' => (-1, &zone[1..]),
        _ => return None,
    };
    if digits.len() != 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let hh: i64 = digits[..2].parse().ok()?;
    let mm: i64 = digits[2..].parse().ok()?;
    if hh > 23 || mm > 59 {
        return None;
    }
    Some(sign * (hh * 3600 + mm * 60))
}

/// Parses a CLF date field body (`dd/Mon/yyyy:hh:mm:ss ±zzzz`, without
/// the brackets) into seconds since the Unix epoch. Returns `None` for
/// anything that does not match.
fn parse_clf_timestamp(s: &str) -> Option<i64> {
    let (date_time, zone) = s.trim().split_once(' ')?;
    let mut dmy = date_time.splitn(3, '/');
    let day: u32 = dmy.next()?.parse().ok()?;
    let month = month_number(dmy.next()?)?;
    let mut hms = dmy.next()?.split(':');
    let year: i64 = hms.next()?.parse().ok()?;
    let hh: i64 = hms.next()?.parse().ok()?;
    let mm: i64 = hms.next()?.parse().ok()?;
    let ss: i64 = hms.next()?.parse().ok()?;
    if hms.next().is_some() || !(1..=31).contains(&day) || hh > 23 || mm > 59 || ss > 60 {
        return None;
    }
    let offset = parse_zone(zone)?;
    Some(days_from_civil(year, month, day) * 86_400 + hh * 3600 + mm * 60 + ss - offset)
}

/// HTTP methods recognized when anchoring the request field's opening
/// quote (RFC 9110's method registry plus `PATCH`).
const METHODS: [&str; 9] = [
    "GET", "HEAD", "POST", "PUT", "DELETE", "CONNECT", "OPTIONS", "TRACE", "PATCH",
];

/// Finds the byte offsets of the quotes delimiting the request field:
/// the first `"` immediately followed by a known method and a space, and
/// the first subsequent `"` whose next non-space character is a digit
/// (the status code). Returns `None` when no such pair exists.
fn request_span(line: &str) -> Option<(usize, usize)> {
    let mut from = 0;
    let open = loop {
        let i = from + line[from..].find('"')?;
        let rest = &line[i + 1..];
        if METHODS
            .iter()
            .any(|m| rest.strip_prefix(m).is_some_and(|r| r.starts_with(' ')))
        {
            break i;
        }
        from = i + 1;
    };
    let mut from = open + 1;
    loop {
        let i = from + line[from..].find('"')?;
        let after = line[i + 1..].trim_start();
        if after.starts_with(|c: char| c.is_ascii_digit()) {
            break Some((open, i));
        }
        from = i + 1;
    }
}

/// Builds a [`Trace`] from Common Log Format text.
///
/// Keeps successful (`status 200`) `GET` requests whose size is reported
/// and positive, mirroring the paper's elimination of incomplete
/// requests. A file's size is the largest size ever reported for its
/// path (logs record partial transfers as smaller byte counts).
pub fn parse_log(name: &str, text: &str) -> Trace {
    let mut interner = FileInterner::new();
    let mut sizes_kb: Vec<f64> = Vec::new();
    let mut requests: Vec<FileId> = Vec::new();

    for line in text.lines() {
        let Some(entry) = parse_line(line) else {
            continue;
        };
        let Some(bytes) = kept_bytes(&entry) else {
            continue;
        };
        let kb = cast::exact_f64(bytes) / 1024.0;
        let id = interner.intern(&entry.path);
        if id.index() == sizes_kb.len() {
            sizes_kb.push(kb);
        } else {
            sizes_kb[id.index()] = sizes_kb[id.index()].max(kb);
        }
        requests.push(id);
    }
    Trace::new(name, FileSet::new(sizes_kb), requests)
}

/// The Section 5.1 keep-filter shared by [`parse_log`] and
/// [`ClfStream`]: successful `GET`s with a reported, positive size.
/// Returns the transfer size in bytes for kept entries.
fn kept_bytes(entry: &LogEntry) -> Option<u64> {
    if entry.method != "GET" || entry.status != 200 {
        return None;
    }
    match entry.bytes {
        Some(b) if b > 0 => Some(b),
        _ => None,
    }
}

/// Ingestion counters for a [`ClfStream`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClfStreamStats {
    /// Complete lines read, whether or not they were kept.
    pub lines: u64,
    /// Lines that passed parsing and the Section 5.1 keep-filter.
    pub kept: u64,
    /// Lines dropped: unparseable, non-`GET`, non-200, or sizeless.
    pub dropped: u64,
    /// Kept lines whose timestamp ran backwards and was clamped to the
    /// previous arrival time (log writers interleave buffered workers).
    pub out_of_order: u64,
    /// Kept lines with no parseable date field (arrival time reuses the
    /// previous entry's).
    pub missing_timestamp: u64,
    /// Whether the input ended mid-line (a final line with no `\n`,
    /// typically a log still being written); the fragment is dropped.
    pub truncated_tail: bool,
}

/// One kept request pulled from a [`ClfStream`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClfRecord {
    /// Dense interned file id (index into [`ClfStream::sizes_kb`]).
    pub file: FileId,
    /// Largest size reported for this file so far, in KB.
    pub size_kb: f64,
    /// Arrival time in seconds since the stream's first kept entry,
    /// clamped monotone non-decreasing.
    pub at_s: f64,
}

/// A streaming CLF reader: pulls one kept request at a time from any
/// [`BufRead`] source (a log file, stdin, a pipe being tailed).
///
/// Memory is bounded by the number of *distinct* files plus one line
/// buffer — independent of log length — so arbitrarily large logs can
/// be replayed without loading them ([`ClfStream::state_bytes`] exposes
/// the resident footprint for tests to pin). Timestamps are parsed from
/// the CLF date field, rebased to the first kept entry, and clamped
/// monotone; a truncated final line (log mid-write) is dropped and
/// flagged rather than half-parsed.
#[derive(Debug)]
pub struct ClfStream<R> {
    reader: R,
    interner: FileInterner,
    sizes_kb: Vec<f64>,
    path_bytes: usize,
    line: String,
    base_ts_s: Option<i64>,
    last_at_s: f64,
    stats: ClfStreamStats,
}

impl<R: BufRead> ClfStream<R> {
    /// A stream over `reader`, consuming it line by line on demand.
    pub fn new(reader: R) -> Self {
        ClfStream {
            reader,
            interner: FileInterner::new(),
            sizes_kb: Vec::new(),
            path_bytes: 0,
            line: String::new(),
            base_ts_s: None,
            last_at_s: 0.0,
            stats: ClfStreamStats::default(),
        }
    }

    /// Pulls the next kept request, or `Ok(None)` at end of input.
    /// Dropped lines are consumed silently (counted in
    /// [`ClfStream::stats`]); I/O errors surface as `Err`.
    pub fn next_record(&mut self) -> io::Result<Option<ClfRecord>> {
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                return Ok(None);
            }
            if !self.line.ends_with('\n') {
                // Final line with no terminator: the writer is mid-line
                // (or the file was cut). Parsing the fragment would
                // fabricate a request from half a record.
                self.stats.truncated_tail = true;
                return Ok(None);
            }
            self.stats.lines += 1;
            let Some(file) = parse_line(&self.line).and_then(|e| {
                let b = kept_bytes(&e)?;
                self.note_arrival(e.timestamp_s);
                Some(self.intern(&e.path, cast::exact_f64(b) / 1024.0))
            }) else {
                self.stats.dropped += 1;
                continue;
            };
            self.stats.kept += 1;
            return Ok(Some(ClfRecord {
                file,
                size_kb: self.sizes_kb[file.index()],
                at_s: self.last_at_s,
            }));
        }
    }

    /// Folds `timestamp_s` into the monotone arrival clock.
    fn note_arrival(&mut self, timestamp_s: Option<i64>) {
        match (timestamp_s, self.base_ts_s) {
            (Some(ts), None) => {
                self.base_ts_s = Some(ts);
                self.last_at_s = 0.0;
            }
            (Some(ts), Some(base)) => {
                let at_s = f64::from(cast::small_i32(ts.abs_diff(base)));
                let at_s = if ts < base { -at_s } else { at_s };
                if at_s < self.last_at_s {
                    self.stats.out_of_order += 1;
                } else {
                    self.last_at_s = at_s;
                }
            }
            (None, _) => self.stats.missing_timestamp += 1,
        }
    }

    /// Interns `path`, growing or max-merging the size table, and
    /// returns its dense id.
    fn intern(&mut self, path: &str, kb: f64) -> FileId {
        let id = self.interner.intern(path);
        if id.index() == self.sizes_kb.len() {
            self.sizes_kb.push(kb);
            self.path_bytes += path.len();
        } else {
            self.sizes_kb[id.index()] = self.sizes_kb[id.index()].max(kb);
        }
        id
    }

    /// Largest size seen per file in KB, indexed by dense file id.
    pub fn sizes_kb(&self) -> &[f64] {
        &self.sizes_kb
    }

    /// Number of distinct files seen so far.
    pub fn distinct_files(&self) -> usize {
        self.sizes_kb.len()
    }

    /// Ingestion counters so far.
    pub fn stats(&self) -> ClfStreamStats {
        self.stats
    }

    /// Approximate resident state in bytes: the line buffer plus the
    /// per-distinct-file tables. Deliberately excludes the reader so
    /// tests can assert the *stream's* footprint stays O(distinct
    /// files) on logs far larger than it.
    pub fn state_bytes(&self) -> usize {
        self.line.capacity()
            + self.sizes_kb.capacity() * std::mem::size_of::<f64>()
            + self.path_bytes
            + self.interner.len() * std::mem::size_of::<(usize, FileId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
host1 - - [01/Mar/2000:00:00:01 -0500] "GET /index.html HTTP/1.0" 200 2048
host2 - - [01/Mar/2000:00:00:02 -0500] "GET /img/logo.gif HTTP/1.0" 200 10240
host1 - - [01/Mar/2000:00:00:03 -0500] "GET /index.html HTTP/1.0" 200 2048
host3 - - [01/Mar/2000:00:00:04 -0500] "GET /missing.html HTTP/1.0" 404 512
host4 - - [01/Mar/2000:00:00:05 -0500] "POST /cgi-bin/form HTTP/1.0" 200 128
host5 - - [01/Mar/2000:00:00:06 -0500] "GET /truncated.bin HTTP/1.0" 200 -
host6 - - [01/Mar/2000:00:00:07 -0500] "GET /index.html HTTP/1.0" 304 0
"#;

    #[test]
    fn parses_well_formed_line() {
        let e = parse_line(
            r#"foo.com - - [01/Jan/2000:10:00:00 +0000] "GET /a/b.html HTTP/1.0" 200 1234"#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/a/b.html");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(1234));
    }

    #[test]
    fn parses_missing_bytes_as_none() {
        let e = parse_line(r#"h - - [d] "GET /x HTTP/1.0" 200 -"#).unwrap();
        assert_eq!(e.bytes, None);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_line(""), None);
        assert_eq!(parse_line("not a log line"), None);
        assert_eq!(parse_line(r#"h - - [d] "GET" 200 5"#), None);
        assert_eq!(
            parse_line(r#"h - - [d] "GET /x HTTP/1.0" notanumber 5"#),
            None
        );
    }

    #[test]
    fn stray_quote_in_ident_does_not_shift_the_request_field() {
        // Regression: the parser used to take the *first* quoted span as
        // the request, so client-supplied ident/authuser text containing
        // a '"' produced a garbage entry (method `evil`, path `user`).
        let e = parse_line(
            r#"h "evil user [01/Jan/2000:10:00:00 +0000] "GET /x.html HTTP/1.0" 200 77"#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/x.html");
        assert_eq!(e.status, 200);
        assert_eq!(e.bytes, Some(77));
    }

    #[test]
    fn quoted_non_request_text_alone_is_rejected() {
        // A quoted span that is not `METHOD <sp>...` must not be treated
        // as the request field.
        assert_eq!(parse_line(r#"h "quoted junk" - [d] 200 5"#), None);
        assert_eq!(
            parse_line(r#"h - - [d] "NOTAMETHOD /x HTTP/1.0" 200 5"#),
            None
        );
        // Method followed by the closing quote instead of a space.
        assert_eq!(parse_line(r#"h - - [d] "GET" 200 5"#), None);
    }

    #[test]
    fn combined_log_format_trailing_quotes_parse() {
        // Combined Log Format appends quoted referrer and user-agent
        // fields; anchoring the closing quote on the status keeps them
        // out of the request span.
        let e = parse_line(
            r#"h - - [d] "GET /a.html HTTP/1.0" 200 321 "http://ref.example/" "Mozilla/4.08 [en] (Win98)""#,
        )
        .unwrap();
        assert_eq!(e.method, "GET");
        assert_eq!(e.path, "/a.html");
        assert_eq!(e.bytes, Some(321));
    }

    #[test]
    fn quote_inside_the_path_recovers() {
        // The closing quote is the one followed by the numeric status, so
        // an embedded quote stays part of the path.
        let e = parse_line(r#"h - - [d] "GET /a"b.html HTTP/1.0" 200 5"#).unwrap();
        assert_eq!(e.path, "/a\"b.html");
    }

    #[test]
    fn builds_trace_keeping_only_complete_gets() {
        let t = parse_log("sample", SAMPLE);
        // index.html twice + logo.gif once; 404/POST/dash/304 dropped.
        assert_eq!(t.len(), 3);
        assert_eq!(t.files().len(), 2);
        assert!((t.files().size_kb(0) - 2.0).abs() < 1e-9);
        assert!((t.files().size_kb(1) - 10.0).abs() < 1e-9);
        assert_eq!(t.requests(), &[0, 1, 0]);
    }

    #[test]
    fn partial_transfers_keep_the_largest_size() {
        let log = r#"
h - - [d] "GET /big.iso HTTP/1.0" 200 1024
h - - [d] "GET /big.iso HTTP/1.0" 200 1048576
h - - [d] "GET /big.iso HTTP/1.0" 200 2048
"#;
        let t = parse_log("partials", log);
        assert_eq!(t.files().len(), 1);
        assert!((t.files().size_kb(0) - 1024.0).abs() < 1e-9);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn interner_hands_out_dense_first_seen_ids() {
        let mut i = FileInterner::new();
        assert!(i.is_empty());
        let a = i.intern("/a.html");
        let b = i.intern("/b.html");
        assert_eq!(i.intern("/a.html"), a, "re-interning is stable");
        assert_eq!((a, b), (FileId::from_raw(0), FileId::from_raw(1)));
        assert_eq!(i.get("/b.html"), Some(b));
        assert_eq!(i.get("/missing"), None);
        assert_eq!(i.len(), 2);
        assert_eq!(i.into_paths(), vec!["/a.html", "/b.html"]);
    }

    #[test]
    fn empty_log_is_empty_trace() {
        let t = parse_log("empty", "");
        assert!(t.is_empty());
        assert_eq!(t.files().len(), 0);
    }

    #[test]
    fn timestamp_parses_with_zone_offset() {
        // 01/Jan/2000:10:00:00 UTC = 946 720 800.
        let e =
            parse_line(r#"h - - [01/Jan/2000:10:00:00 +0000] "GET /x HTTP/1.0" 200 5"#).unwrap();
        assert_eq!(e.timestamp_s, Some(946_720_800));
        // Same instant expressed five hours behind UTC.
        let e =
            parse_line(r#"h - - [01/Jan/2000:05:00:00 -0500] "GET /x HTTP/1.0" 200 5"#).unwrap();
        assert_eq!(e.timestamp_s, Some(946_720_800));
        // An unparseable date field degrades to None, not a reject.
        let e = parse_line(r#"h - - [d] "GET /x HTTP/1.0" 200 5"#).unwrap();
        assert_eq!(e.timestamp_s, None);
    }

    #[test]
    fn days_from_civil_matches_known_epochs() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        // 2000 is a leap year (divisible by 400).
        assert_eq!(days_from_civil(2000, 2, 29), 11_016);
    }

    #[test]
    fn stream_yields_kept_requests_with_rebased_times() {
        let mut s = ClfStream::new(SAMPLE.as_bytes());
        let mut got = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            got.push((r.file.index(), r.at_s));
        }
        // Same keep-filter as parse_log: index, logo, index.
        assert_eq!(got, vec![(0, 0.0), (1, 1.0), (0, 2.0)]);
        let st = s.stats();
        assert_eq!(st.kept, 3);
        assert_eq!(st.dropped, 5); // blank first line + 404/POST/dash/304
        assert_eq!(st.out_of_order, 0);
        assert!(!st.truncated_tail);
        assert_eq!(s.distinct_files(), 2);
        assert!((s.sizes_kb()[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stream_drops_truncated_final_line() {
        let log = "h - - [01/Jan/2000:10:00:00 +0000] \"GET /a HTTP/1.0\" 200 5\n\
                   h - - [01/Jan/2000:10:00:01 +0000] \"GET /b HTTP/1.0\" 200 5\n\
                   h - - [01/Jan/2000:10:00:02 +0000] \"GET /c HTT";
        let mut s = ClfStream::new(log.as_bytes());
        assert!(s.next_record().unwrap().is_some());
        assert!(s.next_record().unwrap().is_some());
        assert_eq!(s.next_record().unwrap(), None, "fragment must not parse");
        assert!(s.stats().truncated_tail);
        assert_eq!(s.stats().kept, 2);
        // A trailing newline on the same content is NOT a truncation.
        let whole = format!("{log}P/1.0\" 200 5\n");
        let mut s = ClfStream::new(whole.as_bytes());
        let mut n = 0;
        while s.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(!s.stats().truncated_tail);
    }

    #[test]
    fn stream_clamps_out_of_order_timestamps() {
        let log = "h - - [01/Jan/2000:10:00:05 +0000] \"GET /a HTTP/1.0\" 200 5\n\
                   h - - [01/Jan/2000:10:00:02 +0000] \"GET /b HTTP/1.0\" 200 5\n\
                   h - - [01/Jan/2000:10:00:09 +0000] \"GET /c HTTP/1.0\" 200 5\n";
        let mut s = ClfStream::new(log.as_bytes());
        let mut at = Vec::new();
        while let Some(r) = s.next_record().unwrap() {
            at.push(r.at_s);
        }
        // The backwards step clamps to the previous arrival; later
        // entries resume from the true clock.
        assert_eq!(at, vec![0.0, 0.0, 4.0]);
        assert_eq!(s.stats().out_of_order, 1);
    }

    #[test]
    fn stream_state_is_bounded_by_distinct_files_not_log_length() {
        // A synthetic reader serving millions of requests over a small
        // file population, without the log ever existing in memory.
        struct Synth {
            next: u64,
            total: u64,
            buf: Vec<u8>,
        }
        impl io::Read for Synth {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.buf.is_empty() {
                    if self.next == self.total {
                        return Ok(0);
                    }
                    let f = self.next % 64;
                    let line = format!(
                        "h - - [01/Jan/2000:10:00:00 +0000] \"GET /f{f}.html HTTP/1.0\" 200 2048\n"
                    );
                    self.buf = line.into_bytes();
                    self.next += 1;
                }
                let n = out.len().min(self.buf.len());
                out[..n].copy_from_slice(&self.buf[..n]);
                self.buf.drain(..n);
                Ok(n)
            }
        }
        let total = 2_000_000u64;
        let reader = io::BufReader::new(Synth {
            next: 0,
            total,
            buf: Vec::new(),
        });
        let mut s = ClfStream::new(reader);
        let mut kept = 0u64;
        while s.next_record().unwrap().is_some() {
            kept += 1;
        }
        assert_eq!(kept, total);
        assert_eq!(s.distinct_files(), 64);
        // ~2M log lines (~150 MB of text) must leave only O(64 files)
        // of resident stream state.
        assert!(
            s.state_bytes() < 16 * 1024,
            "stream state grew with log length: {} bytes",
            s.state_bytes()
        );
    }
}
