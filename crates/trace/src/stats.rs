//! Trace characterization — the quantities of the paper's Table 2.

use crate::Trace;
use l2s_util::cast;

/// Summary statistics of a trace, matching the columns of Table 2 plus
/// the working-set size discussed in Section 5.1.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Number of files in the population ("Num files").
    pub num_files: usize,
    /// Mean file size in KB ("Avg file size").
    pub avg_file_kb: f64,
    /// Number of requests ("Num requests").
    pub num_requests: usize,
    /// Request-frequency-weighted mean file size in KB ("Avg req size").
    pub avg_request_kb: f64,
    /// Zipf exponent fitted to the rank–frequency curve ("α").
    pub alpha: f64,
    /// Total distinct bytes requested, in KB (the working set).
    pub working_set_kb: f64,
    /// Number of distinct files requested at least once.
    pub distinct_files: usize,
}

impl TraceStats {
    /// Computes all statistics for `trace`.
    pub fn compute(trace: &Trace) -> TraceStats {
        TraceStats {
            name: trace.name().to_string(),
            num_files: trace.files().len(),
            avg_file_kb: trace.files().avg_file_kb(),
            num_requests: trace.len(),
            avg_request_kb: trace.avg_request_kb(),
            alpha: estimate_alpha(trace),
            working_set_kb: trace.working_set_kb(),
            distinct_files: trace.distinct_files(),
        }
    }
}

/// Fits the Zipf exponent of a trace's rank–frequency curve by least
/// squares on `log(count) = c - α log(rank)`.
///
/// Only ranks whose count exceeds a small floor are used: the deep tail
/// of a finite sample flattens into counts of 1 and would bias the fit
/// (standard practice for Zipf estimation on access logs). Returns 0 for
/// traces with fewer than two usable ranks.
pub fn estimate_alpha(trace: &Trace) -> f64 {
    let mut counts: Vec<u64> = trace
        .request_counts()
        .into_iter()
        .filter(|&c| c > 0)
        .collect();
    if counts.len() < 2 {
        return 0.0;
    }
    counts.sort_unstable_by(|a, b| b.cmp(a));
    // Drop the undersampled tail (counts below ~5 observations).
    let usable: Vec<u64> = counts.iter().copied().take_while(|&c| c >= 5).collect();
    let points = if usable.len() >= 10 { usable } else { counts };
    let n = points.len().min(10_000);
    if n < 2 {
        return 0.0;
    }
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &c) in points.iter().take(n).enumerate() {
        let x = cast::len_f64(i + 1).ln();
        let y = cast::exact_f64(c).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let nf = cast::len_f64(n);
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    let slope = (nf * sxy - sx * sy) / denom;
    (-slope).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileSet, Trace};
    use l2s_util::DetRng;
    use l2s_zipf::ZipfSampler;

    fn zipf_trace(files: usize, requests: usize, alpha: f64, seed: u64) -> Trace {
        let sampler = ZipfSampler::new(files, alpha);
        let mut rng = DetRng::new(seed);
        let reqs: Vec<u32> = (0..requests)
            .map(|_| (sampler.sample(&mut rng) - 1) as u32)
            .collect();
        let sizes = vec![10.0; files];
        Trace::new("zipf", FileSet::new(sizes), reqs)
    }

    #[test]
    fn alpha_estimate_recovers_generating_exponent() {
        for true_alpha in [0.7, 0.9, 1.1] {
            let t = zipf_trace(2_000, 300_000, true_alpha, 42);
            let est = estimate_alpha(&t);
            assert!(
                (est - true_alpha).abs() < 0.12,
                "alpha {true_alpha}: estimated {est}"
            );
        }
    }

    #[test]
    fn alpha_of_uniform_trace_is_near_zero() {
        let files = FileSet::new(vec![1.0; 100]);
        // Perfectly uniform: each file requested exactly 50 times.
        let reqs: Vec<u32> = (0..5000).map(|i| (i % 100) as u32).collect();
        let t = Trace::new("uniform", files, reqs);
        let est = estimate_alpha(&t);
        assert!(est < 0.05, "estimated {est}");
    }

    #[test]
    fn alpha_degenerate_traces() {
        let files = FileSet::new(vec![1.0, 1.0]);
        let single = Trace::new("one", files.clone(), vec![0, 0, 0]);
        assert_eq!(estimate_alpha(&single), 0.0);
        let empty = Trace::new("none", files, Vec::<u32>::new());
        assert_eq!(estimate_alpha(&empty), 0.0);
    }

    #[test]
    fn stats_aggregate_all_fields() {
        let files = FileSet::new(vec![10.0, 20.0]);
        let t = Trace::new("mini", files, vec![0, 1, 0]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.name, "mini");
        assert_eq!(s.num_files, 2);
        assert_eq!(s.avg_file_kb, 15.0);
        assert_eq!(s.num_requests, 3);
        assert!((s.avg_request_kb - 40.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.working_set_kb, 30.0);
        assert_eq!(s.distinct_files, 2);
    }
}
