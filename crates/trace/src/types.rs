//! Core trace types.

/// Identifies one file served by the cluster (index into a [`FileSet`]).
pub type FileId = u32;

/// The population of files a trace requests, with their sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct FileSet {
    sizes_kb: Vec<f64>,
}

impl FileSet {
    /// Builds a file set from per-file sizes in KB. Panics if any size is
    /// non-positive or non-finite.
    pub fn new(sizes_kb: Vec<f64>) -> Self {
        assert!(
            sizes_kb.iter().all(|s| s.is_finite() && *s > 0.0),
            "file sizes must be positive and finite"
        );
        FileSet { sizes_kb }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes_kb.len()
    }

    /// True when the set holds no files.
    pub fn is_empty(&self) -> bool {
        self.sizes_kb.is_empty()
    }

    /// Size of `file` in KB.
    #[inline]
    pub fn size_kb(&self, file: FileId) -> f64 {
        self.sizes_kb[file as usize]
    }

    /// Sum of all file sizes in KB.
    pub fn total_kb(&self) -> f64 {
        self.sizes_kb.iter().sum()
    }

    /// Mean file size in KB (0 for an empty set).
    pub fn avg_file_kb(&self) -> f64 {
        if self.sizes_kb.is_empty() {
            0.0
        } else {
            self.total_kb() / self.sizes_kb.len() as f64
        }
    }

    /// Iterates over `(FileId, size_kb)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, f64)> + '_ {
        self.sizes_kb
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as FileId, s))
    }
}

/// A request stream over a [`FileSet`].
///
/// The paper's evaluation disregards trace timing ("scheduled new
/// requests as soon as the router and network interface buffers would
/// accept them"), so a trace is an ordered sequence of file references
/// with no timestamps.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    name: String,
    files: FileSet,
    requests: Vec<FileId>,
}

impl Trace {
    /// Builds a trace. Panics if any request references a file outside
    /// the set.
    pub fn new<S: Into<String>>(name: S, files: FileSet, requests: Vec<FileId>) -> Self {
        let n = files.len();
        assert!(
            requests.iter().all(|&f| (f as usize) < n),
            "request references unknown file"
        );
        Trace {
            name: name.into(),
            files,
            requests,
        }
    }

    /// The trace's name (e.g. `"calgary"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file population.
    pub fn files(&self) -> &FileSet {
        &self.files
    }

    /// The ordered request stream.
    pub fn requests(&self) -> &[FileId] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Mean size in KB of the files *as requested* (weighted by request
    /// frequency), 0 for an empty trace.
    pub fn avg_request_kb(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: f64 = self.requests.iter().map(|&f| self.files.size_kb(f)).sum();
        total / self.requests.len() as f64
    }

    /// Total distinct bytes requested (the trace's working set), in KB.
    pub fn working_set_kb(&self) -> f64 {
        let mut seen = vec![false; self.files.len()];
        let mut total = 0.0;
        for &f in &self.requests {
            if !seen[f as usize] {
                seen[f as usize] = true;
                total += self.files.size_kb(f);
            }
        }
        total
    }

    /// Number of distinct files requested at least once.
    pub fn distinct_files(&self) -> usize {
        let mut seen = vec![false; self.files.len()];
        let mut count = 0;
        for &f in &self.requests {
            if !seen[f as usize] {
                seen[f as usize] = true;
                count += 1;
            }
        }
        count
    }

    /// Per-file request counts, indexed by [`FileId`].
    pub fn request_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.files.len()];
        for &f in &self.requests {
            counts[f as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        let files = FileSet::new(vec![10.0, 20.0, 30.0]);
        Trace::new("t", files, vec![0, 0, 1, 2, 0])
    }

    #[test]
    fn file_set_accessors() {
        let fs = FileSet::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(fs.len(), 3);
        assert!(!fs.is_empty());
        assert_eq!(fs.size_kb(1), 2.0);
        assert_eq!(fs.total_kb(), 6.0);
        assert_eq!(fs.avg_file_kb(), 2.0);
        assert_eq!(fs.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "file sizes must be positive")]
    fn zero_size_rejected() {
        FileSet::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "request references unknown file")]
    fn out_of_range_request_rejected() {
        Trace::new("bad", FileSet::new(vec![1.0]), vec![1]);
    }

    #[test]
    fn request_weighted_average() {
        let t = small_trace();
        // (10 + 10 + 20 + 30 + 10) / 5 = 16.
        assert_eq!(t.avg_request_kb(), 16.0);
    }

    #[test]
    fn working_set_counts_distinct_bytes() {
        let t = small_trace();
        assert_eq!(t.working_set_kb(), 60.0);
        assert_eq!(t.distinct_files(), 3);
    }

    #[test]
    fn working_set_ignores_unrequested_files() {
        let files = FileSet::new(vec![10.0, 999.0]);
        let t = Trace::new("t", files, vec![0, 0]);
        assert_eq!(t.working_set_kb(), 10.0);
        assert_eq!(t.distinct_files(), 1);
    }

    #[test]
    fn request_counts_tally() {
        let t = small_trace();
        assert_eq!(t.request_counts(), vec![3, 1, 1]);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e", FileSet::new(vec![5.0]), vec![]);
        assert!(t.is_empty());
        assert_eq!(t.avg_request_kb(), 0.0);
        assert_eq!(t.working_set_kb(), 0.0);
    }
}
