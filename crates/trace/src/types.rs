//! Core trace types.

use l2s_util::cast;
use std::fmt;

/// Identifies one file served by the cluster — a dense index into a
/// [`FileSet`].
///
/// Ids are *interned*: every producer of traces (the synthetic generator,
/// the CLF parser via [`crate::clf::FileInterner`]) hands out consecutive
/// indices starting at 0, so any per-file state elsewhere in the workspace
/// can live in a flat `Vec` indexed by [`FileId::index`] instead of an
/// ordered map. Iterating such a `Vec` visits files in dense-index order,
/// which keeps results deterministic *by construction* — no ordered map
/// needed.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FileId(u32);

impl FileId {
    /// Wraps a raw dense index.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        FileId(raw)
    }

    /// The raw dense index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a `Vec` index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for FileId {
    #[inline]
    fn from(raw: u32) -> Self {
        FileId(raw)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

// Comparisons against raw indices, so call sites (tests especially) can
// say `file == 3` and `assert_eq!(evicted, vec![2, 3])` without wrapping.
impl PartialEq<u32> for FileId {
    #[inline]
    fn eq(&self, other: &u32) -> bool {
        self.0 == *other
    }
}

impl PartialEq<FileId> for u32 {
    #[inline]
    fn eq(&self, other: &FileId) -> bool {
        *self == other.0
    }
}

/// The population of files a trace requests, with their sizes.
#[derive(Clone, Debug, PartialEq)]
pub struct FileSet {
    sizes_kb: Vec<f64>,
}

impl FileSet {
    /// Builds a file set from per-file sizes in KB. A non-positive or
    /// non-finite size is rejected by `invariant!`.
    pub fn new(sizes_kb: Vec<f64>) -> Self {
        l2s_util::invariant!(
            sizes_kb.iter().all(|s| s.is_finite() && *s > 0.0),
            "file sizes must be positive and finite"
        );
        FileSet { sizes_kb }
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.sizes_kb.len()
    }

    /// True when the set holds no files.
    pub fn is_empty(&self) -> bool {
        self.sizes_kb.is_empty()
    }

    /// Size of `file` in KB. Accepts a raw `u32` index as well.
    #[inline]
    pub fn size_kb(&self, file: impl Into<FileId>) -> f64 {
        self.sizes_kb[file.into().index()]
    }

    /// Sum of all file sizes in KB.
    pub fn total_kb(&self) -> f64 {
        self.sizes_kb.iter().sum()
    }

    /// Mean file size in KB (0 for an empty set).
    pub fn avg_file_kb(&self) -> f64 {
        if self.sizes_kb.is_empty() {
            0.0
        } else {
            self.total_kb() / cast::len_f64(self.sizes_kb.len())
        }
    }

    /// Iterates over `(FileId, size_kb)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, f64)> + '_ {
        self.sizes_kb
            .iter()
            .enumerate()
            .map(|(i, &s)| (FileId::from_raw(cast::index_u32(i)), s))
    }
}

/// A request stream over a [`FileSet`].
///
/// The paper's evaluation disregards trace timing ("scheduled new
/// requests as soon as the router and network interface buffers would
/// accept them"), so a trace is an ordered sequence of file references
/// with no timestamps.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    name: String,
    files: FileSet,
    requests: Vec<FileId>,
}

impl Trace {
    /// Builds a trace. Panics if any request references a file outside
    /// the set. Accepts raw `u32` indices as well as [`FileId`]s.
    pub fn new<S, I>(name: S, files: FileSet, requests: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator,
        I::Item: Into<FileId>,
    {
        let requests: Vec<FileId> = requests.into_iter().map(Into::into).collect();
        let n = files.len();
        l2s_util::invariant!(
            requests.iter().all(|f| f.index() < n),
            "request references unknown file"
        );
        Trace {
            name: name.into(),
            files,
            requests,
        }
    }

    /// The trace's name (e.g. `"calgary"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file population.
    pub fn files(&self) -> &FileSet {
        &self.files
    }

    /// The ordered request stream.
    pub fn requests(&self) -> &[FileId] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Mean size in KB of the files *as requested* (weighted by request
    /// frequency), 0 for an empty trace.
    pub fn avg_request_kb(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: f64 = self.requests.iter().map(|&f| self.files.size_kb(f)).sum();
        total / cast::len_f64(self.requests.len())
    }

    /// Total distinct bytes requested (the trace's working set), in KB.
    pub fn working_set_kb(&self) -> f64 {
        let mut seen = vec![false; self.files.len()];
        let mut total = 0.0;
        for &f in &self.requests {
            if !seen[f.index()] {
                seen[f.index()] = true;
                total += self.files.size_kb(f);
            }
        }
        total
    }

    /// Number of distinct files requested at least once.
    pub fn distinct_files(&self) -> usize {
        let mut seen = vec![false; self.files.len()];
        let mut count = 0;
        for &f in &self.requests {
            if !seen[f.index()] {
                seen[f.index()] = true;
                count += 1;
            }
        }
        count
    }

    /// Per-file request counts, indexed by [`FileId`].
    pub fn request_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.files.len()];
        for &f in &self.requests {
            counts[f.index()] += 1;
        }
        counts
    }
}

// Compile-time Send/Sync audit: the bench harness memoizes traces in
// `Arc<Trace>` and shares them across sweep worker threads, so these
// bounds are part of the public contract. A field change that breaks
// them fails here rather than deep inside the parallel executor.
#[allow(dead_code)]
fn traces_are_shared_across_threads() {
    fn send_and_sync<T: Send + Sync>() {}
    send_and_sync::<Trace>();
    send_and_sync::<FileSet>();
    send_and_sync::<FileId>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        let files = FileSet::new(vec![10.0, 20.0, 30.0]);
        Trace::new("t", files, vec![0, 0, 1, 2, 0])
    }

    #[test]
    fn file_set_accessors() {
        let fs = FileSet::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(fs.len(), 3);
        assert!(!fs.is_empty());
        assert_eq!(fs.size_kb(1), 2.0);
        assert_eq!(fs.total_kb(), 6.0);
        assert_eq!(fs.avg_file_kb(), 2.0);
        assert_eq!(fs.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "file sizes must be positive")]
    fn zero_size_rejected() {
        FileSet::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "request references unknown file")]
    fn out_of_range_request_rejected() {
        Trace::new("bad", FileSet::new(vec![1.0]), vec![1]);
    }

    #[test]
    fn request_weighted_average() {
        let t = small_trace();
        // (10 + 10 + 20 + 30 + 10) / 5 = 16.
        assert_eq!(t.avg_request_kb(), 16.0);
    }

    #[test]
    fn working_set_counts_distinct_bytes() {
        let t = small_trace();
        assert_eq!(t.working_set_kb(), 60.0);
        assert_eq!(t.distinct_files(), 3);
    }

    #[test]
    fn working_set_ignores_unrequested_files() {
        let files = FileSet::new(vec![10.0, 999.0]);
        let t = Trace::new("t", files, vec![0, 0]);
        assert_eq!(t.working_set_kb(), 10.0);
        assert_eq!(t.distinct_files(), 1);
    }

    #[test]
    fn request_counts_tally() {
        let t = small_trace();
        assert_eq!(t.request_counts(), vec![3, 1, 1]);
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = Trace::new("e", FileSet::new(vec![5.0]), Vec::<u32>::new());
        assert!(t.is_empty());
        assert_eq!(t.avg_request_kb(), 0.0);
        assert_eq!(t.working_set_kb(), 0.0);
    }
}
