//! WWW server traces: representation, parsing, statistics, and synthesis.
//!
//! The paper drives its simulator with four real WWW server logs
//! (Calgary, Clarknet, NASA Kennedy, and Rutgers CS — Table 2). Those
//! logs are not redistributable, so this crate provides two equivalent
//! sources of request streams:
//!
//! * [`clf`] — a parser for Common Log Format access logs, so a real log
//!   can be dropped in when available, and
//! * [`TraceSpec`] — a synthetic generator calibrated to *every* statistic
//!   the paper reports for each trace: file count, average file size,
//!   request count, average requested-file size, and Zipf exponent `α`.
//!   Presets [`TraceSpec::calgary`], [`TraceSpec::clarknet`],
//!   [`TraceSpec::nasa`], and [`TraceSpec::rutgers`] reproduce Table 2.
//!
//! The generator draws heavy-tailed (lognormal) file sizes and assigns
//! them to popularity ranks through a *noisy sort* whose noise level is
//! calibrated so the popularity-weighted mean size matches the trace's
//! average request size (popular WWW files are smaller than average,
//! which is why, e.g., Calgary's mean file is 42.9 KB but its mean
//! request only 19.7 KB).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clf;
mod stats;
mod synth;
mod types;

pub use clf::{ClfRecord, ClfStream, ClfStreamStats, FileInterner};
pub use stats::TraceStats;
pub use synth::{RequestStream, TraceSpec};
pub use types::{FileId, FileSet, Trace};
